//===- core/analysis/ReuseDistance.cpp - GPU reuse distance -------------------===//

#include "core/analysis/ReuseDistance.h"

#include "gpusim/Address.h"

#include <algorithm>
#include <map>

using namespace cuadv;
using namespace cuadv::core;

//===----------------------------------------------------------------------===//
// ReuseDistanceCounter (Olken via Fenwick tree)
//===----------------------------------------------------------------------===//

std::optional<uint64_t> ReuseDistanceCounter::accessLoad(uint64_t Key) {
  ++Loads;
  std::optional<uint64_t> Distance;
  auto It = LastAccess.find(Key);
  if (It != LastAccess.end()) {
    // Distinct keys accessed strictly after this key's last access.
    Distance = uint64_t(Marks.suffixSumExclusive(It->second));
    Marks.add(It->second, -1);
    It->second = Clock;
  } else {
    LastAccess.emplace(Key, Clock);
  }
  Marks.add(Clock, +1);
  ++Clock;
  return Distance;
}

void ReuseDistanceCounter::accessStore(uint64_t Key) {
  auto It = LastAccess.find(Key);
  if (It == LastAccess.end())
    return;
  Marks.add(It->second, -1);
  LastAccess.erase(It);
}

//===----------------------------------------------------------------------===//
// NaiveReuseDistanceCounter (reference)
//===----------------------------------------------------------------------===//

std::optional<uint64_t> NaiveReuseDistanceCounter::accessLoad(uint64_t Key) {
  std::optional<uint64_t> Distance;
  if (Valid.count(Key) && Valid[Key]) {
    // Scan backwards to the previous load of Key, counting distinct keys.
    std::vector<uint64_t> Seen;
    for (auto It = Trace.rbegin(); It != Trace.rend(); ++It) {
      if (*It == Key) {
        Distance = Seen.size();
        break;
      }
      if (std::find(Seen.begin(), Seen.end(), *It) == Seen.end())
        Seen.push_back(*It);
    }
  }
  // A store invalidated earlier occurrences: drop them from the trace so
  // the backward scan cannot cross a write.
  Trace.push_back(Key);
  Valid[Key] = true;
  return Distance;
}

void NaiveReuseDistanceCounter::accessStore(uint64_t Key) {
  Valid[Key] = false;
  Trace.erase(std::remove(Trace.begin(), Trace.end(), Key), Trace.end());
}

//===----------------------------------------------------------------------===//
// Profile-level analysis
//===----------------------------------------------------------------------===//

ReuseDistanceResult
core::analyzeReuseDistance(const KernelProfile &Profile,
                           const ReuseDistanceConfig &Config) {
  ReuseDistanceResult Result;
  double FiniteSum = 0.0;
  uint64_t FiniteCount = 0;
  struct SiteAccum {
    uint64_t Loads = 0;
    uint64_t Streaming = 0;
    double FiniteSum = 0.0;
  };
  std::map<uint32_t, SiteAccum> Sites;

  // Canonical warp-major order: each CTA's stream is its warps in id
  // order, each warp's events in program order. A warp's own access
  // sequence is a pure function of the program and its data, so the
  // canonical stream — and with it every stack distance — is
  // independent of the timing model's warp interleaving. That is what
  // lets a sampled run (whose cheap staged hooks schedule warps
  // differently than exact profiling's serialized hooks) reproduce the
  // exact run's per-CTA distances verbatim.
  std::map<uint32_t, std::map<uint16_t, std::vector<const MemEventRec *>>>
      ByCtaWarp;
  for (const MemEventRec &E : Profile.MemEvents)
    ByCtaWarp[E.Cta][E.Warp].push_back(&E);

  for (const auto &[Cta, Warps] : ByCtaWarp) {
    ReuseDistanceCounter Counter;
    for (const auto &[Warp, Events] : Warps) {
      for (const MemEventRec *E : Events) {
        for (const LaneAddr &L : E->Lanes) {
          if (!gpusim::addr::isGlobal(L.Addr))
            continue;
          uint64_t Key =
              Config.Gran == ReuseDistanceConfig::Granularity::Element
                  ? L.Addr
                  : L.Addr / Config.LineBytes;
          if (E->Op == 1) {
            ++Result.TotalLoads;
            SiteAccum &S = Sites[E->Site];
            ++S.Loads;
            if (std::optional<uint64_t> D = Counter.accessLoad(Key)) {
              Result.Hist.addSample(*D);
              FiniteSum += double(*D);
              S.FiniteSum += double(*D);
              ++FiniteCount;
            } else {
              Result.Hist.addInfiniteSample();
              ++Result.StreamingAccesses;
              ++S.Streaming;
            }
          } else {
            Counter.accessStore(Key);
          }
        }
      }
    }
  }
  Result.MeanFiniteDistance =
      FiniteCount ? FiniteSum / double(FiniteCount) : 0.0;

  for (const auto &[Site, S] : Sites) {
    uint64_t Finite = S.Loads - S.Streaming;
    Result.PerSite.push_back(
        {Site, S.Loads, S.Streaming,
         Finite ? S.FiniteSum / double(Finite) : 0.0});
  }
  std::sort(Result.PerSite.begin(), Result.PerSite.end(),
            [](const SiteReuse &A, const SiteReuse &B) {
              if (A.streamingFraction() != B.streamingFraction())
                return A.streamingFraction() > B.streamingFraction();
              return A.Site < B.Site;
            });
  return Result;
}
