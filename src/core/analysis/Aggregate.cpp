//===- core/analysis/Aggregate.cpp - Instance aggregation ----------------------===//

#include "core/analysis/Aggregate.h"

using namespace cuadv;
using namespace cuadv::core;

std::vector<KernelInstanceGroup> core::aggregateInstances(
    const std::vector<std::unique_ptr<KernelProfile>> &Profiles) {
  std::map<std::pair<std::string, uint32_t>, KernelInstanceGroup> Groups;
  for (const auto &P : Profiles) {
    KernelInstanceGroup &G =
        Groups[std::make_pair(P->KernelName, P->LaunchPathNode)];
    G.KernelName = P->KernelName;
    G.LaunchPathNode = P->LaunchPathNode;
    ++G.Instances;
    G.Cycles.addSample(double(P->Stats.Cycles));
    G.WarpInstructions.addSample(double(P->Stats.WarpInstructions));
    G.GlobalLoadTransactions.addSample(
        double(P->Stats.GlobalLoadTransactions));
    G.L1HitRate.addSample(P->Stats.L1.hitRate());
    G.HookInvocations.addSample(double(P->Stats.HookInvocations));
  }
  std::vector<KernelInstanceGroup> Result;
  Result.reserve(Groups.size());
  for (auto &[Key, G] : Groups)
    Result.push_back(std::move(G));
  return Result;
}
