//===- core/analysis/Advisor.cpp - Optimization advice -------------------------===//

#include "core/analysis/Advisor.h"

#include <algorithm>
#include <cmath>

using namespace cuadv;
using namespace cuadv::core;

BypassAdvice core::adviseBypass(const ReuseDistanceResult &LineRD,
                                const MemoryDivergenceResult &MD,
                                const gpusim::DeviceSpec &Spec,
                                unsigned WarpsPerCTA, unsigned CTAsPerSM) {
  BypassAdvice Advice;
  Advice.MeanReuseDistance = LineRD.MeanFiniteDistance;
  Advice.MeanDivergenceDegree = MD.DivergenceDegree;
  Advice.CTAsPerSM = std::max(1u, CTAsPerSM);

  // Guard degenerate inputs: with no observed reuse or divergence, the
  // denominator collapses; treat R.D. and M.D. as at least one line.
  double RD = std::max(1.0, Advice.MeanReuseDistance);
  double Divergence = std::max(1.0, Advice.MeanDivergenceDegree);

  double Denominator = RD * double(Spec.L1LineBytes) * Divergence *
                       double(Advice.CTAsPerSM);
  Advice.RawValue = double(Spec.L1SizeBytes) / Denominator;
  double Floored = std::floor(Advice.RawValue);
  Advice.OptNumWarps = unsigned(
      std::clamp(Floored, 1.0, double(std::max(1u, WarpsPerCTA))));
  return Advice;
}

VerticalBypassAdvice
core::adviseVerticalBypass(const ReuseDistanceResult &RD,
                           const InstrumentationInfo &Info,
                           double StreamingThreshold,
                           uint64_t EffectiveCapacityLines) {
  VerticalBypassAdvice Advice;
  Advice.StreamingThreshold = StreamingThreshold;
  for (const SiteReuse &S : RD.PerSite) {
    bool Streaming = S.streamingFraction() >= StreamingThreshold;
    bool Thrashes = EffectiveCapacityLines != 0 &&
                    S.MeanFiniteDistance >=
                        double(EffectiveCapacityLines);
    if (!Streaming && !Thrashes)
      continue;
    const SiteInfo &Site = Info.Sites.site(S.Site);
    if (Site.Kind != SiteKind::MemLoad || !Site.Loc.isValid())
      continue;
    Advice.BypassedSites.push_back(S.Site);
    Advice.Plan.addLoad(Site.Loc);
  }
  return Advice;
}
