//===- core/analysis/Advisor.cpp - Optimization advice -------------------------===//

#include "core/analysis/Advisor.h"

#include "core/profiler/Profiler.h"

#include <algorithm>
#include <cmath>
#include <map>

using namespace cuadv;
using namespace cuadv::core;

BypassAdvice core::adviseBypass(const ReuseDistanceResult &LineRD,
                                const MemoryDivergenceResult &MD,
                                const gpusim::DeviceSpec &Spec,
                                unsigned WarpsPerCTA, unsigned CTAsPerSM) {
  BypassAdvice Advice;
  Advice.MeanReuseDistance = LineRD.MeanFiniteDistance;
  Advice.MeanDivergenceDegree = MD.DivergenceDegree;
  Advice.CTAsPerSM = std::max(1u, CTAsPerSM);

  // Guard degenerate inputs: with no observed reuse or divergence, the
  // denominator collapses; treat R.D. and M.D. as at least one line.
  double RD = std::max(1.0, Advice.MeanReuseDistance);
  double Divergence = std::max(1.0, Advice.MeanDivergenceDegree);

  double Denominator = RD * double(Spec.L1LineBytes) * Divergence *
                       double(Advice.CTAsPerSM);
  Advice.RawValue = double(Spec.L1SizeBytes) / Denominator;
  double Floored = std::floor(Advice.RawValue);
  Advice.OptNumWarps = unsigned(
      std::clamp(Floored, 1.0, double(std::max(1u, WarpsPerCTA))));
  return Advice;
}

BypassInputs core::aggregateBypassInputs(const Profiler &Prof,
                                         const gpusim::DeviceSpec &Spec) {
  BypassInputs In;
  ReuseDistanceConfig LineCfg;
  LineCfg.Gran = ReuseDistanceConfig::Granularity::CacheLine;
  LineCfg.LineBytes = Spec.L1LineBytes;

  // Per-site accumulation across launches (sites are module-global ids).
  struct SiteAgg {
    uint64_t Loads = 0;
    uint64_t StreamingLoads = 0;
    double FiniteSum = 0; ///< MeanFiniteDistance weighted by finite loads.
  };
  std::map<uint32_t, SiteAgg> Sites;

  double RdSum = 0, MdSum = 0;
  uint64_t RdN = 0, MdAccs = 0, RdLoads = 0, RdStreaming = 0;
  for (const auto &P : Prof.profiles()) {
    ReuseDistanceResult R = analyzeReuseDistance(*P, LineCfg);
    uint64_t Finite = R.TotalLoads - R.StreamingAccesses;
    RdSum += R.MeanFiniteDistance * double(Finite);
    RdN += Finite;
    RdLoads += R.TotalLoads;
    RdStreaming += R.StreamingAccesses;
    for (const SiteReuse &S : R.PerSite) {
      SiteAgg &A = Sites[S.Site];
      uint64_t SiteFinite = S.Loads - S.StreamingLoads;
      A.Loads += S.Loads;
      A.StreamingLoads += S.StreamingLoads;
      A.FiniteSum += S.MeanFiniteDistance * double(SiteFinite);
    }
    MemoryDivergenceResult M =
        analyzeMemoryDivergence(*P, Spec.L1LineBytes);
    MdSum += M.DivergenceDegree * double(M.WarpAccesses);
    MdAccs += M.WarpAccesses;
    In.CTAsPerSM = std::max(In.CTAsPerSM, P->Stats.ResidentCTAsPerSM);
  }
  In.LineRD.TotalLoads = RdLoads;
  In.LineRD.StreamingAccesses = RdStreaming;
  In.LineRD.MeanFiniteDistance = RdN ? RdSum / double(RdN) : 0.0;
  for (const auto &[Site, A] : Sites) {
    SiteReuse S;
    S.Site = Site;
    S.Loads = A.Loads;
    S.StreamingLoads = A.StreamingLoads;
    uint64_t Finite = A.Loads - A.StreamingLoads;
    S.MeanFiniteDistance = Finite ? A.FiniteSum / double(Finite) : 0.0;
    In.LineRD.PerSite.push_back(S);
  }
  // The analyzeReuseDistance convention: streaming fraction descending,
  // ties by site id ascending (the map already orders sites).
  std::stable_sort(In.LineRD.PerSite.begin(), In.LineRD.PerSite.end(),
                   [](const SiteReuse &A, const SiteReuse &B) {
                     return A.streamingFraction() > B.streamingFraction();
                   });
  In.MD.WarpAccesses = MdAccs;
  In.MD.DivergenceDegree = MdAccs ? MdSum / double(MdAccs) : 0.0;
  return In;
}

BypassAdvice core::adviseBypassForRun(const Profiler &Prof,
                                      const gpusim::DeviceSpec &Spec,
                                      unsigned WarpsPerCTA) {
  BypassInputs In = aggregateBypassInputs(Prof, Spec);
  return adviseBypass(In.LineRD, In.MD, Spec, WarpsPerCTA, In.CTAsPerSM);
}

VerticalBypassAdvice
core::adviseVerticalBypass(const ReuseDistanceResult &RD,
                           const InstrumentationInfo &Info,
                           double StreamingThreshold,
                           uint64_t EffectiveCapacityLines) {
  VerticalBypassAdvice Advice;
  Advice.StreamingThreshold = StreamingThreshold;
  for (const SiteReuse &S : RD.PerSite) {
    bool Streaming = S.streamingFraction() >= StreamingThreshold;
    bool Thrashes = EffectiveCapacityLines != 0 &&
                    S.MeanFiniteDistance >=
                        double(EffectiveCapacityLines);
    if (!Streaming && !Thrashes)
      continue;
    const SiteInfo &Site = Info.Sites.site(S.Site);
    if (Site.Kind != SiteKind::MemLoad || !Site.Loc.isValid())
      continue;
    Advice.BypassedSites.push_back(S.Site);
    Advice.Plan.addLoad(Site.Loc);
  }
  return Advice;
}
