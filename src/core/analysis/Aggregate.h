//===- core/analysis/Aggregate.h - Instance aggregation -------------*- C++ -*-===//
//
// Part of the CUDAAdvisor reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The offline analyzer component (paper Section 3.3): merges the
/// analysis results of kernel instances launched from the same call path
/// and reports mean/min/max/stddev across instances, exposing the
/// performance variation between instances of the same GPU kernel.
///
//===----------------------------------------------------------------------===//

#ifndef CUADV_CORE_ANALYSIS_AGGREGATE_H
#define CUADV_CORE_ANALYSIS_AGGREGATE_H

#include "core/profiler/KernelProfile.h"
#include "support/Statistics.h"

#include <map>
#include <memory>
#include <string>
#include <vector>

namespace cuadv {
namespace core {

/// Aggregated statistics for kernel instances sharing one launch path.
struct KernelInstanceGroup {
  std::string KernelName;
  uint32_t LaunchPathNode = 0;
  unsigned Instances = 0;
  RunningStats Cycles;
  RunningStats WarpInstructions;
  RunningStats GlobalLoadTransactions;
  RunningStats L1HitRate;
  RunningStats HookInvocations;
};

/// Groups \p Profiles by (kernel, launch path) and aggregates their
/// launch statistics.
std::vector<KernelInstanceGroup>
aggregateInstances(const std::vector<std::unique_ptr<KernelProfile>> &Profiles);

} // namespace core
} // namespace cuadv

#endif // CUADV_CORE_ANALYSIS_AGGREGATE_H
