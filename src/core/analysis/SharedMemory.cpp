//===- core/analysis/SharedMemory.cpp - Bank-conflict analysis ------------------===//

#include "core/analysis/SharedMemory.h"

#include "gpusim/Address.h"

#include <algorithm>
#include <map>
#include <set>

using namespace cuadv;
using namespace cuadv::core;

BankConflictResult core::analyzeBankConflicts(const KernelProfile &Profile,
                                              unsigned NumBanks,
                                              unsigned BankWidthBytes) {
  BankConflictResult Result;
  struct SiteAccum {
    uint64_t Count = 0;
    uint64_t SumDegree = 0;
    uint64_t MaxDegree = 0;
  };
  std::map<uint32_t, SiteAccum> Sites;
  uint64_t SumDegree = 0;

  for (const MemEventRec &E : Profile.MemEvents) {
    // Distinct words requested per bank; requests for the same word by
    // several lanes broadcast (no serialization).
    std::map<unsigned, std::set<uint64_t>> WordsPerBank;
    bool AnyShared = false;
    for (const LaneAddr &L : E.Lanes) {
      if (gpusim::addr::space(L.Addr) != gpusim::MemSpace::Shared)
        continue;
      AnyShared = true;
      uint64_t Word = gpusim::addr::offset(L.Addr) / BankWidthBytes;
      WordsPerBank[unsigned(Word % NumBanks)].insert(Word);
    }
    if (!AnyShared)
      continue;
    uint64_t Degree = 1;
    for (const auto &[Bank, Words] : WordsPerBank)
      Degree = std::max<uint64_t>(Degree, Words.size());

    Result.Dist.addSample(Degree);
    ++Result.WarpAccesses;
    SumDegree += Degree;
    SiteAccum &S = Sites[E.Site];
    ++S.Count;
    S.SumDegree += Degree;
    S.MaxDegree = std::max(S.MaxDegree, Degree);
  }

  Result.MeanDegree = Result.WarpAccesses
                          ? double(SumDegree) / double(Result.WarpAccesses)
                          : 0.0;
  for (const auto &[Site, S] : Sites)
    Result.PerSite.push_back(
        {Site, S.Count, double(S.SumDegree) / double(S.Count),
         S.MaxDegree});
  std::sort(Result.PerSite.begin(), Result.PerSite.end(),
            [](const SiteBankConflict &A, const SiteBankConflict &B) {
              if (A.MeanDegree != B.MeanDegree)
                return A.MeanDegree > B.MeanDegree;
              return A.Site < B.Site;
            });
  return Result;
}
