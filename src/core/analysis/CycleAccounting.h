//===- core/analysis/CycleAccounting.h - Stall attribution ----------*- C++ -*-===//
//
// Part of the CUDAAdvisor reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The profiler-side view of the simulator's cycle accounting
/// (gpusim/StallAccounting.h): merges every collected launch's stall
/// profile across launches, resolves data-object addresses through the
/// data-centric index, concatenates the host launch path with the
/// device call path into folded stacks, and renders the `--mode
/// hotspots` report plus the collapsed-stack flamegraph export. All
/// outputs are deterministic: identical runs (at any --jobs count)
/// produce identical tables and identical folded files.
///
//===----------------------------------------------------------------------===//

#ifndef CUADV_CORE_ANALYSIS_CYCLEACCOUNTING_H
#define CUADV_CORE_ANALYSIS_CYCLEACCOUNTING_H

#include "core/profiler/Profiler.h"
#include "gpusim/StallAccounting.h"

#include <string>
#include <vector>

namespace cuadv {
namespace core {

struct WorkloadProfile;

/// One source line's attributed cycles, broken down by stall reason.
struct StallLineEntry {
  std::string File;
  uint32_t Line = 0;
  uint64_t Reasons[gpusim::NumStallReasons] = {};
  uint64_t Total = 0;
};

/// One full call path (host launch path + device frames, innermost
/// last) with the cycles attributed to stalls inside it. Stack holds
/// semicolon-separated frame names — the collapsed-stack ("folded")
/// flamegraph line format minus the trailing weight.
struct StallPathEntry {
  std::string Stack;
  uint64_t Cycles = 0;
};

/// One data object's attributed memory-stall cycles.
struct StallObjectEntry {
  std::string Name; ///< Resolved name, or "obj#<id>", or "<unresolved>".
  uint64_t Cycles = 0;
};

/// The cross-launch merge of every launch's LaunchStallProfile.
struct CycleAccountingSummary {
  uint64_t TotalSlots = 0;    ///< SM issue slots over all launches.
  uint64_t IssuedCycles = 0;  ///< Slots that issued an instruction.
  uint64_t ReasonCycles[gpusim::NumStallReasons] = {};
  unsigned Launches = 0;      ///< Launches that carried a stall profile.
  /// Sorted by Total descending, ties by (File, Line) ascending.
  std::vector<StallLineEntry> Lines;
  /// Sorted by Cycles descending, ties by Stack ascending.
  std::vector<StallPathEntry> Paths;
  /// Sorted by Cycles descending, ties by Name ascending.
  std::vector<StallObjectEntry> Objects;

  /// Site-attributed stall cycles (every reason except drain); equals
  /// the sum over Lines and the sum over Paths.
  uint64_t attributedCycles() const;
  /// All non-issuing slots including end-of-launch drain.
  uint64_t stallCycles() const;
};

/// Merges the stall profiles of every profile in \p Prof. Launches
/// whose KernelStats carry no stall profile (rejected launches)
/// contribute nothing.
CycleAccountingSummary summarizeCycleAccounting(const Profiler &Prof);

/// Renders the `--mode hotspots` report: the slot-classification
/// summary, the top \p TopN source lines with per-reason breakdowns,
/// the top call paths, and the top data objects.
std::string renderHotspotReport(const std::string &App,
                                const CycleAccountingSummary &S,
                                size_t TopN = 15);

/// Writes \p S.Paths as collapsed-stack flamegraph lines
/// ("frame;frame;... <cycles>"). The sum of the weights equals
/// S.attributedCycles(). Returns false and sets \p Error on I/O
/// failure.
bool writeFlamegraph(const CycleAccountingSummary &S,
                     const std::string &Path, std::string &Error);

/// Appends the deterministic `cycle_accounting` artifact section
/// derived from \p Prof to \p W (see docs/PROFILES.md).
void appendCycleAccounting(WorkloadProfile &W, const Profiler &Prof);

} // namespace core
} // namespace cuadv

#endif // CUADV_CORE_ANALYSIS_CYCLEACCOUNTING_H
