//===- core/analysis/ProfileDiff.cpp - Cross-run profile comparison -----------===//
//
// Part of the CUDAAdvisor reproduction project.
//
//===----------------------------------------------------------------------===//

#include "core/analysis/ProfileDiff.h"

#include "support/Format.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <sstream>
#include <unordered_map>

namespace cuadv {
namespace core {

//===----------------------------------------------------------------------===//
// Direction table.
//===----------------------------------------------------------------------===//

MetricDirection metricDirection(const std::string &Name) {
  // Costs: less of these is unambiguously better.
  static const char *Lower[] = {
      "sim.cycles",         "sim.mshr_stalls", "sim.scheduler_stall_cycles",
      "l1.load_misses",     "md.degree",       "bd.divergence_percent",
      "bank.mean_degree",   "rd.streaming",    "backpressure.dropped",
      "static.false_uniform", "wall.simulate_ms",
  };
  // Quality ratios: more is better.
  static const char *Higher[] = {"l1.hit_rate", "static.agreements"};
  for (const char *N : Lower)
    if (Name == N)
      return MetricDirection::LowerIsBetter;
  for (const char *N : Higher)
    if (Name == N)
      return MetricDirection::HigherIsBetter;
  return MetricDirection::Neutral;
}

const char *deltaClassName(DeltaClass C) {
  switch (C) {
  case DeltaClass::Unchanged:
    return "unchanged";
  case DeltaClass::Improved:
    return "improved";
  case DeltaClass::Regressed:
    return "regressed";
  case DeltaClass::New:
    return "new";
  case DeltaClass::Missing:
    return "missing";
  }
  return "?";
}

//===----------------------------------------------------------------------===//
// Comparison.
//===----------------------------------------------------------------------===//

namespace {

void count(DeltaCounts &C, DeltaClass Class) {
  switch (Class) {
  case DeltaClass::Unchanged:
    ++C.Unchanged;
    break;
  case DeltaClass::Improved:
    ++C.Improved;
    break;
  case DeltaClass::Regressed:
    ++C.Regressed;
    break;
  case DeltaClass::New:
    ++C.New;
    break;
  case DeltaClass::Missing:
    ++C.Missing;
    break;
  }
}

std::string formatValue(double V) {
  if (V == std::floor(V) && std::abs(V) < 1e15) {
    char Buf[32];
    std::snprintf(Buf, sizeof(Buf), "%lld",
                  static_cast<long long>(V));
    return Buf;
  }
  char Buf[40];
  std::snprintf(Buf, sizeof(Buf), "%.6g", V);
  return Buf;
}

std::string describeDelta(const std::string &App, const MetricDelta &D) {
  std::ostringstream OS;
  OS << App << ": " << D.Metric << " " << deltaClassName(D.Class);
  if (D.HasBaseline && D.HasCurrent) {
    char Rel[32];
    std::snprintf(Rel, sizeof(Rel), "%+.2f%%", D.RelPct);
    OS << ": " << formatValue(D.Baseline) << " -> "
       << formatValue(D.Current) << " (" << Rel << ")";
  } else if (D.HasBaseline) {
    OS << ": was " << formatValue(D.Baseline);
  } else {
    OS << ": now " << formatValue(D.Current);
  }
  return OS.str();
}

/// Compares one aligned metric section (deterministic or wall).
void diffSection(const std::string &App,
                 const std::vector<ProfileMetric> &Base,
                 const std::vector<ProfileMetric> &Cur, bool Deterministic,
                 const DiffOptions &Opts, WorkloadDelta &Out,
                 DiffResult &R) {
  double TolPct =
      Deterministic ? Opts.DetTolerancePct : Opts.WallTolerancePct;
  std::unordered_map<std::string, const ProfileMetric *> CurByName;
  for (const ProfileMetric &M : Cur)
    CurByName.emplace(M.Name, &M);

  auto classify = [&](MetricDelta &D) {
    DeltaCounts &C = Deterministic ? R.Deterministic : R.Wall;
    count(C, D.Class);
    bool Gates = D.Class == DeltaClass::Regressed ||
                 D.Class == DeltaClass::Missing;
    if (Gates && (Deterministic || Opts.FailOnWall)) {
      R.GateFailed = true;
      R.GateReasons.push_back(describeDelta(App, D));
    }
    Out.Metrics.push_back(std::move(D));
  };

  // Baseline order first: present-in-both and missing metrics.
  for (const ProfileMetric &B : Base) {
    MetricDelta D;
    D.Metric = B.Name;
    D.Deterministic = Deterministic;
    D.HasBaseline = true;
    D.Baseline = B.Value.asDouble();
    auto It = CurByName.find(B.Name);
    if (It == CurByName.end()) {
      D.Class = DeltaClass::Missing;
      classify(D);
      continue;
    }
    D.HasCurrent = true;
    D.Current = It->second->Value.asDouble();
    CurByName.erase(It);
    D.Delta = D.Current - D.Baseline;
    D.RelPct =
        D.Baseline != 0 ? 100.0 * D.Delta / std::abs(D.Baseline) : 0.0;
    double Tol = std::abs(D.Baseline) * TolPct / 100.0;
    if (std::abs(D.Delta) <= Tol) {
      D.Class = DeltaClass::Unchanged;
    } else {
      switch (metricDirection(B.Name)) {
      case MetricDirection::LowerIsBetter:
        D.Class = D.Delta < 0 ? DeltaClass::Improved : DeltaClass::Regressed;
        break;
      case MetricDirection::HigherIsBetter:
        D.Class = D.Delta > 0 ? DeltaClass::Improved : DeltaClass::Regressed;
        break;
      case MetricDirection::Neutral:
        D.Class = DeltaClass::Regressed;
        break;
      }
    }
    classify(D);
  }
  // Then metrics only the current run has, in current order.
  for (const ProfileMetric &M : Cur) {
    if (!CurByName.count(M.Name))
      continue;
    MetricDelta D;
    D.Metric = M.Name;
    D.Deterministic = Deterministic;
    D.HasCurrent = true;
    D.Current = M.Value.asDouble();
    D.Class = DeltaClass::New;
    classify(D);
  }
}

bool appSelected(const DiffOptions &Opts, const std::string &App) {
  if (Opts.Apps.empty())
    return true;
  return std::find(Opts.Apps.begin(), Opts.Apps.end(), App) !=
         Opts.Apps.end();
}

} // namespace

DiffResult diffArtifacts(const ProfileArtifact &Baseline,
                         const ProfileArtifact &Current,
                         const DiffOptions &Opts) {
  DiffResult R;
  for (const WorkloadProfile &B : Baseline.Workloads) {
    if (!appSelected(Opts, B.App))
      continue;
    WorkloadDelta WD;
    WD.App = B.App;
    const WorkloadProfile *C = Current.findApp(B.App);
    if (!C) {
      WD.Class = DeltaClass::Missing;
      count(R.Deterministic, DeltaClass::Missing);
      R.GateFailed = true;
      R.GateReasons.push_back(B.App + ": workload missing from current run");
      R.Workloads.push_back(std::move(WD));
      continue;
    }
    diffSection(B.App, B.Metrics, C->Metrics, /*Deterministic=*/true, Opts,
                WD, R);
    diffSection(B.App, B.StaticModel, C->StaticModel,
                /*Deterministic=*/true, Opts, WD, R);
    diffSection(B.App, B.CycleAccounting, C->CycleAccounting,
                /*Deterministic=*/true, Opts, WD, R);
    diffSection(B.App, B.Wall, C->Wall, /*Deterministic=*/false, Opts, WD,
                R);
    R.Workloads.push_back(std::move(WD));
  }
  for (const WorkloadProfile &C : Current.Workloads) {
    if (!appSelected(Opts, C.App) || Baseline.findApp(C.App))
      continue;
    WorkloadDelta WD;
    WD.App = C.App;
    WD.Class = DeltaClass::New;
    count(R.Deterministic, DeltaClass::New);
    R.Workloads.push_back(std::move(WD));
  }
  return R;
}

//===----------------------------------------------------------------------===//
// Rendering.
//===----------------------------------------------------------------------===//

std::string renderDiffText(const DiffResult &R, bool Verbose) {
  std::ostringstream OS;
  for (const WorkloadDelta &W : R.Workloads) {
    if (W.Class == DeltaClass::Missing) {
      OS << formatString("%-10s WORKLOAD MISSING from current run\n",
                                  W.App.c_str());
      continue;
    }
    if (W.Class == DeltaClass::New) {
      OS << formatString(
          "%-10s new workload (no baseline; not gated)\n", W.App.c_str());
      continue;
    }
    for (const MetricDelta &D : W.Metrics) {
      if (!Verbose && D.Class == DeltaClass::Unchanged)
        continue;
      std::string Values;
      if (D.HasBaseline && D.HasCurrent)
        Values = formatString(
            "%s -> %s (%+.2f%%)", formatValue(D.Baseline).c_str(),
            formatValue(D.Current).c_str(), D.RelPct);
      else if (D.HasBaseline)
        Values = "was " + formatValue(D.Baseline);
      else
        Values = "now " + formatValue(D.Current);
      OS << formatString(
          "%-10s %-28s %-9s %s%s\n", W.App.c_str(), D.Metric.c_str(),
          deltaClassName(D.Class), Values.c_str(),
          D.Deterministic ? "" : "  [wall]");
    }
  }
  auto Summary = [](const DeltaCounts &C) {
    return formatString(
        "%llu unchanged, %llu improved, %llu regressed, %llu new, "
        "%llu missing",
        static_cast<unsigned long long>(C.Unchanged),
        static_cast<unsigned long long>(C.Improved),
        static_cast<unsigned long long>(C.Regressed),
        static_cast<unsigned long long>(C.New),
        static_cast<unsigned long long>(C.Missing));
  };
  OS << "deterministic: " << Summary(R.Deterministic) << "\n";
  OS << "wall-clock:    " << Summary(R.Wall) << "\n";
  if (R.GateFailed) {
    OS << "GATE: FAIL\n";
    for (const std::string &Reason : R.GateReasons)
      OS << "  " << Reason << "\n";
  } else {
    OS << "GATE: PASS\n";
  }
  return OS.str();
}

support::JsonValue diffToJson(const DiffResult &R, const DiffOptions &Opts) {
  support::JsonValue Doc = support::JsonValue::object();
  Doc.set("schema", support::JsonValue("cuadv-diff-1"));
  Doc.set("version", support::JsonValue(1));
  support::JsonValue Options = support::JsonValue::object();
  Options.set("det_tolerance_pct", support::JsonValue(Opts.DetTolerancePct));
  Options.set("wall_tolerance_pct",
              support::JsonValue(Opts.WallTolerancePct));
  Options.set("fail_on_wall", support::JsonValue(Opts.FailOnWall));
  Doc.set("options", std::move(Options));

  auto Counts = [](const DeltaCounts &C) {
    support::JsonValue O = support::JsonValue::object();
    O.set("unchanged", support::JsonValue(int64_t(C.Unchanged)));
    O.set("improved", support::JsonValue(int64_t(C.Improved)));
    O.set("regressed", support::JsonValue(int64_t(C.Regressed)));
    O.set("new", support::JsonValue(int64_t(C.New)));
    O.set("missing", support::JsonValue(int64_t(C.Missing)));
    return O;
  };
  support::JsonValue Summary = support::JsonValue::object();
  Summary.set("deterministic", Counts(R.Deterministic));
  Summary.set("wall", Counts(R.Wall));
  Doc.set("summary", std::move(Summary));

  support::JsonValue Gate = support::JsonValue::object();
  Gate.set("failed", support::JsonValue(R.GateFailed));
  support::JsonValue Reasons = support::JsonValue::array();
  for (const std::string &Reason : R.GateReasons)
    Reasons.push_back(support::JsonValue(Reason));
  Gate.set("reasons", std::move(Reasons));
  Doc.set("gate", std::move(Gate));

  support::JsonValue Workloads = support::JsonValue::array();
  for (const WorkloadDelta &W : R.Workloads) {
    support::JsonValue Obj = support::JsonValue::object();
    Obj.set("app", support::JsonValue(W.App));
    Obj.set("class", support::JsonValue(deltaClassName(W.Class)));
    support::JsonValue Metrics = support::JsonValue::array();
    for (const MetricDelta &D : W.Metrics) {
      if (D.Class == DeltaClass::Unchanged)
        continue; // Summarised in the counts.
      support::JsonValue M = support::JsonValue::object();
      M.set("metric", support::JsonValue(D.Metric));
      M.set("class", support::JsonValue(deltaClassName(D.Class)));
      M.set("deterministic", support::JsonValue(D.Deterministic));
      if (D.HasBaseline)
        M.set("baseline", support::JsonValue(D.Baseline));
      if (D.HasCurrent)
        M.set("current", support::JsonValue(D.Current));
      if (D.HasBaseline && D.HasCurrent) {
        M.set("delta", support::JsonValue(D.Delta));
        M.set("rel_pct", support::JsonValue(D.RelPct));
      }
      Metrics.push_back(std::move(M));
    }
    Obj.set("metrics", std::move(Metrics));
    Workloads.push_back(std::move(Obj));
  }
  Doc.set("workloads", std::move(Workloads));
  return Doc;
}

} // namespace core
} // namespace cuadv
