//===- core/analysis/ProfileDiff.cpp - Cross-run profile comparison -----------===//
//
// Part of the CUDAAdvisor reproduction project.
//
//===----------------------------------------------------------------------===//

#include "core/analysis/ProfileDiff.h"

#include "support/Format.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <sstream>
#include <unordered_map>

namespace cuadv {
namespace core {

//===----------------------------------------------------------------------===//
// Direction table.
//===----------------------------------------------------------------------===//

MetricDirection metricDirection(const std::string &Name) {
  // Costs: less of these is unambiguously better.
  static const char *Lower[] = {
      "sim.cycles",         "sim.mshr_stalls", "sim.scheduler_stall_cycles",
      "l1.load_misses",     "md.degree",       "bd.divergence_percent",
      "bank.mean_degree",   "rd.streaming",    "backpressure.dropped",
      "static.false_uniform", "wall.simulate_ms",
  };
  // Quality ratios: more is better.
  static const char *Higher[] = {"l1.hit_rate", "static.agreements"};
  for (const char *N : Lower)
    if (Name == N)
      return MetricDirection::LowerIsBetter;
  for (const char *N : Higher)
    if (Name == N)
      return MetricDirection::HigherIsBetter;
  return MetricDirection::Neutral;
}

const char *deltaClassName(DeltaClass C) {
  switch (C) {
  case DeltaClass::Unchanged:
    return "unchanged";
  case DeltaClass::Improved:
    return "improved";
  case DeltaClass::Regressed:
    return "regressed";
  case DeltaClass::New:
    return "new";
  case DeltaClass::Missing:
    return "missing";
  }
  return "?";
}

//===----------------------------------------------------------------------===//
// Comparison.
//===----------------------------------------------------------------------===//

namespace {

void count(DeltaCounts &C, DeltaClass Class) {
  switch (Class) {
  case DeltaClass::Unchanged:
    ++C.Unchanged;
    break;
  case DeltaClass::Improved:
    ++C.Improved;
    break;
  case DeltaClass::Regressed:
    ++C.Regressed;
    break;
  case DeltaClass::New:
    ++C.New;
    break;
  case DeltaClass::Missing:
    ++C.Missing;
    break;
  }
}

std::string formatValue(double V) {
  if (V == std::floor(V) && std::abs(V) < 1e15) {
    char Buf[32];
    std::snprintf(Buf, sizeof(Buf), "%lld",
                  static_cast<long long>(V));
    return Buf;
  }
  char Buf[40];
  std::snprintf(Buf, sizeof(Buf), "%.6g", V);
  return Buf;
}

std::string describeDelta(const std::string &App, const MetricDelta &D) {
  std::ostringstream OS;
  OS << App << ": " << D.Metric << " " << deltaClassName(D.Class);
  if (D.HasBaseline && D.HasCurrent) {
    char Rel[32];
    std::snprintf(Rel, sizeof(Rel), "%+.2f%%", D.RelPct);
    OS << ": " << formatValue(D.Baseline) << " -> "
       << formatValue(D.Current) << " (" << Rel << ")";
  } else if (D.HasBaseline) {
    OS << ": was " << formatValue(D.Baseline);
  } else {
    OS << ": now " << formatValue(D.Current);
  }
  return OS.str();
}

/// Compares one aligned metric section (deterministic or wall).
void diffSection(const std::string &App,
                 const std::vector<ProfileMetric> &Base,
                 const std::vector<ProfileMetric> &Cur, bool Deterministic,
                 const DiffOptions &Opts, WorkloadDelta &Out,
                 DiffResult &R) {
  double TolPct =
      Deterministic ? Opts.DetTolerancePct : Opts.WallTolerancePct;
  std::unordered_map<std::string, const ProfileMetric *> CurByName;
  for (const ProfileMetric &M : Cur)
    CurByName.emplace(M.Name, &M);

  auto classify = [&](MetricDelta &D) {
    DeltaCounts &C = Deterministic ? R.Deterministic : R.Wall;
    count(C, D.Class);
    bool Gates = D.Class == DeltaClass::Regressed ||
                 D.Class == DeltaClass::Missing;
    if (Gates && (Deterministic || Opts.FailOnWall)) {
      R.GateFailed = true;
      R.GateReasons.push_back(describeDelta(App, D));
    }
    Out.Metrics.push_back(std::move(D));
  };

  // Baseline order first: present-in-both and missing metrics.
  for (const ProfileMetric &B : Base) {
    MetricDelta D;
    D.Metric = B.Name;
    D.Deterministic = Deterministic;
    D.HasBaseline = true;
    D.Baseline = B.Value.asDouble();
    auto It = CurByName.find(B.Name);
    if (It == CurByName.end()) {
      D.Class = DeltaClass::Missing;
      classify(D);
      continue;
    }
    D.HasCurrent = true;
    D.Current = It->second->Value.asDouble();
    CurByName.erase(It);
    D.Delta = D.Current - D.Baseline;
    D.RelPct =
        D.Baseline != 0 ? 100.0 * D.Delta / std::abs(D.Baseline) : 0.0;
    double Tol = std::abs(D.Baseline) * TolPct / 100.0;
    if (std::abs(D.Delta) <= Tol) {
      D.Class = DeltaClass::Unchanged;
    } else {
      switch (metricDirection(B.Name)) {
      case MetricDirection::LowerIsBetter:
        D.Class = D.Delta < 0 ? DeltaClass::Improved : DeltaClass::Regressed;
        break;
      case MetricDirection::HigherIsBetter:
        D.Class = D.Delta > 0 ? DeltaClass::Improved : DeltaClass::Regressed;
        break;
      case MetricDirection::Neutral:
        D.Class = DeltaClass::Regressed;
        break;
      }
    }
    classify(D);
  }
  // Then metrics only the current run has, in current order.
  for (const ProfileMetric &M : Cur) {
    if (!CurByName.count(M.Name))
      continue;
    MetricDelta D;
    D.Metric = M.Name;
    D.Deterministic = Deterministic;
    D.HasCurrent = true;
    D.Current = M.Value.asDouble();
    D.Class = DeltaClass::New;
    classify(D);
  }
}

bool appSelected(const DiffOptions &Opts, const std::string &App) {
  if (Opts.Apps.empty())
    return true;
  return std::find(Opts.Apps.begin(), Opts.Apps.end(), App) !=
         Opts.Apps.end();
}

} // namespace

DiffResult diffArtifacts(const ProfileArtifact &Baseline,
                         const ProfileArtifact &Current,
                         const DiffOptions &Opts) {
  DiffResult R;
  for (const WorkloadProfile &B : Baseline.Workloads) {
    if (!appSelected(Opts, B.App))
      continue;
    WorkloadDelta WD;
    WD.App = B.App;
    const WorkloadProfile *C = Current.findApp(B.App);
    if (!C) {
      WD.Class = DeltaClass::Missing;
      count(R.Deterministic, DeltaClass::Missing);
      R.GateFailed = true;
      R.GateReasons.push_back(B.App + ": workload missing from current run");
      R.Workloads.push_back(std::move(WD));
      continue;
    }
    diffSection(B.App, B.Metrics, C->Metrics, /*Deterministic=*/true, Opts,
                WD, R);
    diffSection(B.App, B.StaticModel, C->StaticModel,
                /*Deterministic=*/true, Opts, WD, R);
    diffSection(B.App, B.CycleAccounting, C->CycleAccounting,
                /*Deterministic=*/true, Opts, WD, R);
    diffSection(B.App, B.Advice, C->Advice, /*Deterministic=*/true, Opts,
                WD, R);
    diffSection(B.App, B.Wall, C->Wall, /*Deterministic=*/false, Opts, WD,
                R);
    R.Workloads.push_back(std::move(WD));
  }
  for (const WorkloadProfile &C : Current.Workloads) {
    if (!appSelected(Opts, C.App) || Baseline.findApp(C.App))
      continue;
    WorkloadDelta WD;
    WD.App = C.App;
    WD.Class = DeltaClass::New;
    count(R.Deterministic, DeltaClass::New);
    R.Workloads.push_back(std::move(WD));
  }
  return R;
}

//===----------------------------------------------------------------------===//
// Rendering.
//===----------------------------------------------------------------------===//

std::string renderDiffText(const DiffResult &R, bool Verbose) {
  std::ostringstream OS;
  for (const WorkloadDelta &W : R.Workloads) {
    if (W.Class == DeltaClass::Missing) {
      OS << formatString("%-10s WORKLOAD MISSING from current run\n",
                                  W.App.c_str());
      continue;
    }
    if (W.Class == DeltaClass::New) {
      OS << formatString(
          "%-10s new workload (no baseline; not gated)\n", W.App.c_str());
      continue;
    }
    for (const MetricDelta &D : W.Metrics) {
      if (!Verbose && D.Class == DeltaClass::Unchanged)
        continue;
      std::string Values;
      if (D.HasBaseline && D.HasCurrent)
        Values = formatString(
            "%s -> %s (%+.2f%%)", formatValue(D.Baseline).c_str(),
            formatValue(D.Current).c_str(), D.RelPct);
      else if (D.HasBaseline)
        Values = "was " + formatValue(D.Baseline);
      else
        Values = "now " + formatValue(D.Current);
      OS << formatString(
          "%-10s %-28s %-9s %s%s\n", W.App.c_str(), D.Metric.c_str(),
          deltaClassName(D.Class), Values.c_str(),
          D.Deterministic ? "" : "  [wall]");
    }
  }
  auto Summary = [](const DeltaCounts &C) {
    return formatString(
        "%llu unchanged, %llu improved, %llu regressed, %llu new, "
        "%llu missing",
        static_cast<unsigned long long>(C.Unchanged),
        static_cast<unsigned long long>(C.Improved),
        static_cast<unsigned long long>(C.Regressed),
        static_cast<unsigned long long>(C.New),
        static_cast<unsigned long long>(C.Missing));
  };
  OS << "deterministic: " << Summary(R.Deterministic) << "\n";
  OS << "wall-clock:    " << Summary(R.Wall) << "\n";
  if (R.GateFailed) {
    OS << "GATE: FAIL\n";
    for (const std::string &Reason : R.GateReasons)
      OS << "  " << Reason << "\n";
  } else {
    OS << "GATE: PASS\n";
  }
  return OS.str();
}

support::JsonValue diffToJson(const DiffResult &R, const DiffOptions &Opts) {
  support::JsonValue Doc = support::JsonValue::object();
  Doc.set("schema", support::JsonValue("cuadv-diff-1"));
  Doc.set("version", support::JsonValue(1));
  support::JsonValue Options = support::JsonValue::object();
  Options.set("det_tolerance_pct", support::JsonValue(Opts.DetTolerancePct));
  Options.set("wall_tolerance_pct",
              support::JsonValue(Opts.WallTolerancePct));
  Options.set("fail_on_wall", support::JsonValue(Opts.FailOnWall));
  Doc.set("options", std::move(Options));

  auto Counts = [](const DeltaCounts &C) {
    support::JsonValue O = support::JsonValue::object();
    O.set("unchanged", support::JsonValue(int64_t(C.Unchanged)));
    O.set("improved", support::JsonValue(int64_t(C.Improved)));
    O.set("regressed", support::JsonValue(int64_t(C.Regressed)));
    O.set("new", support::JsonValue(int64_t(C.New)));
    O.set("missing", support::JsonValue(int64_t(C.Missing)));
    return O;
  };
  support::JsonValue Summary = support::JsonValue::object();
  Summary.set("deterministic", Counts(R.Deterministic));
  Summary.set("wall", Counts(R.Wall));
  Doc.set("summary", std::move(Summary));

  support::JsonValue Gate = support::JsonValue::object();
  Gate.set("failed", support::JsonValue(R.GateFailed));
  support::JsonValue Reasons = support::JsonValue::array();
  for (const std::string &Reason : R.GateReasons)
    Reasons.push_back(support::JsonValue(Reason));
  Gate.set("reasons", std::move(Reasons));
  Doc.set("gate", std::move(Gate));

  support::JsonValue Workloads = support::JsonValue::array();
  for (const WorkloadDelta &W : R.Workloads) {
    support::JsonValue Obj = support::JsonValue::object();
    Obj.set("app", support::JsonValue(W.App));
    Obj.set("class", support::JsonValue(deltaClassName(W.Class)));
    support::JsonValue Metrics = support::JsonValue::array();
    for (const MetricDelta &D : W.Metrics) {
      if (D.Class == DeltaClass::Unchanged)
        continue; // Summarised in the counts.
      support::JsonValue M = support::JsonValue::object();
      M.set("metric", support::JsonValue(D.Metric));
      M.set("class", support::JsonValue(deltaClassName(D.Class)));
      M.set("deterministic", support::JsonValue(D.Deterministic));
      if (D.HasBaseline)
        M.set("baseline", support::JsonValue(D.Baseline));
      if (D.HasCurrent)
        M.set("current", support::JsonValue(D.Current));
      if (D.HasBaseline && D.HasCurrent) {
        M.set("delta", support::JsonValue(D.Delta));
        M.set("rel_pct", support::JsonValue(D.RelPct));
      }
      Metrics.push_back(std::move(M));
    }
    Obj.set("metrics", std::move(Metrics));
    Workloads.push_back(std::move(Obj));
  }
  Doc.set("workloads", std::move(Workloads));
  return Doc;
}

//===----------------------------------------------------------------------===//
// Sampling-bounds mode.
//===----------------------------------------------------------------------===//

SamplingBoundsResult checkSamplingBounds(const ProfileArtifact &Exact,
                                         const ProfileArtifact &Sampled,
                                         const SamplingBoundsOptions &Opts) {
  SamplingBoundsResult R;
  for (const WorkloadProfile &S : Sampled.Workloads) {
    if (S.Sampling.empty())
      continue;
    const WorkloadProfile *E = Exact.findApp(S.App);
    if (!E)
      continue;
    ++R.AppsChecked;
    if (const ProfileMetric *C = E->findMetric("sim.cycles"))
      R.ExactCycles += C->Value.asDouble();
    if (const ProfileMetric *C = S.findMetric("sim.cycles"))
      R.SampledCycles += C->Value.asDouble();

    const ProfileMetric *Param = S.findSampling("param");
    const ProfileMetric *Z = S.findSampling("tol_z");
    // Absolute slack: Z scaled events (one missed sampled event stands
    // for ~Param exact events).
    double AbsSlack = (Param ? Param->Value.asDouble() : 1.0) *
                      (Z ? Z->Value.asDouble() : 1.0);
    for (const ProfileMetric &M : S.Sampling) {
      if (M.Name.rfind("est.", 0) != 0)
        continue;
      std::string Name = M.Name.substr(4);
      const ProfileMetric *Tol = S.findSampling("tol." + Name);
      const ProfileMetric *ExactM = E->findMetric(Name);
      SamplingBoundsMetric B;
      B.App = S.App;
      B.Metric = Name;
      B.Est = M.Value.asDouble();
      B.TolPct = Tol ? Tol->Value.asDouble() : 0.0;
      if (!Tol || !ExactM) {
        B.Ok = false;
        ++R.Checked;
        ++R.Violations;
        R.GateFailed = true;
        R.GateReasons.push_back(
            S.App + ": est." + Name +
            (Tol ? " has no exact-baseline metric" : " has no tol." + Name));
        R.Metrics.push_back(std::move(B));
        continue;
      }
      B.Exact = ExactM->Value.asDouble();
      B.ErrorAbs = std::abs(B.Est - B.Exact);
      B.Slack = B.TolPct / 100.0 *
                    std::max(std::abs(B.Exact), std::abs(B.Est)) +
                AbsSlack;
      B.Ok = B.ErrorAbs <= B.Slack;
      ++R.Checked;
      if (!B.Ok) {
        ++R.Violations;
        R.GateFailed = true;
        R.GateReasons.push_back(formatString(
            "%s: est.%s out of bounds: est %s vs exact %s (err %s > "
            "slack %s)",
            S.App.c_str(), Name.c_str(), formatValue(B.Est).c_str(),
            formatValue(B.Exact).c_str(), formatValue(B.ErrorAbs).c_str(),
            formatValue(B.Slack).c_str()));
      }
      R.Metrics.push_back(std::move(B));
    }
  }
  if (!R.AppsChecked) {
    R.GateFailed = true;
    R.GateReasons.push_back(
        "no sampled workloads to check (no sampling sections found, or no "
        "overlap with the exact baseline)");
  }
  if (R.SampledCycles > 0)
    R.Speedup = R.ExactCycles / R.SampledCycles;
  if (Opts.MinSpeedup > 0 && R.Speedup < Opts.MinSpeedup) {
    R.GateFailed = true;
    R.GateReasons.push_back(formatString(
        "aggregate speedup %.2fx below required %.2fx (exact %s cycles vs "
        "sampled %s cycles)",
        R.Speedup, Opts.MinSpeedup, formatValue(R.ExactCycles).c_str(),
        formatValue(R.SampledCycles).c_str()));
  }
  return R;
}

std::string renderSamplingBoundsText(const SamplingBoundsResult &R,
                                     bool Verbose) {
  std::ostringstream OS;
  for (const SamplingBoundsMetric &B : R.Metrics) {
    if (!Verbose && B.Ok)
      continue;
    OS << formatString("%-10s %-28s %-4s est %-12s exact %-12s err %-10s "
                       "slack %s\n",
                       B.App.c_str(), B.Metric.c_str(),
                       B.Ok ? "ok" : "FAIL", formatValue(B.Est).c_str(),
                       formatValue(B.Exact).c_str(),
                       formatValue(B.ErrorAbs).c_str(),
                       formatValue(B.Slack).c_str());
  }
  OS << formatString(
      "sampling bounds: %llu apps, %llu estimates checked, %llu out of "
      "bounds\n",
      static_cast<unsigned long long>(R.AppsChecked),
      static_cast<unsigned long long>(R.Checked),
      static_cast<unsigned long long>(R.Violations));
  if (R.SampledCycles > 0)
    OS << formatString("speedup: %.2fx (exact %s -> sampled %s sim cycles)\n",
                       R.Speedup, formatValue(R.ExactCycles).c_str(),
                       formatValue(R.SampledCycles).c_str());
  if (R.GateFailed) {
    OS << "GATE: FAIL\n";
    for (const std::string &Reason : R.GateReasons)
      OS << "  " << Reason << "\n";
  } else {
    OS << "GATE: PASS\n";
  }
  return OS.str();
}

support::JsonValue samplingBoundsToJson(const SamplingBoundsResult &R,
                                        const SamplingBoundsOptions &Opts) {
  support::JsonValue Doc = support::JsonValue::object();
  Doc.set("schema", support::JsonValue("cuadv-sampling-bounds-1"));
  Doc.set("version", support::JsonValue(1));
  support::JsonValue Options = support::JsonValue::object();
  Options.set("min_speedup", support::JsonValue(Opts.MinSpeedup));
  Doc.set("options", std::move(Options));
  support::JsonValue Summary = support::JsonValue::object();
  Summary.set("apps_checked", support::JsonValue(int64_t(R.AppsChecked)));
  Summary.set("checked", support::JsonValue(int64_t(R.Checked)));
  Summary.set("violations", support::JsonValue(int64_t(R.Violations)));
  Summary.set("exact_cycles", support::JsonValue(R.ExactCycles));
  Summary.set("sampled_cycles", support::JsonValue(R.SampledCycles));
  Summary.set("speedup", support::JsonValue(R.Speedup));
  Doc.set("summary", std::move(Summary));
  support::JsonValue Gate = support::JsonValue::object();
  Gate.set("failed", support::JsonValue(R.GateFailed));
  support::JsonValue Reasons = support::JsonValue::array();
  for (const std::string &Reason : R.GateReasons)
    Reasons.push_back(support::JsonValue(Reason));
  Gate.set("reasons", std::move(Reasons));
  Doc.set("gate", std::move(Gate));
  support::JsonValue Metrics = support::JsonValue::array();
  for (const SamplingBoundsMetric &B : R.Metrics) {
    support::JsonValue M = support::JsonValue::object();
    M.set("app", support::JsonValue(B.App));
    M.set("metric", support::JsonValue(B.Metric));
    M.set("ok", support::JsonValue(B.Ok));
    M.set("est", support::JsonValue(B.Est));
    M.set("exact", support::JsonValue(B.Exact));
    M.set("tol_pct", support::JsonValue(B.TolPct));
    M.set("slack", support::JsonValue(B.Slack));
    M.set("error_abs", support::JsonValue(B.ErrorAbs));
    Metrics.push_back(std::move(M));
  }
  Doc.set("metrics", std::move(Metrics));
  return Doc;
}

} // namespace core
} // namespace cuadv
