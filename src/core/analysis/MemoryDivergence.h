//===- core/analysis/MemoryDivergence.h - Memory divergence ---------*- C++ -*-===//
//
// Part of the CUDAAdvisor reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Memory-divergence analysis (paper Section 4.2-B): for each warp
/// execution of a global memory instruction, the number of unique cache
/// lines touched (1..32); the distribution is paper Figure 5, and the
/// weighted average is the "memory divergence degree" used by Eq. 1.
/// Per-site aggregation feeds the code-centric debugging view (Figure 8).
///
//===----------------------------------------------------------------------===//

#ifndef CUADV_CORE_ANALYSIS_MEMORYDIVERGENCE_H
#define CUADV_CORE_ANALYSIS_MEMORYDIVERGENCE_H

#include "core/profiler/KernelProfile.h"
#include "support/Histogram.h"

#include <vector>

namespace cuadv {
namespace core {

/// Divergence of one instrumentation site, for ranking.
struct SiteDivergence {
  uint32_t Site = 0;
  uint64_t WarpAccesses = 0;
  double MeanUniqueLines = 0.0;
  uint64_t MaxUniqueLines = 0;
  /// A representative call path observing this site.
  uint32_t ExamplePathNode = 0;
};

/// Aggregate result over one kernel profile.
struct MemoryDivergenceResult {
  /// Distribution of unique-lines-touched per warp access (buckets 1..32
  /// plus overflow for multi-line scalar types).
  Histogram Dist = Histogram::makePerValueHistogram(32);
  uint64_t WarpAccesses = 0;
  /// Weighted average of the distribution (the divergence degree).
  double DivergenceDegree = 0.0;
  /// Per-site stats, sorted by MeanUniqueLines descending.
  std::vector<SiteDivergence> PerSite;
};

/// Analyzes global-memory divergence of \p Profile for \p LineBytes-sized
/// cache lines (128 on Kepler, 32 on Pascal).
MemoryDivergenceResult analyzeMemoryDivergence(const KernelProfile &Profile,
                                               unsigned LineBytes);

} // namespace core
} // namespace cuadv

#endif // CUADV_CORE_ANALYSIS_MEMORYDIVERGENCE_H
