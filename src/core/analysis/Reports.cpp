//===- core/analysis/Reports.cpp - Debugging views ------------------------------===//

#include "core/analysis/Reports.h"

#include "support/Format.h"

#include "ir/BasicBlock.h"
#include "ir/Function.h"
#include "ir/Module.h"

#include <map>

using namespace cuadv;
using namespace cuadv::core;

std::string core::renderCodeCentricView(const Profiler &Prof,
                                        const KernelProfile &Profile,
                                        const SiteDivergence &Site) {
  std::string Out;
  if (!Profile.Info)
    return "<no instrumentation info>\n";
  const SiteInfo &Info = Profile.Info->Sites.site(Site.Site);
  Out += formatString(
      "%s at %s:%u:%u (%u-bit %s in @%s, block %s)\n",
      siteKindName(Info.Kind), Info.File.c_str(), Info.Loc.Line,
      Info.Loc.Col, Info.AccessBits, Info.Kind == SiteKind::MemLoad
                                         ? "load"
                                         : "store",
      Info.FuncName.c_str(), Info.BlockName.c_str());
  Out += formatString(
      "  %.2f unique cache lines/warp over %llu warp accesses (max %llu)\n",
      Site.MeanUniqueLines,
      static_cast<unsigned long long>(Site.WarpAccesses),
      static_cast<unsigned long long>(Site.MaxUniqueLines));
  Out += "calling context:\n";
  Out += Prof.paths().render(Site.ExamplePathNode);
  // Append the device leaf (the instruction itself).
  Out += formatString("GPU *: %s():: %s: %u\n", Info.FuncName.c_str(),
                      Info.File.c_str(), Info.Loc.Line);
  return Out;
}

std::string core::renderDataCentricView(const Profiler &Prof,
                                        uint64_t DeviceAddress) {
  const DataCentricIndex &Index = Prof.dataCentric();
  int32_t DevObj = Index.findDeviceObject(DeviceAddress);
  if (DevObj < 0)
    return "<address not inside any tracked device object>\n";
  const DataObject &Dev = Index.deviceObjects()[DevObj];

  std::string Out;
  Out += formatString("device object #%u%s%s: %llu bytes\n", Dev.Id,
                      Dev.Name.empty() ? "" : " ",
                      Dev.Name.c_str(),
                      static_cast<unsigned long long>(Dev.Bytes));
  Out += "allocated (cudaMalloc) at:\n";
  Out += Prof.paths().render(Dev.AllocPathNode);

  int32_t HostObj = Index.hostCounterpart(DevObj);
  if (HostObj >= 0) {
    const DataObject &Host = Index.hostObjects()[HostObj];
    Out += formatString("host counterpart #%u%s%s: %llu bytes\n", Host.Id,
                        Host.Name.empty() ? "" : " ",
                        Host.Name.c_str(),
                        static_cast<unsigned long long>(Host.Bytes));
    Out += "allocated (malloc) at:\n";
    Out += Prof.paths().render(Host.AllocPathNode);
    for (const TransferRecord &T : Index.transfers())
      if (T.ToDevice && T.DeviceObject == DevObj &&
          T.HostObject == HostObj) {
        Out += formatString("transferred (cudaMemcpy H2D, %llu bytes) at:\n",
                            static_cast<unsigned long long>(T.Bytes));
        Out += Prof.paths().render(T.PathNode);
        break;
      }
  } else {
    Out += "no host counterpart observed (device-only object)\n";
  }
  return Out;
}

std::string core::renderDivergenceDebugReport(const Profiler &Prof,
                                              const KernelProfile &Profile,
                                              unsigned LineBytes,
                                              unsigned TopSites) {
  MemoryDivergenceResult MD = analyzeMemoryDivergence(Profile, LineBytes);
  std::string Out;
  Out += formatString(
      "kernel %s: divergence degree %.2f over %llu warp accesses\n\n",
      Profile.KernelName.c_str(), MD.DivergenceDegree,
      static_cast<unsigned long long>(MD.WarpAccesses));
  unsigned Shown = 0;
  for (const SiteDivergence &Site : MD.PerSite) {
    if (Shown++ == TopSites)
      break;
    Out += "=== code-centric view ===\n";
    Out += renderCodeCentricView(Prof, Profile, Site);
    // Find one address this site touched for the data-centric view.
    for (const MemEventRec &E : Profile.MemEvents) {
      if (E.Site != Site.Site || E.Lanes.empty())
        continue;
      Out += "=== data-centric view ===\n";
      Out += renderDataCentricView(Prof, E.Lanes.front().Addr);
      break;
    }
    Out += "\n";
  }
  return Out;
}

StaticDivergenceAgreement
core::compareStaticDivergence(const ir::Module &M,
                              const ir::analysis::ModuleUniformity &MU,
                              const KernelProfile &Profile) {
  StaticDivergenceAgreement Result;
  if (!Profile.Info)
    return Result;

  // Aggregate the dynamic view per site first.
  std::map<uint32_t, SiteDivergenceAgreement> Sites;
  for (const BlockEventRec &E : Profile.BlockEvents) {
    SiteDivergenceAgreement &S = Sites[E.Site];
    S.Site = E.Site;
    ++S.Executions;
    if (E.Mask != E.ValidMask) {
      ++S.DivergentExecutions;
      S.DynamicDivergent = true;
    }
  }

  for (auto &[Id, S] : Sites) {
    const SiteInfo &Info = Profile.Info->Sites.site(Id);
    if (Info.Kind != SiteKind::BlockEntry)
      continue;
    const ir::Function *F = M.getFunction(Info.FuncName);
    if (!F || F->isDeclaration())
      continue;
    const ir::BasicBlock *BB = nullptr;
    for (const ir::BasicBlock *Cand : *F)
      if (Cand->getName() == Info.BlockName) {
        BB = Cand;
        break;
      }
    if (!BB)
      continue;
    const ir::analysis::UniformityInfo &UI = MU.info(*F);
    S.StaticDivergent = UI.isEntryDivergent() || UI.isBlockDivergent(BB);
    if (S.StaticDivergent == S.DynamicDivergent)
      ++Result.Agreements;
    else if (S.StaticDivergent)
      ++Result.ConservativeDivergent;
    else
      ++Result.FalseUniform;
    Result.Sites.push_back(S);
  }
  return Result;
}

std::string
core::renderStaticDivergenceReport(const StaticDivergenceAgreement &A,
                                   const KernelProfile &Profile) {
  std::string Out = formatString(
      "static vs measured divergence: %llu sites, %llu agree (%.1f%%), "
      "%llu conservative, %llu false-uniform\n",
      static_cast<unsigned long long>(A.Sites.size()),
      static_cast<unsigned long long>(A.Agreements),
      100.0 * A.agreementRate(),
      static_cast<unsigned long long>(A.ConservativeDivergent),
      static_cast<unsigned long long>(A.FalseUniform));
  if (!Profile.Info)
    return Out;
  for (const SiteDivergenceAgreement &S : A.Sites) {
    if (S.StaticDivergent || !S.DynamicDivergent)
      continue;
    const SiteInfo &Info = Profile.Info->Sites.site(S.Site);
    Out += formatString(
        "  FALSE-UNIFORM %s:%u:%u block %s of @%s ran divergent "
        "(%llu/%llu executions)\n",
        Info.File.c_str(), Info.Loc.Line, Info.Loc.Col,
        Info.BlockName.c_str(), Info.FuncName.c_str(),
        static_cast<unsigned long long>(S.DivergentExecutions),
        static_cast<unsigned long long>(S.Executions));
  }
  return Out;
}
