//===- core/analysis/Reports.cpp - Debugging views ------------------------------===//

#include "core/analysis/Reports.h"

#include "support/Format.h"

using namespace cuadv;
using namespace cuadv::core;

std::string core::renderCodeCentricView(const Profiler &Prof,
                                        const KernelProfile &Profile,
                                        const SiteDivergence &Site) {
  std::string Out;
  if (!Profile.Info)
    return "<no instrumentation info>\n";
  const SiteInfo &Info = Profile.Info->Sites.site(Site.Site);
  Out += formatString(
      "%s at %s:%u:%u (%u-bit %s in @%s, block %s)\n",
      siteKindName(Info.Kind), Info.File.c_str(), Info.Loc.Line,
      Info.Loc.Col, Info.AccessBits, Info.Kind == SiteKind::MemLoad
                                         ? "load"
                                         : "store",
      Info.FuncName.c_str(), Info.BlockName.c_str());
  Out += formatString(
      "  %.2f unique cache lines/warp over %llu warp accesses (max %llu)\n",
      Site.MeanUniqueLines,
      static_cast<unsigned long long>(Site.WarpAccesses),
      static_cast<unsigned long long>(Site.MaxUniqueLines));
  Out += "calling context:\n";
  Out += Prof.paths().render(Site.ExamplePathNode);
  // Append the device leaf (the instruction itself).
  Out += formatString("GPU *: %s():: %s: %u\n", Info.FuncName.c_str(),
                      Info.File.c_str(), Info.Loc.Line);
  return Out;
}

std::string core::renderDataCentricView(const Profiler &Prof,
                                        uint64_t DeviceAddress) {
  const DataCentricIndex &Index = Prof.dataCentric();
  int32_t DevObj = Index.findDeviceObject(DeviceAddress);
  if (DevObj < 0)
    return "<address not inside any tracked device object>\n";
  const DataObject &Dev = Index.deviceObjects()[DevObj];

  std::string Out;
  Out += formatString("device object #%u%s%s: %llu bytes\n", Dev.Id,
                      Dev.Name.empty() ? "" : " ",
                      Dev.Name.c_str(),
                      static_cast<unsigned long long>(Dev.Bytes));
  Out += "allocated (cudaMalloc) at:\n";
  Out += Prof.paths().render(Dev.AllocPathNode);

  int32_t HostObj = Index.hostCounterpart(DevObj);
  if (HostObj >= 0) {
    const DataObject &Host = Index.hostObjects()[HostObj];
    Out += formatString("host counterpart #%u%s%s: %llu bytes\n", Host.Id,
                        Host.Name.empty() ? "" : " ",
                        Host.Name.c_str(),
                        static_cast<unsigned long long>(Host.Bytes));
    Out += "allocated (malloc) at:\n";
    Out += Prof.paths().render(Host.AllocPathNode);
    for (const TransferRecord &T : Index.transfers())
      if (T.ToDevice && T.DeviceObject == DevObj &&
          T.HostObject == HostObj) {
        Out += formatString("transferred (cudaMemcpy H2D, %llu bytes) at:\n",
                            static_cast<unsigned long long>(T.Bytes));
        Out += Prof.paths().render(T.PathNode);
        break;
      }
  } else {
    Out += "no host counterpart observed (device-only object)\n";
  }
  return Out;
}

std::string core::renderDivergenceDebugReport(const Profiler &Prof,
                                              const KernelProfile &Profile,
                                              unsigned LineBytes,
                                              unsigned TopSites) {
  MemoryDivergenceResult MD = analyzeMemoryDivergence(Profile, LineBytes);
  std::string Out;
  Out += formatString(
      "kernel %s: divergence degree %.2f over %llu warp accesses\n\n",
      Profile.KernelName.c_str(), MD.DivergenceDegree,
      static_cast<unsigned long long>(MD.WarpAccesses));
  unsigned Shown = 0;
  for (const SiteDivergence &Site : MD.PerSite) {
    if (Shown++ == TopSites)
      break;
    Out += "=== code-centric view ===\n";
    Out += renderCodeCentricView(Prof, Profile, Site);
    // Find one address this site touched for the data-centric view.
    for (const MemEventRec &E : Profile.MemEvents) {
      if (E.Site != Site.Site || E.Lanes.empty())
        continue;
      Out += "=== data-centric view ===\n";
      Out += renderDataCentricView(Prof, E.Lanes.front().Addr);
      break;
    }
    Out += "\n";
  }
  return Out;
}
