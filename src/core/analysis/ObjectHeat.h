//===- core/analysis/ObjectHeat.h - Per-data-object heat report -----*- C++ -*-===//
//
// Part of the CUDAAdvisor reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// CUTHERMO-style per-data-object heat metrics: for every device
/// allocation tracked by the data-centric index, how often it was
/// touched, how much of that traffic was memory-divergent, and how many
/// bytes moved — both in aggregate and sliced per kernel instance
/// (launch), so the "temperature" of each object can be followed over
/// the application's lifetime. This is the most actionable view of GPU
/// memory behaviour the profiler can derive without new hooks: it reuses
/// the allocation map (paper Section 3.2.2) and the per-warp memory
/// trace already collected for the Figure 4/5 analyses.
///
//===----------------------------------------------------------------------===//

#ifndef CUADV_CORE_ANALYSIS_OBJECTHEAT_H
#define CUADV_CORE_ANALYSIS_OBJECTHEAT_H

#include "support/JSON.h"

#include <cstdint>
#include <string>
#include <vector>

namespace cuadv {
namespace core {

class Profiler;

/// Heat of one object during one kernel instance.
struct ObjectHeatSlice {
  uint32_t LaunchIndex = 0;
  std::string Kernel;
  uint64_t Accesses = 0;          ///< Warp-level accesses touching the object.
  uint64_t DivergentAccesses = 0; ///< Accesses touching >1 cache line.
  uint64_t BytesMoved = 0;        ///< Active lanes x element bytes.
};

/// Aggregate heat of one device data object.
struct ObjectHeatEntry {
  int32_t ObjectIndex = -1; ///< Index into DataCentricIndex::deviceObjects().
  std::string Name;         ///< Best-known variable name (may be empty).
  uint64_t Bytes = 0;       ///< Allocation size.
  std::string AllocSite;    ///< Rendered allocation frame, "fn (file:line)".
  uint64_t Accesses = 0;
  uint64_t DivergentAccesses = 0;
  uint64_t BytesMoved = 0;
  std::vector<ObjectHeatSlice> Slices; ///< Per kernel instance, launch order.
};

/// Derives the heat report from \p Prof's collected profiles and
/// data-centric index. \p LineBytes is the cache-line granularity used
/// to classify an access as divergent (use the device's L1 line size).
/// Objects never touched by an instrumented access are included with
/// zero heat so cold allocations are visible too. Entries are ordered
/// hottest (most bytes moved) first.
std::vector<ObjectHeatEntry> computeObjectHeat(const Profiler &Prof,
                                               unsigned LineBytes);

/// JSON array for embedding in the metrics document ("heat" member).
support::JsonValue objectHeatToJson(const std::vector<ObjectHeatEntry> &Heat);

/// Human-readable table of the \p TopN hottest objects.
std::string renderObjectHeatReport(const std::vector<ObjectHeatEntry> &Heat,
                                   size_t TopN = 10);

} // namespace core
} // namespace cuadv

#endif // CUADV_CORE_ANALYSIS_OBJECTHEAT_H
