//===- core/analysis/Advisor.h - Optimization advice ----------------*- C++ -*-===//
//
// Part of the CUDAAdvisor reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The optimization-advice layer. The headline metric is the paper's
/// Eq. 1: the predicted optimal number of warps per CTA that should
/// access L1 under horizontal cache bypassing,
///
///   Opt_Num_Warps = floor(L1_Cache_Size /
///                         (R.D. * Cacheline_Size * M.D. * #CTAs/SM))
///
/// where R.D. is the application's average (cache-line) reuse distance
/// and M.D. its average memory-divergence degree, both produced by
/// CUDAAdvisor's profiling, conservatively using plain averages without
/// outlier elimination (paper Section 4.2-D).
///
//===----------------------------------------------------------------------===//

#ifndef CUADV_CORE_ANALYSIS_ADVISOR_H
#define CUADV_CORE_ANALYSIS_ADVISOR_H

#include "core/analysis/MemoryDivergence.h"
#include "core/analysis/ReuseDistance.h"
#include "gpusim/DeviceSpec.h"

namespace cuadv {
namespace core {

class Profiler;

/// Result of the Eq. 1 model.
struct BypassAdvice {
  double MeanReuseDistance = 0.0;   ///< R.D. (cache-line granularity).
  double MeanDivergenceDegree = 0.0; ///< M.D.
  unsigned CTAsPerSM = 1;
  /// Predicted optimal warps-per-CTA allowed into L1, clamped to
  /// [1, WarpsPerCTA]. Equal to WarpsPerCTA means "don't bypass".
  unsigned OptNumWarps = 1;
  /// Raw (unclamped, pre-floor) model value, for diagnostics.
  double RawValue = 0.0;
};

/// Applies Eq. 1. \p LineRD must be the cache-line-granularity reuse
/// distance result; \p MD the divergence result for the same line size.
BypassAdvice adviseBypass(const ReuseDistanceResult &LineRD,
                          const MemoryDivergenceResult &MD,
                          const gpusim::DeviceSpec &Spec,
                          unsigned WarpsPerCTA, unsigned CTAsPerSM);

/// The Eq. 1 inputs aggregated over every launch of a profiled run:
/// the load-weighted mean cache-line reuse distance (per-site stats
/// merged and re-sorted), the access-weighted mean divergence degree,
/// and the maximum resident CTAs/SM any launch reached. This is the
/// single sweep-level aggregation every consumer shares — the bypass
/// report, the profile artifact's bypass.* metrics and the inspection
/// engine's bypass findings — so their Eq. 1 results agree exactly.
struct BypassInputs {
  ReuseDistanceResult LineRD; ///< Cache-line granularity, merged.
  MemoryDivergenceResult MD;  ///< Aggregate degree only (no histogram).
  unsigned CTAsPerSM = 1;
};

BypassInputs aggregateBypassInputs(const Profiler &Prof,
                                   const gpusim::DeviceSpec &Spec);

/// aggregateBypassInputs + adviseBypass in one step: the Eq. 1 advice
/// for a whole profiled run.
BypassAdvice adviseBypassForRun(const Profiler &Prof,
                                const gpusim::DeviceSpec &Spec,
                                unsigned WarpsPerCTA);

/// Result of the vertical (per-instruction) bypassing advisor: the
/// paper's Section 4.2-D alternative scheme [55], which CUDAAdvisor's
/// per-site reuse profile can drive directly because — unlike horizontal
/// bypassing — it *can* distinguish loads with little reuse.
struct VerticalBypassAdvice {
  gpusim::VerticalBypassPlan Plan;
  /// Sites selected for bypassing (streaming fraction >= threshold).
  std::vector<uint32_t> BypassedSites;
  double StreamingThreshold = 0.9;
};

/// Selects load sites for compile-time cache bypassing: sites whose
/// accesses are almost never reused (streaming fraction >=
/// \p StreamingThreshold), or — when \p EffectiveCapacityLines is
/// nonzero — whose mean finite reuse distance exceeds it (their reuse
/// cannot survive in this site's share of L1, so caching only causes
/// thrashing). \p RD must be the cache-line-granularity result carrying
/// per-site stats for the module described by \p Info. A reasonable
/// capacity share is (L1 bytes / line bytes) / resident CTAs per SM.
VerticalBypassAdvice
adviseVerticalBypass(const ReuseDistanceResult &RD,
                     const InstrumentationInfo &Info,
                     double StreamingThreshold = 0.9,
                     uint64_t EffectiveCapacityLines = 0);

} // namespace core
} // namespace cuadv

#endif // CUADV_CORE_ANALYSIS_ADVISOR_H
