//===- core/analysis/ProfileDiff.h - Cross-run profile comparison ---*- C++ -*-===//
//
// Part of the CUDAAdvisor reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The comparison engine behind `tools/cuadv-diff`: aligns two profile
/// artifacts workload-by-workload and metric-by-metric, applies
/// per-section noise thresholds (deterministic metrics default to a
/// zero-tolerance exact comparison; wall-clock metrics get a relative
/// band), and classifies every metric as unchanged / improved /
/// regressed / new / missing. A regression gate summarises the result:
/// any deterministic regression or disappearance fails it, which is
/// what the CI profile-gate job enforces against `bench/baselines/`.
/// Threshold semantics and the direction table are documented in
/// docs/PROFILES.md.
///
//===----------------------------------------------------------------------===//

#ifndef CUADV_CORE_ANALYSIS_PROFILEDIFF_H
#define CUADV_CORE_ANALYSIS_PROFILEDIFF_H

#include "core/analysis/ProfileArtifact.h"
#include "support/JSON.h"

#include <string>
#include <vector>

namespace cuadv {
namespace core {

/// Which way a metric is allowed to move without being a regression.
/// Neutral metrics describe *what the program did* (loads, launches,
/// histogram shapes): any deterministic change means behaviour changed,
/// so an out-of-tolerance delta classifies as regressed until the
/// baseline is updated deliberately.
enum class MetricDirection { Neutral, LowerIsBetter, HigherIsBetter };

/// Direction of \p Name per the table in docs/PROFILES.md (prefix and
/// exact-name matches; unknown metrics are Neutral).
MetricDirection metricDirection(const std::string &Name);

enum class DeltaClass { Unchanged, Improved, Regressed, New, Missing };

const char *deltaClassName(DeltaClass C);

/// One compared metric.
struct MetricDelta {
  std::string Metric;
  bool Deterministic = true; ///< False for the wall-clock section.
  DeltaClass Class = DeltaClass::Unchanged;
  bool HasBaseline = false;
  bool HasCurrent = false;
  double Baseline = 0;
  double Current = 0;
  double Delta = 0;  ///< Current - Baseline (0 for new/missing).
  double RelPct = 0; ///< 100 * Delta / |Baseline| (0 when Baseline is 0).
};

/// One compared workload. Class is New/Missing when the app exists on
/// only one side (Metrics is then empty), Unchanged otherwise (with the
/// per-metric detail in Metrics).
struct WorkloadDelta {
  std::string App;
  DeltaClass Class = DeltaClass::Unchanged;
  std::vector<MetricDelta> Metrics;
};

/// Comparison knobs (the cuadv-diff command-line surface).
struct DiffOptions {
  /// Relative tolerance (percent) for deterministic metrics. The
  /// default 0 means exact: any difference classifies.
  double DetTolerancePct = 0.0;
  /// Relative tolerance (percent) for wall-clock metrics.
  double WallTolerancePct = 50.0;
  /// Let wall-clock regressions fail the gate too (off by default:
  /// wall numbers are machine-dependent and never gate CI).
  bool FailOnWall = false;
  /// When non-empty, compare only the listed apps.
  std::vector<std::string> Apps;
};

struct DeltaCounts {
  uint64_t Unchanged = 0, Improved = 0, Regressed = 0, New = 0,
           Missing = 0;
};

struct DiffResult {
  std::vector<WorkloadDelta> Workloads; ///< Baseline order, new apps last.
  DeltaCounts Deterministic;
  DeltaCounts Wall;
  bool GateFailed = false;
  /// One line per gate-failing finding, e.g.
  /// "bfs: rd.hist.inf regressed: 120 -> 121 (+0.83%)".
  std::vector<std::string> GateReasons;
};

/// Compares \p Current against \p Baseline under \p Opts.
DiffResult diffArtifacts(const ProfileArtifact &Baseline,
                         const ProfileArtifact &Current,
                         const DiffOptions &Opts);

/// Human-readable report: every non-unchanged metric, the summary
/// counts, and the gate verdict. \p Verbose additionally lists
/// unchanged metrics.
std::string renderDiffText(const DiffResult &R, bool Verbose = false);

/// Machine-readable report ({"schema": "cuadv-diff-1", ...}; described
/// by examples/diff_schema.json). Unchanged metrics are summarised in
/// the counts, not listed individually.
support::JsonValue diffToJson(const DiffResult &R, const DiffOptions &Opts);

} // namespace core
} // namespace cuadv

#endif // CUADV_CORE_ANALYSIS_PROFILEDIFF_H
