//===- core/analysis/ProfileDiff.h - Cross-run profile comparison ---*- C++ -*-===//
//
// Part of the CUDAAdvisor reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The comparison engine behind `tools/cuadv-diff`: aligns two profile
/// artifacts workload-by-workload and metric-by-metric, applies
/// per-section noise thresholds (deterministic metrics default to a
/// zero-tolerance exact comparison; wall-clock metrics get a relative
/// band), and classifies every metric as unchanged / improved /
/// regressed / new / missing. A regression gate summarises the result:
/// any deterministic regression or disappearance fails it, which is
/// what the CI profile-gate job enforces against `bench/baselines/`.
/// Threshold semantics and the direction table are documented in
/// docs/PROFILES.md.
///
//===----------------------------------------------------------------------===//

#ifndef CUADV_CORE_ANALYSIS_PROFILEDIFF_H
#define CUADV_CORE_ANALYSIS_PROFILEDIFF_H

#include "core/analysis/ProfileArtifact.h"
#include "support/JSON.h"

#include <string>
#include <vector>

namespace cuadv {
namespace core {

/// Which way a metric is allowed to move without being a regression.
/// Neutral metrics describe *what the program did* (loads, launches,
/// histogram shapes): any deterministic change means behaviour changed,
/// so an out-of-tolerance delta classifies as regressed until the
/// baseline is updated deliberately.
enum class MetricDirection { Neutral, LowerIsBetter, HigherIsBetter };

/// Direction of \p Name per the table in docs/PROFILES.md (prefix and
/// exact-name matches; unknown metrics are Neutral).
MetricDirection metricDirection(const std::string &Name);

enum class DeltaClass { Unchanged, Improved, Regressed, New, Missing };

const char *deltaClassName(DeltaClass C);

/// One compared metric.
struct MetricDelta {
  std::string Metric;
  bool Deterministic = true; ///< False for the wall-clock section.
  DeltaClass Class = DeltaClass::Unchanged;
  bool HasBaseline = false;
  bool HasCurrent = false;
  double Baseline = 0;
  double Current = 0;
  double Delta = 0;  ///< Current - Baseline (0 for new/missing).
  double RelPct = 0; ///< 100 * Delta / |Baseline| (0 when Baseline is 0).
};

/// One compared workload. Class is New/Missing when the app exists on
/// only one side (Metrics is then empty), Unchanged otherwise (with the
/// per-metric detail in Metrics).
struct WorkloadDelta {
  std::string App;
  DeltaClass Class = DeltaClass::Unchanged;
  std::vector<MetricDelta> Metrics;
};

/// Comparison knobs (the cuadv-diff command-line surface).
struct DiffOptions {
  /// Relative tolerance (percent) for deterministic metrics. The
  /// default 0 means exact: any difference classifies.
  double DetTolerancePct = 0.0;
  /// Relative tolerance (percent) for wall-clock metrics.
  double WallTolerancePct = 50.0;
  /// Let wall-clock regressions fail the gate too (off by default:
  /// wall numbers are machine-dependent and never gate CI).
  bool FailOnWall = false;
  /// When non-empty, compare only the listed apps.
  std::vector<std::string> Apps;
};

struct DeltaCounts {
  uint64_t Unchanged = 0, Improved = 0, Regressed = 0, New = 0,
           Missing = 0;
};

struct DiffResult {
  std::vector<WorkloadDelta> Workloads; ///< Baseline order, new apps last.
  DeltaCounts Deterministic;
  DeltaCounts Wall;
  bool GateFailed = false;
  /// One line per gate-failing finding, e.g.
  /// "bfs: rd.hist.inf regressed: 120 -> 121 (+0.83%)".
  std::vector<std::string> GateReasons;
};

/// Compares \p Current against \p Baseline under \p Opts.
DiffResult diffArtifacts(const ProfileArtifact &Baseline,
                         const ProfileArtifact &Current,
                         const DiffOptions &Opts);

/// Human-readable report: every non-unchanged metric, the summary
/// counts, and the gate verdict. \p Verbose additionally lists
/// unchanged metrics.
std::string renderDiffText(const DiffResult &R, bool Verbose = false);

/// Machine-readable report ({"schema": "cuadv-diff-1", ...}; described
/// by examples/diff_schema.json). Unchanged metrics are summarised in
/// the counts, not listed individually.
support::JsonValue diffToJson(const DiffResult &R, const DiffOptions &Opts);

//===----------------------------------------------------------------------===//
// Sampling-bounds mode (cuadv-diff --sampling-bounds).
//===----------------------------------------------------------------------===//

/// Knobs of the sampling-bounds check.
struct SamplingBoundsOptions {
  /// Gate: aggregate simulated-cycle speedup (sum of exact sim.cycles /
  /// sum of sampled sim.cycles over the checked apps) must reach this.
  /// 0 disables the speedup gate.
  double MinSpeedup = 0.0;
};

/// One checked estimate: the sampled artifact's est.<Metric> against
/// the exact artifact's <Metric>. The estimate passes when
///   |Est - Exact| <= TolPct/100 * max(|Exact|, |Est|) + Z * Param
/// — the relative band the sampled run declared, plus an absolute slack
/// of Z scaled events (the estimator's granularity: one missed sampled
/// event scales up to ~Param exact events, so exact-zero and tiny-count
/// metrics are not held to an impossible relative standard).
struct SamplingBoundsMetric {
  std::string App;
  std::string Metric; ///< Exact-section name (no "est." prefix).
  double Exact = 0;
  double Est = 0;
  double TolPct = 0; ///< Declared relative tolerance (percent).
  double Slack = 0;  ///< Absolute bound |Est - Exact| was checked against.
  double ErrorAbs = 0;
  bool Ok = true;
};

/// Verdict of checkSamplingBounds. The gate fails when any estimate is
/// out of bounds, when the sampled artifact carries no sampling section
/// at all (nothing was actually sampled), or when the aggregate speedup
/// falls short of SamplingBoundsOptions::MinSpeedup.
struct SamplingBoundsResult {
  std::vector<SamplingBoundsMetric> Metrics; ///< Every checked estimate.
  uint64_t Checked = 0;
  uint64_t Violations = 0;
  uint64_t AppsChecked = 0;
  double ExactCycles = 0;
  double SampledCycles = 0;
  double Speedup = 0; ///< ExactCycles / SampledCycles (0 if undefined).
  bool GateFailed = false;
  std::vector<std::string> GateReasons;
};

/// Checks every est.X in \p Sampled's sampling sections against the
/// corresponding exact metric X in \p Exact, and computes the aggregate
/// profiled-execution speedup from the two artifacts' sim.cycles. Apps
/// absent from \p Exact or without a sampling section are skipped.
SamplingBoundsResult checkSamplingBounds(const ProfileArtifact &Exact,
                                         const ProfileArtifact &Sampled,
                                         const SamplingBoundsOptions &Opts);

/// Human-readable report; \p Verbose lists in-bounds estimates too.
std::string renderSamplingBoundsText(const SamplingBoundsResult &R,
                                     bool Verbose = false);

/// Machine-readable report ({"schema": "cuadv-sampling-bounds-1", ...}).
support::JsonValue samplingBoundsToJson(const SamplingBoundsResult &R,
                                        const SamplingBoundsOptions &Opts);

} // namespace core
} // namespace cuadv

#endif // CUADV_CORE_ANALYSIS_PROFILEDIFF_H
