//===- core/analysis/StaticModel.h - Static cost model & OOB oracle -*- C++ -*-===//
//
// Part of the CUDAAdvisor reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The profile-guided static layer: launch facts recorded by the profiler
/// (block/grid geometry, scalar argument values, pointer allocation
/// sizes) feed the symbolic range engine (ir/analysis/Range.h), and three
/// consumers sit on top:
///
///  - deriveLaunchFacts joins the facts of every launch of each kernel
///    into one conservative LaunchFacts record (dimensions and scalar
///    values that differ between launches become unknown, allocation
///    sizes take the minimum).
///
///  - appendStaticModel evaluates the static cost model — memory-safety
///    verdict counts, branch-uniformity counts, loop trip bounds, and a
///    per-warp global-memory transaction prediction weighted by trip
///    counts — and appends it to a WorkloadProfile's deterministic
///    "static_model" section, gated by cuadv-diff like every other
///    deterministic metric.
///
///  - compareStaticOob is the differential safety oracle: it joins the
///    static safety verdicts against the dynamic trap model's fault log.
///    The static layer is conservative, so a trap at an access classified
///    ProvablySafe (FalseSafe) is a soundness bug and must never happen.
///
//===----------------------------------------------------------------------===//

#ifndef CUADV_CORE_ANALYSIS_STATICMODEL_H
#define CUADV_CORE_ANALYSIS_STATICMODEL_H

#include "core/analysis/ProfileArtifact.h"
#include "ir/analysis/MemSafety.h"
#include "ir/analysis/Range.h"

#include <string>
#include <unordered_map>
#include <vector>

namespace cuadv {
namespace core {

/// Per-kernel launch facts, keyed by kernel name — the shape
/// ir::analysis::ModuleRanges consumes.
using KernelFactsMap =
    std::unordered_map<std::string, ir::analysis::LaunchFacts>;

/// Joins the launch facts of every profile \p Prof collected for kernels
/// of \p M. A dimension or scalar argument that differs between two
/// launches of the same kernel becomes unknown; a pointer argument's
/// addressable size is the minimum over launches (and is dropped when
/// any launch's pointer resolves to no recorded device allocation).
KernelFactsMap deriveLaunchFacts(const ir::Module &M, const Profiler &Prof);

/// Evaluates the static cost model of \p M under \p Facts and appends it
/// to \p W's StaticModel section (see docs/PROFILES.md for the field
/// list). Deterministic: functions in module order, accesses in
/// block/instruction order, no dependence on scheduling.
void appendStaticModel(WorkloadProfile &W, const ir::Module &M,
                       const KernelFactsMap &Facts);

/// One statically classified access joined with the dynamic trap model.
struct StaticOobSite {
  const ir::Function *F = nullptr;
  const ir::Instruction *Access = nullptr;
  ir::AddrSpace AS = ir::AddrSpace::Generic;
  ir::analysis::SafetyVerdict Verdict =
      ir::analysis::SafetyVerdict::MayOutOfBounds;
  /// True when a dynamic memory trap was raised at this source location
  /// in this address space.
  bool Trapped = false;
};

/// The differential safety oracle's verdict table. The static layer is
/// conservative: a trap at a MayOutOfBounds or MustOutOfBounds site is
/// expected, but FalseSafe — a trap at a site the analysis proved safe —
/// is a soundness bug and must be zero.
struct StaticOobAgreement {
  std::vector<StaticOobSite> Sites;
  uint64_t ProvablySafe = 0;
  uint64_t MayOob = 0;
  uint64_t MustOob = 0;
  uint64_t MustMisaligned = 0;
  uint64_t MemoryTraps = 0;  ///< OOB/misalignment traps in the fault log.
  uint64_t MatchedTraps = 0; ///< Traps matched to a static access site.
  uint64_t FalseSafe = 0;    ///< Traps at ProvablySafe sites (must be 0).
};

/// Classifies every access of \p M under \p Facts and joins the verdicts
/// with the memory traps of \p FaultLog by (file, line, column).
StaticOobAgreement compareStaticOob(
    const ir::Module &M, const KernelFactsMap &Facts,
    const std::vector<std::shared_ptr<const gpusim::TrapRecord>> &FaultLog);

/// One-paragraph summary of \p A: verdict counts, trap matching, and the
/// source coordinates of any false-safe site (there should be none).
std::string renderStaticOobReport(const StaticOobAgreement &A,
                                  const ir::Module &M);

} // namespace core
} // namespace cuadv

#endif // CUADV_CORE_ANALYSIS_STATICMODEL_H
