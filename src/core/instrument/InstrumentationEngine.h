//===- core/instrument/InstrumentationEngine.h - IR rewriting ------*- C++ -*-===//
//
// Part of the CUDAAdvisor reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// CUDAAdvisor's instrumentation engine (paper Section 3.1): an LLVM-style
/// pass pipeline that rewrites device bitcode, inserting calls to the
/// cuadv.record.* profiler hooks.
///
/// Mandatory instrumentation covers function calls/returns (for the
/// code-centric shadow stacks). Optional instrumentation covers the three
/// categories the paper lists: memory operations (effective address +
/// access width), arithmetic operations (operator + operand values), and
/// control-flow (basic-block entries). Every inserted hook carries the
/// source file/line/column from the instruction's debug info, plus a site
/// id resolved through the produced SiteTable.
///
//===----------------------------------------------------------------------===//

#ifndef CUADV_CORE_INSTRUMENT_INSTRUMENTATIONENGINE_H
#define CUADV_CORE_INSTRUMENT_INSTRUMENTATIONENGINE_H

#include "core/instrument/InstrumentFilter.h"
#include "core/instrument/SiteTable.h"
#include "ir/Module.h"

namespace cuadv {
namespace core {

/// Selects which instrumentation the engine inserts.
struct InstrumentationConfig {
  /// \name Optional instrumentation (paper Section 3.1-II).
  /// @{
  bool InstrumentLoads = true;
  bool InstrumentStores = true;
  bool InstrumentBlocks = true;
  bool InstrumentArith = false;
  /// @}
  /// Mandatory call/return instrumentation (paper Section 3.1-I). Exposed
  /// for ablation experiments only; profiling requires it.
  bool InstrumentCalls = true;
  /// Restrict memory instrumentation to global-memory operations (the
  /// paper's case studies instrument global accesses; shared/local can be
  /// profiled "in a similar fashion").
  bool GlobalMemoryOnly = true;
  /// Site-level include/exclude rules (Score-P style). A site the filter
  /// rejects is never instrumented: no site-table entry, no inserted
  /// hook call, no simulated hook cost. Empty = instrument everything.
  /// Filtered call sites lose both the push and the pop hook, keeping
  /// the shadow stack balanced.
  InstrumentFilter Filter;

  /// Preset used by the memory case studies: loads + stores + calls.
  static InstrumentationConfig memoryProfile() {
    InstrumentationConfig C;
    C.InstrumentBlocks = false;
    return C;
  }
  /// Preset for the branch-divergence case study: block entries + calls.
  static InstrumentationConfig controlFlowProfile() {
    InstrumentationConfig C;
    C.InstrumentLoads = false;
    C.InstrumentStores = false;
    return C;
  }
  /// Everything on (memory + control flow + arithmetic).
  static InstrumentationConfig full() {
    InstrumentationConfig C;
    C.InstrumentArith = true;
    return C;
  }
};

/// Metadata produced by an instrumentation run; the profiler resolves
/// every hook event through these tables.
struct InstrumentationInfo {
  SiteTable Sites;
  FuncTable Funcs;
  InstrumentationConfig Config;
};

/// Rewrites a module in place, inserting profiler hook calls. A module
/// may be instrumented only once (re-running on instrumented code is a
/// fatal error). The rewritten module is re-verified.
class InstrumentationEngine {
public:
  explicit InstrumentationEngine(InstrumentationConfig Config)
      : Config(Config) {}

  /// Instruments every definition in \p M and returns the site/function
  /// tables describing the inserted hooks.
  InstrumentationInfo run(ir::Module &M) const;

private:
  InstrumentationConfig Config;
};

} // namespace core
} // namespace cuadv

#endif // CUADV_CORE_INSTRUMENT_INSTRUMENTATIONENGINE_H
