//===- core/instrument/SiteTable.h - Instrumentation site metadata -*- C++ -*-===//
//
// Part of the CUDAAdvisor reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Side tables produced by the instrumentation engine: every inserted hook
/// call carries a compact site id (and function id for call hooks); these
/// tables map the ids back to source coordinates, enclosing function,
/// basic-block name, and access width. The profiler and analyzer resolve
/// every event through them (the paper passes file/line/col and block-name
/// strings as hook arguments; ids are the equivalent, unambiguous form).
///
//===----------------------------------------------------------------------===//

#ifndef CUADV_CORE_INSTRUMENT_SITETABLE_H
#define CUADV_CORE_INSTRUMENT_SITETABLE_H

#include "ir/DebugLoc.h"

#include <cstdint>
#include <string>
#include <vector>

namespace cuadv {
namespace core {

/// What kind of program point a site id names.
enum class SiteKind : uint8_t {
  MemLoad,
  MemStore,
  BlockEntry,
  CallSite,
  Arith,
};

const char *siteKindName(SiteKind Kind);

/// Static description of one instrumentation site.
struct SiteInfo {
  SiteKind Kind;
  std::string FuncName;  ///< Enclosing function.
  std::string BlockName; ///< Enclosing (or entered) basic block.
  ir::DebugLoc Loc;
  std::string File;        ///< Resolved source file name for Loc.
  unsigned AccessBits = 0; ///< Memory sites: access width in bits.
  std::string Detail;      ///< Operator name for arith, callee for calls.
};

/// Dense table of instrumentation sites, indexed by site id.
class SiteTable {
public:
  uint32_t addSite(SiteInfo Info) {
    Sites.push_back(std::move(Info));
    return static_cast<uint32_t>(Sites.size() - 1);
  }

  const SiteInfo &site(uint32_t Id) const { return Sites.at(Id); }
  size_t size() const { return Sites.size(); }
  bool empty() const { return Sites.empty(); }

  auto begin() const { return Sites.begin(); }
  auto end() const { return Sites.end(); }

private:
  std::vector<SiteInfo> Sites;
};

/// Static description of one instrumented (device) function.
struct FuncInfo {
  std::string Name;
  unsigned FileId = 0;
  bool IsKernel = false;
};

/// Dense table of device functions, indexed by function id (used by the
/// call/return hooks for shadow-stack maintenance).
class FuncTable {
public:
  uint32_t addFunction(FuncInfo Info) {
    Funcs.push_back(std::move(Info));
    return static_cast<uint32_t>(Funcs.size() - 1);
  }

  const FuncInfo &function(uint32_t Id) const { return Funcs.at(Id); }
  size_t size() const { return Funcs.size(); }

  /// Id of \p Name, or -1.
  int32_t idOf(const std::string &Name) const {
    for (size_t I = 0; I < Funcs.size(); ++I)
      if (Funcs[I].Name == Name)
        return static_cast<int32_t>(I);
    return -1;
  }

private:
  std::vector<FuncInfo> Funcs;
};

} // namespace core
} // namespace cuadv

#endif // CUADV_CORE_INSTRUMENT_SITETABLE_H
