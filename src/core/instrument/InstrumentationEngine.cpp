//===- core/instrument/InstrumentationEngine.cpp - IR rewriting --------------===//

#include "core/instrument/InstrumentationEngine.h"

#include "ir/Casting.h"
#include "ir/IRBuilder.h"
#include "ir/Verifier.h"
#include "support/Error.h"

#include <unordered_map>

using namespace cuadv;
using namespace cuadv::core;
using namespace cuadv::ir;

const char *core::siteKindName(SiteKind Kind) {
  switch (Kind) {
  case SiteKind::MemLoad:
    return "load";
  case SiteKind::MemStore:
    return "store";
  case SiteKind::BlockEntry:
    return "block";
  case SiteKind::CallSite:
    return "call";
  case SiteKind::Arith:
    return "arith";
  }
  cuadv_unreachable("invalid site kind");
}

namespace {

/// Performs the rewriting for one module.
class Instrumenter {
public:
  Instrumenter(Module &M, const InstrumentationConfig &Config)
      : M(M), Ctx(M.getContext()), Config(Config), Builder(Ctx) {}

  InstrumentationInfo run() {
    guardAgainstDoubleInstrumentation();
    declareHooks();

    // Function ids for the call/return shadow-stack hooks.
    for (Function *F : M)
      if (!F->isDeclaration())
        FuncIds[F] = Info.Funcs.addFunction(
            {F->getName(), F->getSourceFileId(), F->isKernel()});

    for (Function *F : M) {
      if (F->isDeclaration())
        continue;
      if (Config.InstrumentBlocks)
        instrumentBlockEntries(*F);
      instrumentInstructions(*F);
    }

    std::vector<std::string> Errors;
    if (!verifyModule(M, Errors))
      reportFatalError("instrumentation produced invalid IR: " +
                       Errors.front());
    Info.Config = Config;
    return std::move(Info);
  }

private:
  std::string fileOf(const DebugLoc &Loc) const {
    return Ctx.fileName(Loc.FileId);
  }

  void guardAgainstDoubleInstrumentation() {
    if (M.getFunction("cuadv.record.mem") ||
        M.getFunction("cuadv.record.bb") ||
        M.getFunction("cuadv.record.call"))
      reportFatalError("module '" + M.getName() +
                       "' is already instrumented");
  }

  void declareHooks() {
    Type *VoidTy = Ctx.getVoidTy();
    Type *I32 = Ctx.getI32Ty();
    Type *I64 = Ctx.getI64Ty();
    Type *F64 = Ctx.getF64Ty();
    RecordMem = M.getOrInsertDeclaration("cuadv.record.mem", VoidTy,
                                         {I64, I32, I32, I32, I32, I32});
    RecordBB = M.getOrInsertDeclaration("cuadv.record.bb", VoidTy, {I32});
    RecordCall =
        M.getOrInsertDeclaration("cuadv.record.call", VoidTy, {I32, I32});
    RecordRet = M.getOrInsertDeclaration("cuadv.record.ret", VoidTy, {I32});
    RecordArith = M.getOrInsertDeclaration("cuadv.record.arith", VoidTy,
                                           {I32, I32, F64, F64});
  }

  /// Inserts a record.bb call at the top of every basic block (paper
  /// Listings 3-4: the hook receives the block's name and source
  /// location, which live in the site table here).
  void instrumentBlockEntries(Function &F) {
    for (BasicBlock *BB : F) {
      DebugLoc Loc = BB->empty() ? DebugLoc() : BB->getInst(0)->getDebugLoc();
      if (!Config.Filter.allows(FilterBlock, F.getName(), Loc.Line))
        continue;
      uint32_t Site = Info.Sites.addSite({SiteKind::BlockEntry,
                                          F.getName(), BB->getName(), Loc,
                                          fileOf(Loc), 0, ""});
      Builder.setInsertPoint(BB, 0);
      Builder.setDebugLoc(Loc);
      Builder.createCall(RecordBB, {Builder.getInt32(int32_t(Site))});
    }
  }

  /// Walks each block, inserting memory/arith/call hooks around the
  /// existing instructions. Index bookkeeping: the IRBuilder inserts
  /// before a given index and the walk skips what it inserted.
  void instrumentInstructions(Function &F) {
    for (BasicBlock *BB : F) {
      for (size_t Index = 0; Index < BB->size(); ++Index) {
        Instruction *Inst = BB->getInst(Index);
        if (auto *LI = dyn_cast<LoadInst>(Inst)) {
          if (Config.InstrumentLoads && wantSpace(LI->getAddrSpace()) &&
              allowed(FilterLoad, F, *Inst))
            Index += insertMemHook(BB, Index, LI->getPointerOperand(),
                                   LI->getType(), SiteKind::MemLoad, *Inst);
          continue;
        }
        if (auto *SI = dyn_cast<StoreInst>(Inst)) {
          if (Config.InstrumentStores && wantSpace(SI->getAddrSpace()) &&
              allowed(FilterStore, F, *Inst))
            Index += insertMemHook(BB, Index, SI->getPointerOperand(),
                                   SI->getValueOperand()->getType(),
                                   SiteKind::MemStore, *Inst);
          continue;
        }
        if (auto *BI = dyn_cast<BinaryInst>(Inst)) {
          if (Config.InstrumentArith && allowed(FilterArith, F, *Inst))
            Index += insertArithHook(BB, Index, *BI);
          continue;
        }
        if (auto *CI = dyn_cast<CallInst>(Inst)) {
          // A filtered call site drops the push AND the pop, so the
          // shadow stack stays balanced for the hooks that remain.
          if (Config.InstrumentCalls && !CI->getCallee()->isDeclaration() &&
              allowed(FilterCall, F, *Inst))
            Index += insertCallHooks(BB, Index, *CI);
          continue;
        }
      }
    }
  }

  bool wantSpace(AddrSpace AS) const {
    return !Config.GlobalMemoryOnly || AS == AddrSpace::Global ||
           AS == AddrSpace::Generic;
  }

  bool allowed(FilterKind Kind, const Function &F,
               const Instruction &Inst) const {
    return Config.Filter.allows(Kind, F.getName(), Inst.getDebugLoc().Line);
  }

  /// Inserts (before the access at \p Index):
  ///   %a = cast ptrtoint T* %p to i64
  ///   call void @cuadv.record.mem(i64 %a, bits, line, col, op, site)
  /// Returns the number of instructions inserted.
  size_t insertMemHook(BasicBlock *BB, size_t Index, Value *Ptr,
                       Type *ValueTy, SiteKind Kind,
                       const Instruction &Access) {
    const DebugLoc &Loc = Access.getDebugLoc();
    Function *F = BB->getParent();
    uint32_t Site = Info.Sites.addSite({Kind, F->getName(), BB->getName(),
                                        Loc, fileOf(Loc),
                                        ValueTy->sizeInBits(), ""});
    Builder.setInsertPoint(BB, Index);
    Builder.setDebugLoc(Loc);
    Value *Addr =
        Builder.createCast(CastInst::Op::PtrToInt, Ptr, Ctx.getI64Ty());
    Builder.createCall(
        RecordMem,
        {Addr, Builder.getInt32(int32_t(ValueTy->sizeInBits())),
         Builder.getInt32(int32_t(Loc.Line)),
         Builder.getInt32(int32_t(Loc.Col)),
         Builder.getInt32(Kind == SiteKind::MemLoad ? 1 : 2),
         Builder.getInt32(int32_t(Site))});
    return 2;
  }

  /// Inserts operand-widening casts plus the record.arith call before the
  /// binary operation. Returns the number of instructions inserted.
  size_t insertArithHook(BasicBlock *BB, size_t Index, BinaryInst &BI) {
    const DebugLoc &Loc = BI.getDebugLoc();
    Function *F = BB->getParent();
    uint32_t Site = Info.Sites.addSite(
        {SiteKind::Arith, F->getName(), BB->getName(), Loc, fileOf(Loc), 0,
         BinaryInst::opName(BI.getOp())});
    Builder.setInsertPoint(BB, Index);
    Builder.setDebugLoc(Loc);
    size_t Inserted = 0;
    auto Widen = [&](Value *V) -> Value * {
      Type *Ty = V->getType();
      if (Ty == Ctx.getF64Ty())
        return V;
      ++Inserted;
      if (Ty->isFloatingPoint())
        return Builder.createCast(CastInst::Op::FPExt, V, Ctx.getF64Ty());
      return Builder.createCast(CastInst::Op::SIToFP, V, Ctx.getF64Ty());
    };
    Value *LHS = Widen(BI.getLHS());
    Value *RHS = Widen(BI.getRHS());
    Builder.createCall(RecordArith,
                       {Builder.getInt32(int32_t(Site)),
                        Builder.getInt32(int32_t(BI.getOp())), LHS, RHS});
    return Inserted + 1;
  }

  /// Brackets a call to a defined function with record.call / record.ret
  /// (the caller-side shadow-stack push/pop). Returns the number of
  /// instructions inserted before the walk index.
  size_t insertCallHooks(BasicBlock *BB, size_t Index, CallInst &CI) {
    const DebugLoc &Loc = CI.getDebugLoc();
    Function *F = BB->getParent();
    uint32_t FuncId = FuncIds.at(CI.getCallee());
    uint32_t Site = Info.Sites.addSite(
        {SiteKind::CallSite, F->getName(), BB->getName(), Loc, fileOf(Loc),
         0, CI.getCallee()->getName()});
    Builder.setInsertPoint(BB, Index);
    Builder.setDebugLoc(Loc);
    Builder.createCall(RecordCall, {Builder.getInt32(int32_t(FuncId)),
                                    Builder.getInt32(int32_t(Site))});
    // The call itself is now at Index + 1; the pop goes right after it.
    Builder.setInsertPoint(BB, Index + 2);
    Builder.createCall(RecordRet, {Builder.getInt32(int32_t(FuncId))});
    return 2; // Continue the walk after record.ret.
  }

  Module &M;
  Context &Ctx;
  const InstrumentationConfig &Config;
  IRBuilder Builder;
  InstrumentationInfo Info;
  std::unordered_map<const Function *, uint32_t> FuncIds;
  Function *RecordMem = nullptr;
  Function *RecordBB = nullptr;
  Function *RecordCall = nullptr;
  Function *RecordRet = nullptr;
  Function *RecordArith = nullptr;
};

} // namespace

InstrumentationInfo InstrumentationEngine::run(ir::Module &M) const {
  return Instrumenter(M, Config).run();
}
