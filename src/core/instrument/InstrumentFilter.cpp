//===- core/instrument/InstrumentFilter.cpp - Selective instrumentation ------===//

#include "core/instrument/InstrumentFilter.h"

#include <cstdlib>
#include <fstream>
#include <sstream>

using namespace cuadv;
using namespace cuadv::core;

namespace {

/// Whole-string unsigned decimal parse; rejects empty, signs and
/// trailing junk.
bool parseU32(const std::string &S, uint32_t &Out) {
  if (S.empty() || S[0] == '-' || S[0] == '+')
    return false;
  char *End = nullptr;
  unsigned long long V = std::strtoull(S.c_str(), &End, 10);
  if (End != S.c_str() + S.size() || V > 0xffffffffull)
    return false;
  Out = uint32_t(V);
  return true;
}

bool parseKindList(const std::string &S, uint8_t &Mask, std::string &Error) {
  Mask = 0;
  std::stringstream SS(S);
  std::string Name;
  while (std::getline(SS, Name, ',')) {
    if (Name == "load")
      Mask |= FilterLoad;
    else if (Name == "store")
      Mask |= FilterStore;
    else if (Name == "mem")
      Mask |= FilterLoad | FilterStore;
    else if (Name == "block")
      Mask |= FilterBlock;
    else if (Name == "arith")
      Mask |= FilterArith;
    else if (Name == "call")
      Mask |= FilterCall;
    else {
      Error = "unknown event kind '" + Name +
              "' (expected load, store, mem, block, arith or call)";
      return false;
    }
  }
  if (!Mask) {
    Error = "empty kind: selector";
    return false;
  }
  return true;
}

bool ruleMatches(const FilterRule &R, uint8_t KindBits,
                 const std::string &Func, uint32_t Line) {
  if (!(R.KindMask & KindBits))
    return false;
  if (!R.FuncGlob.empty() && !InstrumentFilter::globMatch(R.FuncGlob, Func))
    return false;
  if (R.LineBegin && (Line < R.LineBegin || Line > R.LineEnd))
    return false;
  return true;
}

std::string kindMaskText(uint8_t Mask) {
  if (Mask == FilterAllKinds)
    return "";
  std::string Out;
  auto Add = [&](const char *Name) {
    if (!Out.empty())
      Out += ',';
    Out += Name;
  };
  if ((Mask & (FilterLoad | FilterStore)) == (FilterLoad | FilterStore))
    Add("mem");
  else if (Mask & FilterLoad)
    Add("load");
  else if (Mask & FilterStore)
    Add("store");
  if (Mask & FilterBlock)
    Add("block");
  if (Mask & FilterArith)
    Add("arith");
  if (Mask & FilterCall)
    Add("call");
  return Out;
}

} // namespace

bool InstrumentFilter::globMatch(const std::string &Pattern,
                                 const std::string &Text) {
  // Iterative glob with single-star backtracking.
  size_t P = 0, T = 0, Star = std::string::npos, Mark = 0;
  while (T < Text.size()) {
    if (P < Pattern.size() &&
        (Pattern[P] == '?' || Pattern[P] == Text[T])) {
      ++P;
      ++T;
    } else if (P < Pattern.size() && Pattern[P] == '*') {
      Star = P++;
      Mark = T;
    } else if (Star != std::string::npos) {
      P = Star + 1;
      T = ++Mark;
    } else {
      return false;
    }
  }
  while (P < Pattern.size() && Pattern[P] == '*')
    ++P;
  return P == Pattern.size();
}

bool InstrumentFilter::allows(FilterKind Kind, const std::string &Func,
                              uint32_t Line) const {
  bool Allowed = true;
  for (const FilterRule &R : Rules)
    if (ruleMatches(R, Kind, Func, Line))
      Allowed = !R.Exclude;
  return Allowed;
}

bool InstrumentFilter::allowsAnyKind(const std::string &Func,
                                     uint32_t Line) const {
  for (FilterKind K : {FilterLoad, FilterStore, FilterBlock, FilterArith,
                       FilterCall})
    if (allows(K, Func, Line))
      return true;
  return false;
}

bool InstrumentFilter::parse(const std::string &Text, InstrumentFilter &Out,
                             std::string &Error) {
  InstrumentFilter F;
  std::stringstream Lines(Text);
  std::string Line;
  unsigned LineNo = 0;
  while (std::getline(Lines, Line)) {
    ++LineNo;
    if (size_t Hash = Line.find('#'); Hash != std::string::npos)
      Line.resize(Hash);
    std::stringstream Toks(Line);
    std::string Tok;
    if (!(Toks >> Tok))
      continue; // Blank or comment-only line.
    FilterRule R;
    if (Tok == "exclude")
      R.Exclude = true;
    else if (Tok != "include") {
      Error = "filter line " + std::to_string(LineNo) +
              ": expected 'include' or 'exclude', got '" + Tok + "'";
      return false;
    }
    bool SawFunc = false, SawKind = false, SawLine = false;
    while (Toks >> Tok) {
      size_t Colon = Tok.find(':');
      std::string Key =
          Colon == std::string::npos ? Tok : Tok.substr(0, Colon);
      std::string Val =
          Colon == std::string::npos ? "" : Tok.substr(Colon + 1);
      std::string Detail;
      if (Key == "fn" && !SawFunc && !Val.empty()) {
        R.FuncGlob = Val;
        SawFunc = true;
      } else if (Key == "kind" && !SawKind &&
                 parseKindList(Val, R.KindMask, Detail)) {
        SawKind = true;
      } else if (Key == "line" && !SawLine && !Val.empty()) {
        size_t Dash = Val.find('-');
        std::string Begin =
            Dash == std::string::npos ? Val : Val.substr(0, Dash);
        std::string End =
            Dash == std::string::npos ? Val : Val.substr(Dash + 1);
        if (!parseU32(Begin, R.LineBegin) || !parseU32(End, R.LineEnd) ||
            !R.LineBegin || R.LineEnd < R.LineBegin) {
          Error = "filter line " + std::to_string(LineNo) +
                  ": bad line range '" + Val + "' (expected N or A-B with "
                  "1 <= A <= B)";
          return false;
        }
        SawLine = true;
      } else {
        Error = "filter line " + std::to_string(LineNo) + ": bad selector '" +
                Tok + "'" + (Detail.empty() ? "" : ": " + Detail);
        return false;
      }
    }
    F.Rules.push_back(std::move(R));
  }
  Out = std::move(F);
  Error.clear();
  return true;
}

bool InstrumentFilter::loadFile(const std::string &Path, InstrumentFilter &Out,
                                std::string &Error) {
  std::ifstream In(Path, std::ios::binary);
  if (!In) {
    Error = "cannot open filter file '" + Path + "'";
    return false;
  }
  std::stringstream Buf;
  Buf << In.rdbuf();
  if (!parse(Buf.str(), Out, Error)) {
    Error = Path + ": " + Error;
    return false;
  }
  return true;
}

std::string InstrumentFilter::canonicalText() const {
  std::string Out;
  for (const FilterRule &R : Rules) {
    Out += R.Exclude ? "exclude" : "include";
    if (!R.FuncGlob.empty())
      Out += " fn:" + R.FuncGlob;
    if (std::string Kinds = kindMaskText(R.KindMask); !Kinds.empty())
      Out += " kind:" + Kinds;
    if (R.LineBegin)
      Out += " line:" + std::to_string(R.LineBegin) + "-" +
             std::to_string(R.LineEnd);
    Out += '\n';
  }
  return Out;
}
