//===- core/instrument/InstrumentFilter.h - Selective instrumentation -*- C++ -*-===//
//
// Part of the CUDAAdvisor reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Score-P-style instrumentation filtering: an ordered rule list that
/// decides, per prospective hook site, whether the instrumentation pass
/// inserts the hook at all. Filtering happens at instrumentation time —
/// an excluded site produces no site-table entry, no inserted call and
/// no simulated hook cost, unlike runtime event filtering which still
/// pays the hook invocation.
///
/// Spec file grammar (one rule per line, '#' starts a comment):
///
///   include|exclude [fn:<glob>] [kind:<load|store|mem|block|arith|call>]
///                   [line:<N>|<A>-<B>]
///
/// Selectors within a rule AND together; omitted selectors match
/// everything. Rules are evaluated in order and the LAST matching rule
/// wins; sites matched by no rule are included. Globs support '*' and
/// '?'. `kind:mem` is shorthand for loads and stores together.
///
//===----------------------------------------------------------------------===//

#ifndef CUADV_CORE_INSTRUMENT_INSTRUMENTFILTER_H
#define CUADV_CORE_INSTRUMENT_INSTRUMENTFILTER_H

#include <cstdint>
#include <string>
#include <vector>

namespace cuadv {
namespace core {

/// One parsed filter rule; default-constructed selectors match any site.
struct FilterRule {
  bool Exclude = false;
  /// Function-name glob; empty matches every function.
  std::string FuncGlob;
  /// OR-mask of FilterKind bits the rule applies to.
  uint8_t KindMask = 0x1f;
  /// 1-based inclusive source-line range; 0/0 matches any line
  /// (including hooks with no debug location).
  uint32_t LineBegin = 0;
  uint32_t LineEnd = 0;
};

/// Event-kind bits used by FilterRule::KindMask and
/// InstrumentFilter::allows.
enum FilterKind : uint8_t {
  FilterLoad = 1u << 0,
  FilterStore = 1u << 1,
  FilterBlock = 1u << 2,
  FilterArith = 1u << 3,
  FilterCall = 1u << 4,
  FilterAllKinds = 0x1f,
};

/// An ordered, last-match-wins instrumentation filter.
class InstrumentFilter {
public:
  /// No rules: every site is instrumented (the exact-profile default).
  bool empty() const { return Rules.empty(); }

  /// True when the site (one \p Kind bit, enclosing function \p Func,
  /// 1-based source \p Line or 0 for no-debug-info) should be
  /// instrumented.
  bool allows(FilterKind Kind, const std::string &Func, uint32_t Line) const;

  /// True when at least one event kind is still instrumented at the
  /// location — the lint gate suppresses diagnostics only for regions
  /// where the filter removed every kind (a partially filtered site can
  /// still produce the evidence the diagnostic is based on).
  bool allowsAnyKind(const std::string &Func, uint32_t Line) const;

  /// Parses \p Text (the spec-file grammar above). On failure returns
  /// false with a one-line message in \p Error; \p Out is only assigned
  /// on success.
  static bool parse(const std::string &Text, InstrumentFilter &Out,
                    std::string &Error);

  /// Reads and parses \p Path. Error covers both I/O and syntax.
  static bool loadFile(const std::string &Path, InstrumentFilter &Out,
                       std::string &Error);

  /// Deterministic one-rule-per-line rendering of the parsed rules
  /// (comments and formatting dropped). Two specs with equal canonical
  /// text filter identically — cache keys hash this, never the raw file.
  std::string canonicalText() const;

  const std::vector<FilterRule> &rules() const { return Rules; }

  /// Glob match with '*' (any run) and '?' (any one char); exposed for
  /// tests.
  static bool globMatch(const std::string &Pattern, const std::string &Text);

private:
  std::vector<FilterRule> Rules;
};

} // namespace core
} // namespace cuadv

#endif // CUADV_CORE_INSTRUMENT_INSTRUMENTFILTER_H
