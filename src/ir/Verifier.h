//===- ir/Verifier.h - IR well-formedness checks ------------------*- C++ -*-===//
//
// Part of the CUDAAdvisor reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Structural and semantic IR checks run after front-end code generation
/// and after instrumentation. Beyond the usual SSA rules, two project
/// invariants are enforced because the SIMT interpreter depends on them:
/// every definition has exactly one return (so warps reconverge before
/// returning) and allocas appear only in the entry block (so frame sizes
/// are static).
///
//===----------------------------------------------------------------------===//

#ifndef CUADV_IR_VERIFIER_H
#define CUADV_IR_VERIFIER_H

#include "ir/Module.h"

#include <string>
#include <vector>

namespace cuadv {
namespace ir {

/// Verifies \p F; appends human-readable problems to \p Errors. Returns
/// true when no problems were found.
bool verifyFunction(const Function &F, std::vector<std::string> &Errors);

/// Verifies every definition in \p M.
bool verifyModule(const Module &M, std::vector<std::string> &Errors);

} // namespace ir
} // namespace cuadv

#endif // CUADV_IR_VERIFIER_H
