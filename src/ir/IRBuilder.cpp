//===- ir/IRBuilder.cpp - Instruction creation helper ----------------------===//

#include "ir/IRBuilder.h"

#include "support/Error.h"

using namespace cuadv;
using namespace cuadv::ir;

void IRBuilder::setInsertPointEnd(BasicBlock *BB) {
  Block = BB;
  AtEnd = true;
  Index = 0;
}

void IRBuilder::setInsertPoint(BasicBlock *BB, size_t At) {
  assert(At <= BB->size() && "insertion index out of range");
  Block = BB;
  AtEnd = false;
  Index = At;
}

Instruction *IRBuilder::insert(std::unique_ptr<Instruction> Inst,
                               const std::string &Name) {
  assert(Block && "no insertion point set");
  Inst->setDebugLoc(CurLoc);
  if (!Name.empty())
    Inst->setName(Name);
  if (AtEnd)
    return Block->push_back(std::move(Inst));
  Instruction *Placed = Block->insertAt(Index, std::move(Inst));
  ++Index; // Keep inserting after the instruction just placed.
  return Placed;
}

AllocaInst *IRBuilder::createAlloca(Type *AllocatedTy, uint32_t ArrayCount,
                                    AddrSpace AS, const std::string &Name) {
  return static_cast<AllocaInst *>(insert(
      std::make_unique<AllocaInst>(Ctx, AllocatedTy, ArrayCount, AS), Name));
}

LoadInst *IRBuilder::createLoad(Value *Ptr, const std::string &Name) {
  return static_cast<LoadInst *>(insert(std::make_unique<LoadInst>(Ptr),
                                        Name));
}

StoreInst *IRBuilder::createStore(Value *StoredValue, Value *Ptr) {
  return static_cast<StoreInst *>(
      insert(std::make_unique<StoreInst>(Ctx, StoredValue, Ptr), ""));
}

GEPInst *IRBuilder::createGEP(Value *Ptr, Value *IndexValue,
                              const std::string &Name) {
  return static_cast<GEPInst *>(
      insert(std::make_unique<GEPInst>(Ptr, IndexValue), Name));
}

BinaryInst *IRBuilder::createBinary(BinaryInst::Op Op, Value *LHS, Value *RHS,
                                    const std::string &Name) {
  return static_cast<BinaryInst *>(
      insert(std::make_unique<BinaryInst>(Op, LHS, RHS), Name));
}

CmpInst *IRBuilder::createCmp(CmpInst::Pred Pred, Value *LHS, Value *RHS,
                              const std::string &Name) {
  return static_cast<CmpInst *>(
      insert(std::make_unique<CmpInst>(Ctx, Pred, LHS, RHS), Name));
}

CastInst *IRBuilder::createCast(CastInst::Op Op, Value *Operand, Type *DestTy,
                                const std::string &Name) {
  return static_cast<CastInst *>(
      insert(std::make_unique<CastInst>(Op, Operand, DestTy), Name));
}

CallInst *IRBuilder::createCall(Function *Callee, std::vector<Value *> Args,
                                const std::string &Name) {
  return static_cast<CallInst *>(
      insert(std::make_unique<CallInst>(Callee, std::move(Args)), Name));
}

SelectInst *IRBuilder::createSelect(Value *Cond, Value *TrueV, Value *FalseV,
                                    const std::string &Name) {
  return static_cast<SelectInst *>(
      insert(std::make_unique<SelectInst>(Cond, TrueV, FalseV), Name));
}

BranchInst *IRBuilder::createBr(BasicBlock *Target) {
  return static_cast<BranchInst *>(
      insert(std::make_unique<BranchInst>(Ctx, Target), ""));
}

BranchInst *IRBuilder::createCondBr(Value *Cond, BasicBlock *TrueBB,
                                    BasicBlock *FalseBB) {
  return static_cast<BranchInst *>(
      insert(std::make_unique<BranchInst>(Ctx, Cond, TrueBB, FalseBB), ""));
}

ReturnInst *IRBuilder::createRet(Value *RetValue) {
  return static_cast<ReturnInst *>(
      insert(std::make_unique<ReturnInst>(Ctx, RetValue), ""));
}
