//===- ir/IR.cpp - Core IR class implementations ---------------------------===//
//
// Part of the CUDAAdvisor reproduction project.
//
//===----------------------------------------------------------------------===//

#include "ir/Module.h"

#include "ir/Casting.h"
#include "support/Error.h"

using namespace cuadv;
using namespace cuadv::ir;

//===----------------------------------------------------------------------===//
// Type
//===----------------------------------------------------------------------===//

const char *ir::addrSpaceName(AddrSpace AS) {
  switch (AS) {
  case AddrSpace::Generic:
    return "generic";
  case AddrSpace::Global:
    return "global";
  case AddrSpace::Shared:
    return "shared";
  case AddrSpace::Local:
    return "local";
  }
  cuadv_unreachable("invalid address space");
}

unsigned Type::sizeInBytes() const {
  switch (TheKind) {
  case Kind::Void:
    return 0;
  case Kind::I1:
    return 1;
  case Kind::I32:
  case Kind::F32:
    return 4;
  case Kind::I64:
  case Kind::F64:
  case Kind::Pointer:
    return 8;
  }
  cuadv_unreachable("invalid type kind");
}

std::string Type::getName() const {
  switch (TheKind) {
  case Kind::Void:
    return "void";
  case Kind::I1:
    return "i1";
  case Kind::I32:
    return "i32";
  case Kind::I64:
    return "i64";
  case Kind::F32:
    return "f32";
  case Kind::F64:
    return "f64";
  case Kind::Pointer: {
    std::string Result = Pointee->getName();
    if (AS != AddrSpace::Global) {
      Result += ' ';
      Result += addrSpaceName(AS);
    }
    Result += '*';
    return Result;
  }
  }
  cuadv_unreachable("invalid type kind");
}

//===----------------------------------------------------------------------===//
// Context
//===----------------------------------------------------------------------===//

Context::Context() {
  auto MakeScalar = [](Type::Kind K) {
    return std::unique_ptr<Type>(new Type(K, nullptr, AddrSpace::Generic));
  };
  VoidTy = MakeScalar(Type::Kind::Void);
  I1Ty = MakeScalar(Type::Kind::I1);
  I32Ty = MakeScalar(Type::Kind::I32);
  I64Ty = MakeScalar(Type::Kind::I64);
  F32Ty = MakeScalar(Type::Kind::F32);
  F64Ty = MakeScalar(Type::Kind::F64);
  FileNames.push_back("<unknown>");
  FileIds.emplace(FileNames.front(), 0u);
}

Context::~Context() = default;

Type *Context::getPointerTy(Type *Pointee, AddrSpace AS) {
  assert(Pointee && !Pointee->isVoid() && "cannot point to void");
  auto Key = std::make_pair(Pointee, AS);
  auto It = PointerTys.find(Key);
  if (It != PointerTys.end())
    return It->second.get();
  auto *Ty = new Type(Type::Kind::Pointer, Pointee, AS);
  PointerTys.emplace(Key, std::unique_ptr<Type>(Ty));
  return Ty;
}

ConstantInt *Context::getConstantInt(Type *Ty, int64_t Value) {
  assert(Ty->isInteger() && "integer constant needs integer type");
  if (Ty->isI1())
    Value = Value != 0 ? 1 : 0;
  else if (Ty->getKind() == Type::Kind::I32)
    Value = static_cast<int32_t>(Value);
  auto Key = std::make_pair(Ty, Value);
  auto It = IntConsts.find(Key);
  if (It != IntConsts.end())
    return It->second.get();
  auto *C = new ConstantInt(Ty, Value);
  IntConsts.emplace(Key, std::unique_ptr<ConstantInt>(C));
  return C;
}

ConstantFP *Context::getConstantFP(Type *Ty, double Value) {
  assert(Ty->isFloatingPoint() && "fp constant needs fp type");
  if (Ty->getKind() == Type::Kind::F32)
    Value = static_cast<float>(Value);
  auto Key = std::make_pair(Ty, Value);
  auto It = FPConsts.find(Key);
  if (It != FPConsts.end())
    return It->second.get();
  auto *C = new ConstantFP(Ty, Value);
  FPConsts.emplace(Key, std::unique_ptr<ConstantFP>(C));
  return C;
}

unsigned Context::internFileName(const std::string &Name) {
  auto It = FileIds.find(Name);
  if (It != FileIds.end())
    return It->second;
  unsigned Id = static_cast<unsigned>(FileNames.size());
  FileNames.push_back(Name);
  FileIds.emplace(Name, Id);
  return Id;
}

const std::string &Context::fileName(unsigned Id) const {
  assert(Id < FileNames.size() && "invalid file id");
  return FileNames[Id];
}

//===----------------------------------------------------------------------===//
// Value & Instruction
//===----------------------------------------------------------------------===//

Value::~Value() = default;

const char *Instruction::getOpcodeName() const {
  switch (getKind()) {
  case ValueKind::Alloca:
    return "alloca";
  case ValueKind::Load:
    return "load";
  case ValueKind::Store:
    return "store";
  case ValueKind::GEP:
    return "gep";
  case ValueKind::Binary:
    return BinaryInst::opName(cast<BinaryInst>(this)->getOp());
  case ValueKind::Cmp:
    return "cmp";
  case ValueKind::Cast:
    return "cast";
  case ValueKind::Call:
    return "call";
  case ValueKind::Select:
    return "select";
  case ValueKind::Branch:
    return "br";
  case ValueKind::Return:
    return "ret";
  default:
    cuadv_unreachable("not an instruction kind");
  }
}

AllocaInst::AllocaInst(Context &Ctx, Type *AllocatedTy, uint32_t ArrayCount,
                       AddrSpace AS)
    : Instruction(ValueKind::Alloca, Ctx.getPointerTy(AllocatedTy, AS), {}),
      AllocatedTy(AllocatedTy), ArrayCount(ArrayCount) {
  assert((AS == AddrSpace::Local || AS == AddrSpace::Shared) &&
         "alloca must be local or shared");
  assert(ArrayCount > 0 && "alloca array count must be positive");
}

StoreInst::StoreInst(Context &Ctx, Value *StoredValue, Value *Ptr)
    : Instruction(ValueKind::Store, Ctx.getVoidTy(), {StoredValue, Ptr}) {
  assert(Ptr->getType()->isPointer() && "store pointer operand required");
  assert(Ptr->getType()->getPointee() == StoredValue->getType() &&
         "store value type must match pointee");
}

const char *BinaryInst::opName(Op TheOp) {
  switch (TheOp) {
  case Op::Add:
    return "add";
  case Op::Sub:
    return "sub";
  case Op::Mul:
    return "mul";
  case Op::SDiv:
    return "sdiv";
  case Op::SRem:
    return "srem";
  case Op::And:
    return "and";
  case Op::Or:
    return "or";
  case Op::Xor:
    return "xor";
  case Op::Shl:
    return "shl";
  case Op::AShr:
    return "ashr";
  case Op::FAdd:
    return "fadd";
  case Op::FSub:
    return "fsub";
  case Op::FMul:
    return "fmul";
  case Op::FDiv:
    return "fdiv";
  }
  cuadv_unreachable("invalid binary op");
}

CmpInst::CmpInst(Context &Ctx, Pred ThePred, Value *LHS, Value *RHS)
    : Instruction(ValueKind::Cmp, Ctx.getI1Ty(), {LHS, RHS}),
      ThePred(ThePred) {
  assert(LHS->getType() == RHS->getType() && "cmp operand types must match");
}

const char *CmpInst::predName(Pred ThePred) {
  switch (ThePred) {
  case Pred::EQ:
    return "eq";
  case Pred::NE:
    return "ne";
  case Pred::SLT:
    return "slt";
  case Pred::SLE:
    return "sle";
  case Pred::SGT:
    return "sgt";
  case Pred::SGE:
    return "sge";
  case Pred::OEQ:
    return "oeq";
  case Pred::ONE:
    return "one";
  case Pred::OLT:
    return "olt";
  case Pred::OLE:
    return "ole";
  case Pred::OGT:
    return "ogt";
  case Pred::OGE:
    return "oge";
  }
  cuadv_unreachable("invalid cmp predicate");
}

const char *CastInst::opName(Op TheOp) {
  switch (TheOp) {
  case Op::SIToFP:
    return "sitofp";
  case Op::FPToSI:
    return "fptosi";
  case Op::SExt:
    return "sext";
  case Op::Trunc:
    return "trunc";
  case Op::ZExt:
    return "zext";
  case Op::FPExt:
    return "fpext";
  case Op::FPTrunc:
    return "fptrunc";
  case Op::PtrCast:
    return "ptrcast";
  case Op::PtrToInt:
    return "ptrtoint";
  }
  cuadv_unreachable("invalid cast op");
}

CallInst::CallInst(Function *Callee, std::vector<Value *> Args)
    : Instruction(ValueKind::Call, Callee->getReturnType(), std::move(Args)),
      Callee(Callee) {
  assert(getNumOperands() == Callee->getNumArgs() &&
         "call argument count mismatch");
}

BranchInst::BranchInst(Context &Ctx, BasicBlock *Target)
    : Instruction(ValueKind::Branch, Ctx.getVoidTy(), {}) {
  assert(Target && "branch target required");
  Succs[0] = Target;
}

BranchInst::BranchInst(Context &Ctx, Value *Cond, BasicBlock *TrueBlock,
                       BasicBlock *FalseBlock)
    : Instruction(ValueKind::Branch, Ctx.getVoidTy(), {Cond}) {
  assert(Cond->getType()->isI1() && "branch condition must be i1");
  assert(TrueBlock && FalseBlock && "branch targets required");
  Succs[0] = TrueBlock;
  Succs[1] = FalseBlock;
}

ReturnInst::ReturnInst(Context &Ctx, Value *RetValue)
    : Instruction(ValueKind::Return, Ctx.getVoidTy(),
                  RetValue ? std::vector<Value *>{RetValue}
                           : std::vector<Value *>{}) {}

//===----------------------------------------------------------------------===//
// BasicBlock
//===----------------------------------------------------------------------===//

Instruction *BasicBlock::push_back(std::unique_ptr<Instruction> Inst) {
  Inst->setParent(this);
  Insts.push_back(std::move(Inst));
  return Insts.back().get();
}

Instruction *BasicBlock::insertAt(size_t Index,
                                  std::unique_ptr<Instruction> Inst) {
  assert(Index <= Insts.size() && "insertion index out of range");
  Inst->setParent(this);
  auto It = Insts.insert(Insts.begin() + static_cast<ptrdiff_t>(Index),
                         std::move(Inst));
  return It->get();
}

Instruction *BasicBlock::getTerminator() const {
  if (Insts.empty())
    return nullptr;
  Instruction *Last = Insts.back().get();
  return Last->isTerminator() ? Last : nullptr;
}

std::vector<BasicBlock *> BasicBlock::successors() const {
  std::vector<BasicBlock *> Result;
  Instruction *Term = getTerminator();
  if (!Term)
    return Result;
  if (auto *Br = dyn_cast<BranchInst>(Term))
    for (unsigned I = 0, E = Br->getNumSuccessors(); I != E; ++I)
      Result.push_back(Br->getSuccessor(I));
  return Result;
}

//===----------------------------------------------------------------------===//
// Function
//===----------------------------------------------------------------------===//

Argument *Function::addArgument(Type *Ty, std::string ArgName) {
  auto Index = static_cast<unsigned>(Args.size());
  Args.push_back(
      std::make_unique<Argument>(Ty, std::move(ArgName), this, Index));
  return Args.back().get();
}

BasicBlock *Function::createBlock(std::string BlockName) {
  Blocks.push_back(std::make_unique<BasicBlock>(std::move(BlockName), this));
  return Blocks.back().get();
}

BasicBlock *Function::findBlock(const std::string &BlockName) const {
  for (const auto &BB : Blocks)
    if (BB->getName() == BlockName)
      return BB.get();
  return nullptr;
}

//===----------------------------------------------------------------------===//
// Module
//===----------------------------------------------------------------------===//

Function *Module::createFunction(std::string FuncName, Type *ReturnTy,
                                 bool IsKernel) {
  if (getFunction(FuncName))
    reportFatalError("duplicate function name: " + FuncName);
  Functions.push_back(
      std::make_unique<Function>(std::move(FuncName), ReturnTy, this,
                                 IsKernel));
  return Functions.back().get();
}

Function *Module::getFunction(const std::string &FuncName) const {
  for (const auto &F : Functions)
    if (F->getName() == FuncName)
      return F.get();
  return nullptr;
}

Function *Module::getOrInsertDeclaration(const std::string &FuncName,
                                         Type *ReturnTy,
                                         const std::vector<Type *> &ParamTys) {
  if (Function *Existing = getFunction(FuncName)) {
    assert(Existing->getReturnType() == ReturnTy &&
           Existing->getNumArgs() == ParamTys.size() &&
           "conflicting declaration signature");
    return Existing;
  }
  Function *F = createFunction(FuncName, ReturnTy, /*IsKernel=*/false);
  for (size_t I = 0; I < ParamTys.size(); ++I)
    F->addArgument(ParamTys[I], "a" + std::to_string(I));
  return F;
}
