//===- ir/Value.h - Value hierarchy roots -------------------------*- C++ -*-===//
//
// Part of the CUDAAdvisor reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The Value class hierarchy roots: Value, Argument, and the constant
/// classes. Instructions live in ir/Instruction.h. Values carry a Kind tag
/// enabling LLVM-style isa<>/cast<>/dyn_cast<> (see ir/Casting.h).
///
//===----------------------------------------------------------------------===//

#ifndef CUADV_IR_VALUE_H
#define CUADV_IR_VALUE_H

#include "ir/Type.h"

#include <cstdint>
#include <string>

namespace cuadv {
namespace ir {

class Function;

/// Discriminator for the Value hierarchy. Instruction kinds form a
/// contiguous range so Instruction::classof is a range check.
enum class ValueKind : uint8_t {
  Argument,
  ConstantInt,
  ConstantFP,
  // Instructions. Keep InstBegin/InstEnd in sync with the subclasses.
  InstBegin,
  Alloca = InstBegin,
  Load,
  Store,
  GEP,
  Binary,
  Cmp,
  Cast,
  Call,
  Select,
  Branch,
  Return,
  InstEnd,
};

/// Base of everything that can be an instruction operand.
class Value {
public:
  virtual ~Value();
  Value(const Value &) = delete;
  Value &operator=(const Value &) = delete;

  ValueKind getKind() const { return Kind; }
  Type *getType() const { return Ty; }

  const std::string &getName() const { return Name; }
  void setName(std::string NewName) { Name = std::move(NewName); }
  bool hasName() const { return !Name.empty(); }

protected:
  Value(ValueKind Kind, Type *Ty) : Kind(Kind), Ty(Ty) {}

private:
  ValueKind Kind;
  Type *Ty;
  std::string Name;
};

/// A formal parameter of a Function.
class Argument : public Value {
public:
  Argument(Type *Ty, std::string Name, Function *Parent, unsigned Index)
      : Value(ValueKind::Argument, Ty), Parent(Parent), Index(Index) {
    setName(std::move(Name));
  }

  Function *getParent() const { return Parent; }
  unsigned getIndex() const { return Index; }

  static bool classof(const Value *V) {
    return V->getKind() == ValueKind::Argument;
  }

private:
  Function *Parent;
  unsigned Index;
};

/// Common base for interned constants.
class Constant : public Value {
public:
  static bool classof(const Value *V) {
    return V->getKind() == ValueKind::ConstantInt ||
           V->getKind() == ValueKind::ConstantFP;
  }

protected:
  Constant(ValueKind Kind, Type *Ty) : Value(Kind, Ty) {}
};

/// An integer (or boolean) constant of type i1/i32/i64.
class ConstantInt : public Constant {
public:
  ConstantInt(Type *Ty, int64_t Value)
      : Constant(ValueKind::ConstantInt, Ty), TheValue(Value) {}

  int64_t getValue() const { return TheValue; }
  bool isZero() const { return TheValue == 0; }

  static bool classof(const Value *V) {
    return V->getKind() == ValueKind::ConstantInt;
  }

private:
  int64_t TheValue;
};

/// A floating-point constant of type f32/f64.
class ConstantFP : public Constant {
public:
  ConstantFP(Type *Ty, double Value)
      : Constant(ValueKind::ConstantFP, Ty), TheValue(Value) {}

  double getValue() const { return TheValue; }

  static bool classof(const Value *V) {
    return V->getKind() == ValueKind::ConstantFP;
  }

private:
  double TheValue;
};

} // namespace ir
} // namespace cuadv

#endif // CUADV_IR_VALUE_H
