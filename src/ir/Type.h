//===- ir/Type.h - IR type system --------------------------------*- C++ -*-===//
//
// Part of the CUDAAdvisor reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The bitcode-level type system: void, i1, i32, i64, f32, f64, and typed
/// pointers carrying a CUDA address space. Types are interned in a Context
/// and compared by pointer identity.
///
//===----------------------------------------------------------------------===//

#ifndef CUADV_IR_TYPE_H
#define CUADV_IR_TYPE_H

#include <cstdint>
#include <string>

namespace cuadv {
namespace ir {

class Context;

/// CUDA memory address spaces. Pointers into different spaces are routed
/// to different storage in the simulator (and only Global accesses go
/// through the L1 cache model).
enum class AddrSpace : uint8_t {
  Generic = 0,
  Global = 1,
  Shared = 2,
  Local = 3,
};

/// Returns "global", "shared", ... for printing.
const char *addrSpaceName(AddrSpace AS);

/// An interned IR type. Obtain instances through the Context factories;
/// equal types are pointer-equal.
class Type {
public:
  enum class Kind : uint8_t {
    Void,
    I1,
    I32,
    I64,
    F32,
    F64,
    Pointer,
  };

  Kind getKind() const { return TheKind; }

  bool isVoid() const { return TheKind == Kind::Void; }
  bool isI1() const { return TheKind == Kind::I1; }
  bool isInteger() const {
    return TheKind == Kind::I1 || TheKind == Kind::I32 ||
           TheKind == Kind::I64;
  }
  bool isFloatingPoint() const {
    return TheKind == Kind::F32 || TheKind == Kind::F64;
  }
  bool isPointer() const { return TheKind == Kind::Pointer; }
  bool isScalar() const { return !isVoid() && !isPointer(); }

  /// For pointer types: the pointee type. Null otherwise.
  Type *getPointee() const { return Pointee; }
  /// For pointer types: the address space. Generic otherwise.
  AddrSpace getAddrSpace() const { return AS; }

  /// Storage size in bytes (pointers are 8). Void has size 0.
  unsigned sizeInBytes() const;
  unsigned sizeInBits() const { return sizeInBytes() * 8; }

  /// Textual spelling, e.g. "i32", "f32*", "f32 shared*".
  std::string getName() const;

private:
  friend class Context;
  Type(Kind K, Type *Pointee, AddrSpace AS)
      : TheKind(K), AS(AS), Pointee(Pointee) {}

  Kind TheKind;
  AddrSpace AS;
  Type *Pointee;
};

} // namespace ir
} // namespace cuadv

#endif // CUADV_IR_TYPE_H
