//===- ir/Parser.cpp - Textual IR parsing ----------------------------------===//

#include "ir/Parser.h"

#include "ir/Casting.h"
#include "ir/IRBuilder.h"

#include <cstdlib>
#include <map>
#include <optional>
#include <unordered_map>
#include <unordered_set>

using namespace cuadv;
using namespace cuadv::ir;

namespace {

//===----------------------------------------------------------------------===//
// Lexer
//===----------------------------------------------------------------------===//

enum class TokKind {
  Eof,
  Ident,    // bare identifier or keyword
  LocalRef, // %name
  GlobalRef, // @name
  IntLit,
  FloatLit,
  String,
  LParen,
  RParen,
  LBrace,
  RBrace,
  Comma,
  Colon,
  Equal,
  Star,
  Bang,
};

struct Token {
  TokKind Kind = TokKind::Eof;
  std::string Text;   // Identifier/ref/string payload.
  int64_t IntValue = 0;
  double FloatValue = 0.0;
  unsigned Line = 0;
};

class Lexer {
public:
  explicit Lexer(const std::string &Text) : Text(Text) {}

  Token next() {
    skipWhitespaceAndComments();
    Token Tok;
    Tok.Line = Line;
    if (Pos >= Text.size())
      return Tok; // Eof

    char C = Text[Pos];
    if (C == '%' || C == '@') {
      ++Pos;
      Tok.Kind = C == '%' ? TokKind::LocalRef : TokKind::GlobalRef;
      Tok.Text = lexIdentBody(/*AllowLeadingDigit=*/true);
      return Tok;
    }
    if (std::isalpha(static_cast<unsigned char>(C)) || C == '_') {
      Tok.Kind = TokKind::Ident;
      Tok.Text = lexIdentBody(/*AllowLeadingDigit=*/false);
      return Tok;
    }
    if (std::isdigit(static_cast<unsigned char>(C)) ||
        (C == '-' && Pos + 1 < Text.size() &&
         (std::isdigit(static_cast<unsigned char>(Text[Pos + 1])) ||
          Text[Pos + 1] == '.')))
      return lexNumber();
    if (C == '"')
      return lexString();

    ++Pos;
    switch (C) {
    case '(':
      Tok.Kind = TokKind::LParen;
      return Tok;
    case ')':
      Tok.Kind = TokKind::RParen;
      return Tok;
    case '{':
      Tok.Kind = TokKind::LBrace;
      return Tok;
    case '}':
      Tok.Kind = TokKind::RBrace;
      return Tok;
    case ',':
      Tok.Kind = TokKind::Comma;
      return Tok;
    case ':':
      Tok.Kind = TokKind::Colon;
      return Tok;
    case '=':
      Tok.Kind = TokKind::Equal;
      return Tok;
    case '*':
      Tok.Kind = TokKind::Star;
      return Tok;
    case '!':
      Tok.Kind = TokKind::Bang;
      return Tok;
    default:
      Tok.Kind = TokKind::Eof;
      Tok.Text = std::string(1, C);
      ErrorChar = true;
      return Tok;
    }
  }

  bool hadErrorChar() const { return ErrorChar; }

private:
  void skipWhitespaceAndComments() {
    while (Pos < Text.size()) {
      char C = Text[Pos];
      if (C == '\n') {
        ++Line;
        ++Pos;
      } else if (std::isspace(static_cast<unsigned char>(C))) {
        ++Pos;
      } else if (C == ';') {
        while (Pos < Text.size() && Text[Pos] != '\n')
          ++Pos;
      } else {
        break;
      }
    }
  }

  std::string lexIdentBody(bool AllowLeadingDigit) {
    size_t Start = Pos;
    (void)AllowLeadingDigit;
    while (Pos < Text.size()) {
      char C = Text[Pos];
      if (std::isalnum(static_cast<unsigned char>(C)) || C == '_' ||
          C == '.')
        ++Pos;
      else
        break;
    }
    return Text.substr(Start, Pos - Start);
  }

  Token lexNumber() {
    Token Tok;
    Tok.Line = Line;
    size_t Start = Pos;
    if (Text[Pos] == '-')
      ++Pos;
    bool IsFloat = false;
    while (Pos < Text.size()) {
      char C = Text[Pos];
      if (std::isdigit(static_cast<unsigned char>(C))) {
        ++Pos;
      } else if (C == '.' || C == 'e' || C == 'E') {
        IsFloat = true;
        ++Pos;
        if (Pos < Text.size() && (Text[Pos] == '+' || Text[Pos] == '-') &&
            (C == 'e' || C == 'E'))
          ++Pos;
      } else {
        break;
      }
    }
    std::string Spelling = Text.substr(Start, Pos - Start);
    if (IsFloat) {
      Tok.Kind = TokKind::FloatLit;
      Tok.FloatValue = std::strtod(Spelling.c_str(), nullptr);
    } else {
      Tok.Kind = TokKind::IntLit;
      Tok.IntValue = std::strtoll(Spelling.c_str(), nullptr, 10);
    }
    return Tok;
  }

  Token lexString() {
    Token Tok;
    Tok.Line = Line;
    Tok.Kind = TokKind::String;
    ++Pos; // opening quote
    size_t Start = Pos;
    while (Pos < Text.size() && Text[Pos] != '"')
      ++Pos;
    Tok.Text = Text.substr(Start, Pos - Start);
    if (Pos < Text.size())
      ++Pos; // closing quote
    return Tok;
  }

  const std::string &Text;
  size_t Pos = 0;
  unsigned Line = 1;
  bool ErrorChar = false;
};

//===----------------------------------------------------------------------===//
// Parser
//===----------------------------------------------------------------------===//

class Parser {
public:
  Parser(const std::string &Text, Context &Ctx) : Ctx(Ctx) {
    Lexer Lex(Text);
    for (;;) {
      Token Tok = Lex.next();
      bool IsEof = Tok.Kind == TokKind::Eof;
      Tokens.push_back(std::move(Tok));
      if (IsEof)
        break;
    }
  }

  ParseResult run() {
    M = std::make_unique<Module>("parsed", Ctx);
    if (peek().Kind == TokKind::Ident && peek().Text == "module") {
      advance();
      if (peek().Kind != TokKind::String)
        return fail("expected module name string");
      ModuleName = advance().Text;
      M = std::make_unique<Module>(ModuleName, Ctx);
    }

    // Pass 1: create all functions from headers; remember body ranges.
    size_t Save = Cursor;
    if (!scanHeaders())
      return takeError();
    Cursor = Save;

    // Pass 2: parse bodies.
    while (peek().Kind != TokKind::Eof) {
      if (!parseTopLevel())
        return takeError();
    }
    ParseResult R;
    R.M = std::move(M);
    return R;
  }

private:
  const Token &peek(size_t Ahead = 0) const {
    size_t I = Cursor + Ahead;
    return I < Tokens.size() ? Tokens[I] : Tokens.back();
  }
  const Token &advance() { return Tokens[Cursor++]; }

  bool expect(TokKind Kind, const char *What) {
    if (peek().Kind != Kind)
      return error(std::string("expected ") + What);
    advance();
    return true;
  }

  bool error(const std::string &Message) {
    if (Err.empty()) {
      Err = Message;
      ErrLine = peek().Line;
    }
    return false;
  }

  ParseResult takeError() {
    ParseResult R;
    R.Error = Err.empty() ? "unknown parse error" : Err;
    R.ErrorLine = ErrLine;
    return R;
  }

  ParseResult fail(const std::string &Message) {
    error(Message);
    return takeError();
  }

  //===--------------------------------------------------------------------===//
  // Pass 1: headers
  //===--------------------------------------------------------------------===//

  bool scanHeaders() {
    while (peek().Kind != TokKind::Eof) {
      if (peek().Kind != TokKind::Ident ||
          (peek().Text != "define" && peek().Text != "declare"))
        return error("expected 'define' or 'declare'");
      bool IsDefine = advance().Text == "define";
      bool IsKernel = false;
      if (peek().Kind == TokKind::Ident && peek().Text == "kernel") {
        IsKernel = true;
        advance();
      }
      Type *RetTy = parseType(/*AllowVoid=*/true);
      if (!RetTy)
        return false;
      if (peek().Kind != TokKind::GlobalRef)
        return error("expected function name");
      std::string Name = advance().Text;
      if (M->getFunction(Name))
        return error("duplicate function @" + Name);
      Function *F = M->createFunction(Name, RetTy, IsKernel);
      if (!expect(TokKind::LParen, "'('"))
        return false;
      if (peek().Kind != TokKind::RParen) {
        for (;;) {
          Type *ArgTy = parseType(/*AllowVoid=*/false);
          if (!ArgTy)
            return false;
          std::string ArgName;
          if (peek().Kind == TokKind::LocalRef)
            ArgName = advance().Text;
          else
            ArgName = "a" + std::to_string(F->getNumArgs());
          F->addArgument(ArgTy, ArgName);
          if (peek().Kind != TokKind::Comma)
            break;
          advance();
        }
      }
      if (!expect(TokKind::RParen, "')'"))
        return false;
      if (peek().Kind == TokKind::Ident && peek().Text == "file") {
        advance();
        if (peek().Kind != TokKind::String)
          return error("expected file name string");
        F->setSourceFileId(Ctx.internFileName(advance().Text));
      }
      if (IsDefine) {
        // Skip the body by brace matching.
        if (!expect(TokKind::LBrace, "'{'"))
          return false;
        unsigned Depth = 1;
        while (Depth > 0) {
          if (peek().Kind == TokKind::Eof)
            return error("unterminated function body");
          TokKind K = advance().Kind;
          if (K == TokKind::LBrace)
            ++Depth;
          else if (K == TokKind::RBrace)
            --Depth;
        }
      }
    }
    return true;
  }

  //===--------------------------------------------------------------------===//
  // Pass 2: bodies
  //===--------------------------------------------------------------------===//

  bool parseTopLevel() {
    bool IsDefine = advance().Text == "define"; // Validated in pass 1.
    if (peek().Kind == TokKind::Ident && peek().Text == "kernel")
      advance();
    if (!parseType(/*AllowVoid=*/true))
      return false;
    Function *F = M->getFunction(peek().Text);
    advance(); // @name
    // Skip parameter list and optional file attribute.
    while (peek().Kind != TokKind::RParen)
      advance();
    advance(); // ')'
    if (peek().Kind == TokKind::Ident && peek().Text == "file") {
      advance();
      advance();
    }
    if (!IsDefine)
      return true;
    return parseBody(*F);
  }

  bool parseBody(Function &F) {
    Locals.clear();
    for (unsigned I = 0, E = F.getNumArgs(); I != E; ++I)
      Locals[F.getArg(I)->getName()] = F.getArg(I);
    if (!expect(TokKind::LBrace, "'{'"))
      return false;
    CurFunc = &F;

    // Pre-create blocks in label (textual) order so printing preserves
    // the input's block layout even with forward branch references.
    // Labels are ident/number followed by ':' outside parentheses (the
    // colon in !dbg(L:C) is inside them).
    int ParenDepth = 0;
    for (size_t I = Cursor; I < Tokens.size(); ++I) {
      TokKind K = Tokens[I].Kind;
      if (K == TokKind::RBrace || K == TokKind::Eof)
        break;
      if (K == TokKind::LParen)
        ++ParenDepth;
      else if (K == TokKind::RParen)
        --ParenDepth;
      else if (ParenDepth == 0 &&
               (K == TokKind::Ident || K == TokKind::IntLit) &&
               I + 1 < Tokens.size() &&
               Tokens[I + 1].Kind == TokKind::Colon)
        getOrCreateBlock(labelText(Tokens[I]));
    }
    while (peek().Kind != TokKind::RBrace) {
      if (peek().Kind != TokKind::Ident &&
          peek().Kind != TokKind::IntLit)
        return error("expected block label");
      // Block label: identifier followed by ':'.
      std::string Label = labelText(advance());
      if (!expect(TokKind::Colon, "':' after block label"))
        return false;
      BasicBlock *BB = getOrCreateBlock(Label);
      if (DefinedBlocks.count(BB))
        return error("redefinition of block " + Label);
      DefinedBlocks.insert(BB);
      if (!parseBlockBody(BB))
        return false;
    }
    advance(); // '}'
    if (!resolveForwardRefs(F))
      return false;
    DefinedBlocks.clear();
    BlocksByName.clear();
    CurFunc = nullptr;
    return true;
  }

  /// Patches placeholder values created for uses that textually preceded
  /// their definitions (legal whenever the definition dominates the use;
  /// the verifier checks that afterwards).
  bool resolveForwardRefs(Function &F) {
    if (ForwardRefs.empty())
      return true;
    for (auto &[Name, Ref] : ForwardRefs) {
      auto It = Locals.find(Name);
      if (It == Locals.end())
        return error("use of undefined value %" + Name);
      if (It->second->getType() != Ref.Placeholder->getType())
        return error("type mismatch for forward reference %" + Name);
      for (BasicBlock *BB : F)
        for (Instruction *Inst : *BB)
          for (unsigned I = 0, E = Inst->getNumOperands(); I != E; ++I)
            if (Inst->getOperand(I) == Ref.Placeholder.get())
              Inst->setOperand(I, It->second);
    }
    ForwardRefs.clear();
    return true;
  }

  static std::string labelText(const Token &Tok) {
    return Tok.Kind == TokKind::IntLit ? std::to_string(Tok.IntValue)
                                       : Tok.Text;
  }

  BasicBlock *getOrCreateBlock(const std::string &Name) {
    auto It = BlocksByName.find(Name);
    if (It != BlocksByName.end())
      return It->second;
    BasicBlock *BB = CurFunc->createBlock(Name);
    BlocksByName.emplace(Name, BB);
    return BB;
  }

  bool parseBlockBody(BasicBlock *BB) {
    IRBuilder B(Ctx);
    B.setInsertPointEnd(BB);
    for (;;) {
      // A block ends at the next label (ident ':'), '}' or Eof.
      if (peek().Kind == TokKind::RBrace)
        return true;
      if ((peek().Kind == TokKind::Ident || peek().Kind == TokKind::IntLit) &&
          peek(1).Kind == TokKind::Colon)
        return true;
      if (peek().Kind == TokKind::Eof)
        return error("unterminated block");
      if (!parseInstruction(B))
        return false;
    }
  }

  bool parseInstruction(IRBuilder &B) {
    std::string ResultName;
    if (peek().Kind == TokKind::LocalRef) {
      ResultName = advance().Text;
      if (!expect(TokKind::Equal, "'='"))
        return false;
    }
    if (peek().Kind != TokKind::Ident)
      return error("expected opcode");
    unsigned OpcodeLine = peek().Line;
    std::string Opcode = advance().Text;

    B.setDebugLoc(DebugLoc());
    Instruction *Result = nullptr;
    if (Opcode == "alloca")
      Result = parseAlloca(B);
    else if (Opcode == "load")
      Result = parseLoad(B);
    else if (Opcode == "store")
      Result = parseStore(B);
    else if (Opcode == "gep")
      Result = parseGEP(B);
    else if (auto BinOp = binaryOpFromName(Opcode))
      Result = parseBinary(B, *BinOp);
    else if (Opcode == "cmp")
      Result = parseCmp(B);
    else if (Opcode == "cast")
      Result = parseCastInst(B);
    else if (Opcode == "call")
      Result = parseCall(B);
    else if (Opcode == "select")
      Result = parseSelect(B);
    else if (Opcode == "br")
      Result = parseBranch(B);
    else if (Opcode == "ret")
      Result = parseRet(B);
    else {
      error("unknown opcode '" + Opcode + "'");
      ErrLine = OpcodeLine;
      return false;
    }
    if (!Result)
      return false;

    // Optional debug location suffix.
    if (peek().Kind == TokKind::Bang) {
      advance();
      if (peek().Kind != TokKind::Ident || peek().Text != "dbg")
        return error("expected 'dbg'");
      advance();
      if (!expect(TokKind::LParen, "'('"))
        return false;
      DebugLoc Loc;
      if (peek().Kind == TokKind::String) {
        Loc.FileId = Ctx.internFileName(advance().Text);
        if (!expect(TokKind::Comma, "','"))
          return false;
        Loc.Line = static_cast<unsigned>(advance().IntValue);
        if (!expect(TokKind::Comma, "','"))
          return false;
        Loc.Col = static_cast<unsigned>(advance().IntValue);
      } else {
        Loc.FileId = CurFunc->getSourceFileId();
        Loc.Line = static_cast<unsigned>(advance().IntValue);
        if (!expect(TokKind::Colon, "':'"))
          return false;
        Loc.Col = static_cast<unsigned>(advance().IntValue);
      }
      if (!expect(TokKind::RParen, "')'"))
        return false;
      Result->setDebugLoc(Loc);
    }

    if (!Result->getType()->isVoid()) {
      if (ResultName.empty())
        return error("instruction produces a value but has no result name");
      Result->setName(ResultName);
      if (!Locals.emplace(ResultName, Result).second)
        return error("redefinition of %" + ResultName);
    } else if (!ResultName.empty()) {
      return error("void instruction cannot have a result name");
    }
    return true;
  }

  //===--------------------------------------------------------------------===//
  // Operand helpers
  //===--------------------------------------------------------------------===//

  Type *parseType(bool AllowVoid) {
    if (peek().Kind != TokKind::Ident) {
      error("expected type");
      return nullptr;
    }
    std::string Name = advance().Text;
    Type *Ty = nullptr;
    if (Name == "void")
      Ty = Ctx.getVoidTy();
    else if (Name == "i1")
      Ty = Ctx.getI1Ty();
    else if (Name == "i32")
      Ty = Ctx.getI32Ty();
    else if (Name == "i64")
      Ty = Ctx.getI64Ty();
    else if (Name == "f32")
      Ty = Ctx.getF32Ty();
    else if (Name == "f64")
      Ty = Ctx.getF64Ty();
    else {
      error("unknown type '" + Name + "'");
      return nullptr;
    }
    if (Ty->isVoid() && !AllowVoid) {
      error("void type not allowed here");
      return nullptr;
    }
    // Pointer suffixes: ["shared"|"local"|"generic"|"global"] '*' ...
    for (;;) {
      AddrSpace AS = AddrSpace::Global;
      if (peek().Kind == TokKind::Ident) {
        std::optional<AddrSpace> Space = addrSpaceFromName(peek().Text);
        if (!Space)
          break;
        AS = *Space;
        advance();
        if (peek().Kind != TokKind::Star) {
          error("expected '*' after address space");
          return nullptr;
        }
      }
      if (peek().Kind != TokKind::Star)
        break;
      advance();
      Ty = Ctx.getPointerTy(Ty, AS);
    }
    return Ty;
  }

  static std::optional<AddrSpace> addrSpaceFromName(const std::string &Name) {
    if (Name == "global")
      return AddrSpace::Global;
    if (Name == "shared")
      return AddrSpace::Shared;
    if (Name == "local")
      return AddrSpace::Local;
    if (Name == "generic")
      return AddrSpace::Generic;
    return std::nullopt;
  }

  /// Parses a value reference of the given type: %name, literal, or
  /// true/false.
  Value *parseRef(Type *Ty) {
    const Token &Tok = peek();
    if (Tok.Kind == TokKind::LocalRef) {
      auto It = Locals.find(Tok.Text);
      if (It == Locals.end()) {
        // Forward reference: the use is typed, so hand out a placeholder
        // now and patch it once (if) the definition appears.
        std::string Name = advance().Text;
        auto Found = ForwardRefs.find(Name);
        if (Found != ForwardRefs.end()) {
          if (Found->second.Placeholder->getType() != Ty) {
            error("type mismatch for %" + Name);
            return nullptr;
          }
          return Found->second.Placeholder.get();
        }
        auto Placeholder = std::make_unique<Argument>(
            Ty, Name + ".fwd", /*Parent=*/nullptr, /*Index=*/0);
        Value *Result = Placeholder.get();
        ForwardRefs.emplace(std::move(Name),
                            ForwardRef{std::move(Placeholder)});
        return Result;
      }
      advance();
      if (It->second->getType() != Ty) {
        error("type mismatch for %" + Tok.Text);
        return nullptr;
      }
      return It->second;
    }
    if (Tok.Kind == TokKind::IntLit) {
      if (!Ty->isInteger()) {
        // Allow integer literals in float position for convenience.
        if (Ty->isFloatingPoint()) {
          double V = static_cast<double>(advance().IntValue);
          return Ctx.getConstantFP(Ty, V);
        }
        error("integer literal where non-integer type expected");
        return nullptr;
      }
      return Ctx.getConstantInt(Ty, advance().IntValue);
    }
    if (Tok.Kind == TokKind::FloatLit) {
      if (!Ty->isFloatingPoint()) {
        error("float literal where non-float type expected");
        return nullptr;
      }
      return Ctx.getConstantFP(Ty, advance().FloatValue);
    }
    if (Tok.Kind == TokKind::Ident &&
        (Tok.Text == "true" || Tok.Text == "false")) {
      if (!Ty->isI1()) {
        error("boolean literal where non-i1 type expected");
        return nullptr;
      }
      return Ctx.getConstantInt(Ty, advance().Text == "true" ? 1 : 0);
    }
    error("expected value reference");
    return nullptr;
  }

  /// Parses "type ref".
  Value *parseTypedRef() {
    Type *Ty = parseType(/*AllowVoid=*/false);
    if (!Ty)
      return nullptr;
    return parseRef(Ty);
  }

  //===--------------------------------------------------------------------===//
  // Per-opcode parsing
  //===--------------------------------------------------------------------===//

  Instruction *parseAlloca(IRBuilder &B) {
    Type *Ty = parseType(/*AllowVoid=*/false);
    if (!Ty)
      return nullptr;
    uint32_t Count = 1;
    AddrSpace AS = AddrSpace::Local;
    if (peek().Kind == TokKind::Comma) {
      advance();
      if (peek().Kind != TokKind::IntLit) {
        error("expected alloca array count");
        return nullptr;
      }
      Count = static_cast<uint32_t>(advance().IntValue);
      if (peek().Kind == TokKind::Comma) {
        advance();
        if (peek().Kind != TokKind::Ident) {
          error("expected address space");
          return nullptr;
        }
        std::optional<AddrSpace> Space = addrSpaceFromName(advance().Text);
        if (!Space) {
          error("unknown address space");
          return nullptr;
        }
        AS = *Space;
      }
    }
    return B.createAlloca(Ty, Count, AS);
  }

  Instruction *parseLoad(IRBuilder &B) {
    Type *ValueTy = parseType(/*AllowVoid=*/false);
    if (!ValueTy || !expect(TokKind::Comma, "','"))
      return nullptr;
    Value *Ptr = parseTypedRef();
    if (!Ptr)
      return nullptr;
    if (!Ptr->getType()->isPointer() ||
        Ptr->getType()->getPointee() != ValueTy) {
      error("load pointer/value type mismatch");
      return nullptr;
    }
    return B.createLoad(Ptr);
  }

  Instruction *parseStore(IRBuilder &B) {
    Value *StoredValue = parseTypedRef();
    if (!StoredValue || !expect(TokKind::Comma, "','"))
      return nullptr;
    Value *Ptr = parseTypedRef();
    if (!Ptr)
      return nullptr;
    if (!Ptr->getType()->isPointer() ||
        Ptr->getType()->getPointee() != StoredValue->getType()) {
      error("store pointer/value type mismatch");
      return nullptr;
    }
    return B.createStore(StoredValue, Ptr);
  }

  Instruction *parseGEP(IRBuilder &B) {
    Value *Ptr = parseTypedRef();
    if (!Ptr || !expect(TokKind::Comma, "','"))
      return nullptr;
    if (!Ptr->getType()->isPointer()) {
      error("gep base must be a pointer");
      return nullptr;
    }
    Value *Index = parseTypedRef();
    if (!Index)
      return nullptr;
    if (!Index->getType()->isInteger()) {
      error("gep index must be an integer");
      return nullptr;
    }
    return B.createGEP(Ptr, Index);
  }

  static std::optional<BinaryInst::Op> binaryOpFromName(
      const std::string &Name) {
    using Op = BinaryInst::Op;
    static const std::pair<const char *, Op> Table[] = {
        {"add", Op::Add},   {"sub", Op::Sub},   {"mul", Op::Mul},
        {"sdiv", Op::SDiv}, {"srem", Op::SRem}, {"and", Op::And},
        {"or", Op::Or},     {"xor", Op::Xor},   {"shl", Op::Shl},
        {"ashr", Op::AShr}, {"fadd", Op::FAdd}, {"fsub", Op::FSub},
        {"fmul", Op::FMul}, {"fdiv", Op::FDiv},
    };
    for (const auto &[Spelling, Op] : Table)
      if (Name == Spelling)
        return Op;
    return std::nullopt;
  }

  Instruction *parseBinary(IRBuilder &B, BinaryInst::Op Op) {
    Type *Ty = parseType(/*AllowVoid=*/false);
    if (!Ty)
      return nullptr;
    bool IsFloatOp = Op >= BinaryInst::Op::FAdd;
    if (IsFloatOp != Ty->isFloatingPoint()) {
      error("binary op/type mismatch");
      return nullptr;
    }
    Value *LHS = parseRef(Ty);
    if (!LHS || !expect(TokKind::Comma, "','"))
      return nullptr;
    Value *RHS = parseRef(Ty);
    if (!RHS)
      return nullptr;
    return B.createBinary(Op, LHS, RHS);
  }

  Instruction *parseCmp(IRBuilder &B) {
    if (peek().Kind != TokKind::Ident) {
      error("expected cmp predicate");
      return nullptr;
    }
    std::string PredName = advance().Text;
    using Pred = CmpInst::Pred;
    static const std::pair<const char *, Pred> Table[] = {
        {"eq", Pred::EQ},   {"ne", Pred::NE},   {"slt", Pred::SLT},
        {"sle", Pred::SLE}, {"sgt", Pred::SGT}, {"sge", Pred::SGE},
        {"oeq", Pred::OEQ}, {"one", Pred::ONE}, {"olt", Pred::OLT},
        {"ole", Pred::OLE}, {"ogt", Pred::OGT}, {"oge", Pred::OGE},
    };
    std::optional<Pred> ThePred;
    for (const auto &[Spelling, P] : Table)
      if (PredName == Spelling)
        ThePred = P;
    if (!ThePred) {
      error("unknown cmp predicate '" + PredName + "'");
      return nullptr;
    }
    Type *Ty = parseType(/*AllowVoid=*/false);
    if (!Ty)
      return nullptr;
    bool IsFloatPred = *ThePred >= Pred::OEQ;
    if (IsFloatPred != Ty->isFloatingPoint()) {
      error("cmp predicate/type mismatch");
      return nullptr;
    }
    Value *LHS = parseRef(Ty);
    if (!LHS || !expect(TokKind::Comma, "','"))
      return nullptr;
    Value *RHS = parseRef(Ty);
    if (!RHS)
      return nullptr;
    return B.createCmp(*ThePred, LHS, RHS);
  }

  Instruction *parseCastInst(IRBuilder &B) {
    if (peek().Kind != TokKind::Ident) {
      error("expected cast op");
      return nullptr;
    }
    std::string OpName = advance().Text;
    using Op = CastInst::Op;
    static const std::pair<const char *, Op> Table[] = {
        {"sitofp", Op::SIToFP},   {"fptosi", Op::FPToSI},
        {"sext", Op::SExt},       {"trunc", Op::Trunc},
        {"zext", Op::ZExt},       {"fpext", Op::FPExt},
        {"fptrunc", Op::FPTrunc}, {"ptrcast", Op::PtrCast},
        {"ptrtoint", Op::PtrToInt},
    };
    std::optional<Op> TheOp;
    for (const auto &[Spelling, O] : Table)
      if (OpName == Spelling)
        TheOp = O;
    if (!TheOp) {
      error("unknown cast op '" + OpName + "'");
      return nullptr;
    }
    Value *Operand = parseTypedRef();
    if (!Operand)
      return nullptr;
    if (peek().Kind != TokKind::Ident || peek().Text != "to") {
      error("expected 'to'");
      return nullptr;
    }
    advance();
    Type *DestTy = parseType(/*AllowVoid=*/false);
    if (!DestTy)
      return nullptr;
    return B.createCast(*TheOp, Operand, DestTy);
  }

  Instruction *parseCall(IRBuilder &B) {
    Type *RetTy = parseType(/*AllowVoid=*/true);
    if (!RetTy)
      return nullptr;
    if (peek().Kind != TokKind::GlobalRef) {
      error("expected callee name");
      return nullptr;
    }
    Function *Callee = M->getFunction(advance().Text);
    if (!Callee) {
      error("call to unknown function");
      return nullptr;
    }
    if (Callee->getReturnType() != RetTy) {
      error("call return type mismatch");
      return nullptr;
    }
    if (!expect(TokKind::LParen, "'('"))
      return nullptr;
    std::vector<Value *> Args;
    if (peek().Kind != TokKind::RParen) {
      for (;;) {
        Value *Arg = parseTypedRef();
        if (!Arg)
          return nullptr;
        Args.push_back(Arg);
        if (peek().Kind != TokKind::Comma)
          break;
        advance();
      }
    }
    if (!expect(TokKind::RParen, "')'"))
      return nullptr;
    if (Args.size() != Callee->getNumArgs()) {
      error("call argument count mismatch");
      return nullptr;
    }
    for (size_t I = 0; I < Args.size(); ++I)
      if (Args[I]->getType() != Callee->getArg(I)->getType()) {
        error("call argument type mismatch");
        return nullptr;
      }
    return B.createCall(Callee, std::move(Args));
  }

  Instruction *parseSelect(IRBuilder &B) {
    Value *Cond = parseTypedRef();
    if (!Cond || !expect(TokKind::Comma, "','"))
      return nullptr;
    Value *TrueV = parseTypedRef();
    if (!TrueV || !expect(TokKind::Comma, "','"))
      return nullptr;
    Value *FalseV = parseTypedRef();
    if (!FalseV)
      return nullptr;
    if (!Cond->getType()->isI1() ||
        TrueV->getType() != FalseV->getType()) {
      error("select operand type mismatch");
      return nullptr;
    }
    return B.createSelect(Cond, TrueV, FalseV);
  }

  BasicBlock *parseLabelRef() {
    if (peek().Kind != TokKind::Ident || peek().Text != "label") {
      error("expected 'label'");
      return nullptr;
    }
    advance();
    if (peek().Kind != TokKind::LocalRef) {
      error("expected block reference");
      return nullptr;
    }
    return getOrCreateBlock(advance().Text);
  }

  Instruction *parseBranch(IRBuilder &B) {
    if (peek().Kind == TokKind::Ident && peek().Text == "label") {
      BasicBlock *Target = parseLabelRef();
      return Target ? B.createBr(Target) : nullptr;
    }
    Value *Cond = parseTypedRef();
    if (!Cond || !expect(TokKind::Comma, "','"))
      return nullptr;
    if (!Cond->getType()->isI1()) {
      error("branch condition must be i1");
      return nullptr;
    }
    BasicBlock *TrueBB = parseLabelRef();
    if (!TrueBB || !expect(TokKind::Comma, "','"))
      return nullptr;
    BasicBlock *FalseBB = parseLabelRef();
    if (!FalseBB)
      return nullptr;
    return B.createCondBr(Cond, TrueBB, FalseBB);
  }

  Instruction *parseRet(IRBuilder &B) {
    if (peek().Kind == TokKind::Ident && peek().Text == "void") {
      advance();
      return B.createRet();
    }
    Value *RetValue = parseTypedRef();
    if (!RetValue)
      return nullptr;
    if (RetValue->getType() != CurFunc->getReturnType()) {
      error("return value type mismatch");
      return nullptr;
    }
    return B.createRet(RetValue);
  }

  Context &Ctx;
  std::unique_ptr<Module> M;
  std::string ModuleName = "parsed";
  std::vector<Token> Tokens;
  size_t Cursor = 0;
  std::string Err;
  unsigned ErrLine = 0;

  Function *CurFunc = nullptr;
  std::unordered_map<std::string, Value *> Locals;
  std::unordered_map<std::string, BasicBlock *> BlocksByName;
  std::unordered_set<BasicBlock *> DefinedBlocks;
  /// Placeholder values for textual forward references, patched at the
  /// end of each function body.
  struct ForwardRef {
    std::unique_ptr<Value> Placeholder;
  };
  std::map<std::string, ForwardRef> ForwardRefs;
};

} // namespace

ParseResult ir::parseModule(const std::string &Text, Context &Ctx) {
  return Parser(Text, Ctx).run();
}
