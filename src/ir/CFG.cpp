//===- ir/CFG.cpp - Control-flow graph utilities ---------------------------===//

#include "ir/CFG.h"

#include "ir/Casting.h"

#include <algorithm>
#include <unordered_set>

using namespace cuadv;
using namespace cuadv::ir;

CFGInfo::CFGInfo(const Function &F) {
  BasicBlock *Entry = F.getEntryBlock();
  if (!Entry)
    return;

  // Iterative DFS from the entry, producing post order and predecessor
  // lists over reachable blocks only.
  std::unordered_set<BasicBlock *> Visited;
  std::vector<std::pair<BasicBlock *, size_t>> Stack;
  Stack.emplace_back(Entry, 0);
  Visited.insert(Entry);
  Preds[Entry]; // Entry is reachable with no predecessors.

  while (!Stack.empty()) {
    auto &[BB, NextSucc] = Stack.back();
    std::vector<BasicBlock *> Succs = BB->successors();
    if (NextSucc < Succs.size()) {
      BasicBlock *Succ = Succs[NextSucc++];
      Preds[Succ].push_back(BB);
      if (Visited.insert(Succ).second)
        Stack.emplace_back(Succ, 0);
      continue;
    }
    PostOrder.push_back(BB);
    if (Instruction *Term = BB->getTerminator())
      if (isa<ReturnInst>(Term))
        Exits.push_back(BB);
    Stack.pop_back();
  }

  // Deduplicate predecessor entries (a conditional branch can target the
  // same block twice).
  for (auto &[BB, List] : Preds) {
    std::vector<BasicBlock *> Unique;
    for (BasicBlock *P : List)
      if (std::find(Unique.begin(), Unique.end(), P) == Unique.end())
        Unique.push_back(P);
    List = std::move(Unique);
  }

  ReversePostOrder.assign(PostOrder.rbegin(), PostOrder.rend());
}

const std::vector<BasicBlock *> &
CFGInfo::predecessors(BasicBlock *BB) const {
  auto It = Preds.find(BB);
  return It == Preds.end() ? EmptyList : It->second;
}
