//===- ir/Printer.h - Textual IR emission -------------------------*- C++ -*-===//
//
// Part of the CUDAAdvisor reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Renders modules/functions to the textual IR format that ir/Parser.h
/// reads back. Unnamed values receive %0, %1, ... slots per function, like
/// LLVM's printer.
///
//===----------------------------------------------------------------------===//

#ifndef CUADV_IR_PRINTER_H
#define CUADV_IR_PRINTER_H

#include "ir/Module.h"

#include <string>

namespace cuadv {
namespace ir {

/// Prints \p M in the textual IR format. The output parses back to an
/// equivalent module.
std::string printModule(const Module &M);

/// Prints a single function (definition or declaration).
std::string printFunction(const Function &F);

} // namespace ir
} // namespace cuadv

#endif // CUADV_IR_PRINTER_H
