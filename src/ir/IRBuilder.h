//===- ir/IRBuilder.h - Instruction creation helper ---------------*- C++ -*-===//
//
// Part of the CUDAAdvisor reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Convenience builder for creating instructions at an insertion point,
/// mirroring llvm::IRBuilder. Both the front-end code generator and the
/// instrumentation passes create instructions through this class; the
/// current debug location is stamped onto everything built.
///
//===----------------------------------------------------------------------===//

#ifndef CUADV_IR_IRBUILDER_H
#define CUADV_IR_IRBUILDER_H

#include "ir/Module.h"

namespace cuadv {
namespace ir {

/// Creates instructions at a (block, index) insertion point. The index
/// form lets instrumentation passes insert hooks immediately before an
/// existing instruction, as in the paper's Listing 1.
class IRBuilder {
public:
  explicit IRBuilder(Context &Ctx) : Ctx(Ctx) {}

  Context &getContext() const { return Ctx; }

  /// \name Insertion point management.
  /// @{
  /// Place new instructions at the end of \p BB.
  void setInsertPointEnd(BasicBlock *BB);
  /// Place new instructions before index \p Index of \p BB.
  void setInsertPoint(BasicBlock *BB, size_t Index);
  BasicBlock *getInsertBlock() const { return Block; }
  size_t getInsertIndex() const { return Index; }
  /// @}

  /// Debug location stamped onto created instructions.
  void setDebugLoc(const DebugLoc &Loc) { CurLoc = Loc; }
  const DebugLoc &getDebugLoc() const { return CurLoc; }

  /// \name Constants.
  /// @{
  ConstantInt *getInt32(int32_t V) {
    return Ctx.getConstantInt(Ctx.getI32Ty(), V);
  }
  ConstantInt *getInt64(int64_t V) {
    return Ctx.getConstantInt(Ctx.getI64Ty(), V);
  }
  ConstantInt *getBool(bool V) {
    return Ctx.getConstantInt(Ctx.getI1Ty(), V ? 1 : 0);
  }
  ConstantFP *getF32(float V) { return Ctx.getConstantFP(Ctx.getF32Ty(), V); }
  ConstantFP *getF64(double V) { return Ctx.getConstantFP(Ctx.getF64Ty(), V); }
  /// @}

  /// \name Instruction creation.
  /// @{
  AllocaInst *createAlloca(Type *AllocatedTy, uint32_t ArrayCount = 1,
                           AddrSpace AS = AddrSpace::Local,
                           const std::string &Name = "");
  LoadInst *createLoad(Value *Ptr, const std::string &Name = "");
  StoreInst *createStore(Value *StoredValue, Value *Ptr);
  GEPInst *createGEP(Value *Ptr, Value *IndexValue,
                     const std::string &Name = "");
  BinaryInst *createBinary(BinaryInst::Op Op, Value *LHS, Value *RHS,
                           const std::string &Name = "");
  CmpInst *createCmp(CmpInst::Pred Pred, Value *LHS, Value *RHS,
                     const std::string &Name = "");
  CastInst *createCast(CastInst::Op Op, Value *Operand, Type *DestTy,
                       const std::string &Name = "");
  CallInst *createCall(Function *Callee, std::vector<Value *> Args,
                       const std::string &Name = "");
  SelectInst *createSelect(Value *Cond, Value *TrueV, Value *FalseV,
                           const std::string &Name = "");
  BranchInst *createBr(BasicBlock *Target);
  BranchInst *createCondBr(Value *Cond, BasicBlock *TrueBB,
                           BasicBlock *FalseBB);
  ReturnInst *createRet(Value *RetValue = nullptr);
  /// @}

private:
  Instruction *insert(std::unique_ptr<Instruction> Inst,
                      const std::string &Name);

  Context &Ctx;
  BasicBlock *Block = nullptr;
  size_t Index = 0;
  bool AtEnd = true;
  DebugLoc CurLoc;
};

} // namespace ir
} // namespace cuadv

#endif // CUADV_IR_IRBUILDER_H
