//===- ir/Dominators.cpp - (Post)dominator trees ---------------------------===//

#include "ir/Dominators.h"

#include "support/Error.h"

#include <unordered_set>

using namespace cuadv;
using namespace cuadv::ir;

namespace {

/// Computes reverse post order over the forward or reversed CFG, rooted at
/// \p Root. Edges are successors() normally, predecessors (from \p CFG)
/// when reversed.
std::vector<BasicBlock *> computeOrder(BasicBlock *Root, const CFGInfo &CFG,
                                       bool Reversed) {
  std::vector<BasicBlock *> PostOrder;
  std::unordered_set<BasicBlock *> Visited;
  std::vector<std::pair<BasicBlock *, size_t>> Stack;
  Stack.emplace_back(Root, 0);
  Visited.insert(Root);
  while (!Stack.empty()) {
    auto &[BB, NextEdge] = Stack.back();
    std::vector<BasicBlock *> Edges =
        Reversed ? CFG.predecessors(BB) : BB->successors();
    if (NextEdge < Edges.size()) {
      BasicBlock *Next = Edges[NextEdge++];
      if (Visited.insert(Next).second)
        Stack.emplace_back(Next, 0);
      continue;
    }
    PostOrder.push_back(BB);
    Stack.pop_back();
  }
  return {PostOrder.rbegin(), PostOrder.rend()};
}

} // namespace

DominatorTree::DominatorTree(const Function &F, const CFGInfo &CFG,
                             bool Post) {
  if (Post) {
    const std::vector<BasicBlock *> &Exits = CFG.exitBlocks();
    if (Exits.size() != 1)
      reportFatalError("post-dominator tree requires a unique exit block in "
                       "function '" +
                       F.getName() + "' (the verifier enforces this)");
    Root = Exits.front();
  } else {
    Root = F.getEntryBlock();
    if (!Root)
      reportFatalError("dominator tree over a declaration");
  }

  Order = computeOrder(Root, CFG, /*Reversed=*/Post);
  for (size_t I = 0; I < Order.size(); ++I)
    Index.emplace(Order[I], I);

  constexpr size_t Undef = static_cast<size_t>(-1);
  IDoms.assign(Order.size(), Undef);
  IDoms[0] = 0;

  // Cooper-Harvey-Kennedy iteration to fixpoint.
  bool Changed = true;
  while (Changed) {
    Changed = false;
    for (size_t I = 1; I < Order.size(); ++I) {
      BasicBlock *BB = Order[I];
      std::vector<BasicBlock *> Edges =
          Post ? BB->successors() : CFG.predecessors(BB);
      size_t NewIDom = Undef;
      for (BasicBlock *Pred : Edges) {
        auto It = Index.find(Pred);
        if (It == Index.end() || IDoms[It->second] == Undef)
          continue;
        NewIDom =
            NewIDom == Undef ? It->second : intersect(It->second, NewIDom);
      }
      if (NewIDom != Undef && IDoms[I] != NewIDom) {
        IDoms[I] = NewIDom;
        Changed = true;
      }
    }
  }
}

size_t DominatorTree::intersect(size_t A, size_t B) const {
  while (A != B) {
    while (A > B)
      A = IDoms[A];
    while (B > A)
      B = IDoms[B];
  }
  return A;
}

BasicBlock *DominatorTree::getIDom(BasicBlock *BB) const {
  auto It = Index.find(BB);
  if (It == Index.end() || It->second == 0)
    return nullptr;
  size_t IDom = IDoms[It->second];
  if (IDom == static_cast<size_t>(-1))
    return nullptr;
  return Order[IDom];
}

bool DominatorTree::dominates(BasicBlock *A, BasicBlock *B) const {
  auto ItA = Index.find(A);
  auto ItB = Index.find(B);
  if (ItA == Index.end() || ItB == Index.end())
    return false;
  size_t Target = ItA->second;
  size_t Cur = ItB->second;
  while (Cur > Target)
    Cur = IDoms[Cur];
  return Cur == Target;
}
