//===- ir/Verifier.cpp - IR well-formedness checks --------------------------===//

#include "ir/Verifier.h"

#include "ir/CFG.h"
#include "ir/Casting.h"
#include "ir/Dominators.h"
#include "support/Format.h"

#include <unordered_map>
#include <unordered_set>

using namespace cuadv;
using namespace cuadv::ir;

namespace {

class FunctionVerifier {
public:
  FunctionVerifier(const Function &F, std::vector<std::string> &Errors)
      : F(F), Errors(Errors) {}

  bool run() {
    size_t Before = Errors.size();
    checkStructure();
    // CFG-derived checks only make sense on structurally sound bodies.
    if (Errors.size() == Before && F.numBlocks() > 0)
      checkDominance();
    return Errors.size() == Before;
  }

private:
  void addError(const std::string &Message) {
    Errors.push_back("in @" + F.getName() + ": " + Message);
  }

  void checkStructure() {
    if (F.isDeclaration())
      return;

    unsigned ReturnCount = 0;
    std::unordered_set<std::string> ValueNames;
    std::unordered_set<std::string> BlockNames;
    std::unordered_set<const Value *> FunctionValues;
    for (unsigned I = 0, E = F.getNumArgs(); I != E; ++I) {
      FunctionValues.insert(F.getArg(I));
      if (!ValueNames.insert(F.getArg(I)->getName()).second)
        addError("duplicate argument name %" + F.getArg(I)->getName());
    }

    for (BasicBlock *BB : F) {
      if (!BlockNames.insert(BB->getName()).second)
        addError("duplicate block name " + BB->getName());
      if (BB->empty()) {
        addError("block " + BB->getName() + " is empty");
        continue;
      }
      for (size_t I = 0, E = BB->size(); I != E; ++I) {
        Instruction *Inst = BB->getInst(I);
        bool IsLast = I + 1 == E;
        if (Inst->isTerminator() != IsLast) {
          addError(IsLast ? "block " + BB->getName() +
                                " does not end with a terminator"
                          : "terminator in the middle of block " +
                                BB->getName());
        }
        if (!Inst->getType()->isVoid()) {
          FunctionValues.insert(Inst);
          if (Inst->hasName() && !ValueNames.insert(Inst->getName()).second)
            addError("duplicate value name %" + Inst->getName());
        }
        checkInstruction(*Inst, *BB);
      }
      if (Instruction *Term = BB->getTerminator())
        if (isa<ReturnInst>(Term))
          ++ReturnCount;
    }

    if (ReturnCount != 1)
      addError(formatString(
          "definitions must have exactly one return block, found %u "
          "(required for SIMT reconvergence)",
          ReturnCount));

    // All instruction operands must be constants, arguments of this
    // function, or instructions of this function.
    for (BasicBlock *BB : F)
      for (Instruction *Inst : *BB)
        for (unsigned I = 0, E = Inst->getNumOperands(); I != E; ++I) {
          const Value *Op = Inst->getOperand(I);
          if (isa<Constant>(Op))
            continue;
          if (!FunctionValues.count(Op))
            addError("operand of " + std::string(Inst->getOpcodeName()) +
                     " in block " + BB->getName() +
                     " is defined outside the function");
        }

    // Branch targets must be blocks of this function.
    std::unordered_set<const BasicBlock *> Blocks;
    for (BasicBlock *BB : F)
      Blocks.insert(BB);
    for (BasicBlock *BB : F)
      if (auto *Br = dyn_cast_or_null(BB->getTerminator()))
        for (unsigned I = 0, E = Br->getNumSuccessors(); I != E; ++I)
          if (!Blocks.count(Br->getSuccessor(I)))
            addError("branch in block " + BB->getName() +
                     " targets a foreign block");
  }

  static const BranchInst *dyn_cast_or_null(const Instruction *Inst) {
    return Inst ? dyn_cast<BranchInst>(Inst) : nullptr;
  }

  void checkInstruction(const Instruction &Inst, const BasicBlock &BB) {
    if (const auto *AI = dyn_cast<AllocaInst>(&Inst)) {
      if (&BB != F.getEntryBlock())
        addError("alloca outside the entry block");
      if (AI->getAddrSpace() == AddrSpace::Shared && !F.isKernel())
        addError("shared alloca outside a kernel");
      return;
    }
    if (const auto *RI = dyn_cast<ReturnInst>(&Inst)) {
      bool NeedsValue = !F.getReturnType()->isVoid();
      if (NeedsValue != RI->hasReturnValue())
        addError("return value presence does not match return type");
      else if (NeedsValue &&
               RI->getReturnValue()->getType() != F.getReturnType())
        addError("return value type mismatch");
      return;
    }
    if (const auto *CI = dyn_cast<CallInst>(&Inst)) {
      const Function *Callee = CI->getCallee();
      if (Callee->getName() == "cuadv.syncthreads" && !F.isKernel())
        addError("barrier call in non-kernel function " + F.getName());
      if (CI->getNumArgs() != Callee->getNumArgs()) {
        addError("call to @" + Callee->getName() +
                 " has wrong argument count");
        return;
      }
      for (unsigned I = 0, E = CI->getNumArgs(); I != E; ++I)
        if (CI->getArg(I)->getType() != Callee->getArg(I)->getType())
          addError("call to @" + Callee->getName() +
                   formatString(" argument %u has wrong type", I));
      return;
    }
  }

  /// Every use must be dominated by its definition.
  void checkDominance() {
    CFGInfo CFG(F);
    DominatorTree DT(F, CFG, /*Post=*/false);

    // Map each instruction to (block, index) for intra-block ordering.
    std::unordered_map<const Instruction *, std::pair<BasicBlock *, size_t>>
        Position;
    for (BasicBlock *BB : F)
      for (size_t I = 0, E = BB->size(); I != E; ++I)
        Position[BB->getInst(I)] = {BB, I};

    for (BasicBlock *BB : F) {
      if (!CFG.isReachable(BB))
        continue;
      for (size_t I = 0, E = BB->size(); I != E; ++I) {
        Instruction *Inst = BB->getInst(I);
        for (unsigned OpIdx = 0, OpEnd = Inst->getNumOperands();
             OpIdx != OpEnd; ++OpIdx) {
          const Value *Op = Inst->getOperand(OpIdx);
          const auto *Def = dyn_cast<Instruction>(Op);
          if (!Def)
            continue;
          auto It = Position.find(Def);
          if (It == Position.end())
            continue; // Reported as foreign operand already.
          auto [DefBB, DefIdx] = It->second;
          bool Dominates = DefBB == BB ? DefIdx < I
                                       : DT.dominates(DefBB, BB);
          if (!Dominates)
            addError("use of %" + (Def->hasName()
                                       ? Def->getName()
                                       : std::string("<unnamed>")) +
                     " in block " + BB->getName() +
                     " is not dominated by its definition");
        }
      }
    }
  }

  const Function &F;
  std::vector<std::string> &Errors;
};

} // namespace

bool ir::verifyFunction(const Function &F, std::vector<std::string> &Errors) {
  return FunctionVerifier(F, Errors).run();
}

bool ir::verifyModule(const Module &M, std::vector<std::string> &Errors) {
  bool Ok = true;
  for (Function *F : M)
    Ok &= verifyFunction(*F, Errors);
  return Ok;
}
