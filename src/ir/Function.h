//===- ir/Function.h - Functions ----------------------------------*- C++ -*-===//
//
// Part of the CUDAAdvisor reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Functions: kernels (__global__), device functions (__device__), and
/// declarations (externals/intrinsics, which have no body and are
/// dispatched by name in the interpreter).
///
//===----------------------------------------------------------------------===//

#ifndef CUADV_IR_FUNCTION_H
#define CUADV_IR_FUNCTION_H

#include "ir/BasicBlock.h"
#include "ir/Value.h"

#include <memory>
#include <string>
#include <vector>

namespace cuadv {
namespace ir {

class Module;

/// A function definition or declaration owned by a Module.
class Function {
public:
  Function(std::string Name, Type *ReturnTy, Module *Parent, bool IsKernel)
      : Name(std::move(Name)), ReturnTy(ReturnTy), Parent(Parent),
        IsKernel(IsKernel) {}

  const std::string &getName() const { return Name; }
  Type *getReturnType() const { return ReturnTy; }
  Module *getParent() const { return Parent; }

  bool isKernel() const { return IsKernel; }
  /// A declaration has no body; calls to it are resolved by the runtime
  /// (intrinsics, math functions, profiler hooks).
  bool isDeclaration() const { return Blocks.empty(); }

  /// Source file the function was compiled from (for code-centric views).
  unsigned getSourceFileId() const { return SourceFileId; }
  void setSourceFileId(unsigned Id) { SourceFileId = Id; }

  /// \name Arguments.
  /// @{
  Argument *addArgument(Type *Ty, std::string ArgName);
  unsigned getNumArgs() const {
    return static_cast<unsigned>(Args.size());
  }
  Argument *getArg(unsigned Index) const { return Args[Index].get(); }
  /// @}

  /// \name Blocks.
  /// @{
  BasicBlock *createBlock(std::string BlockName);
  size_t numBlocks() const { return Blocks.size(); }
  BasicBlock *getEntryBlock() const {
    return Blocks.empty() ? nullptr : Blocks.front().get();
  }
  BasicBlock *getBlock(size_t Index) const { return Blocks[Index].get(); }
  BasicBlock *findBlock(const std::string &BlockName) const;

  class block_iterator {
  public:
    using Inner = std::vector<std::unique_ptr<BasicBlock>>::const_iterator;
    explicit block_iterator(Inner It) : It(It) {}
    BasicBlock *operator*() const { return It->get(); }
    block_iterator &operator++() {
      ++It;
      return *this;
    }
    bool operator!=(const block_iterator &Other) const {
      return It != Other.It;
    }

  private:
    Inner It;
  };
  block_iterator begin() const { return block_iterator(Blocks.begin()); }
  block_iterator end() const { return block_iterator(Blocks.end()); }
  /// @}

private:
  std::string Name;
  Type *ReturnTy;
  Module *Parent;
  bool IsKernel;
  unsigned SourceFileId = 0;
  std::vector<std::unique_ptr<Argument>> Args;
  std::vector<std::unique_ptr<BasicBlock>> Blocks;
};

} // namespace ir
} // namespace cuadv

#endif // CUADV_IR_FUNCTION_H
