//===- ir/Context.h - IR object interning context ----------------*- C++ -*-===//
//
// Part of the CUDAAdvisor reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Owns interned types, constants, and source-file names, playing the role
/// of LLVMContext. All modules built against one Context may share Type and
/// Constant pointers.
///
//===----------------------------------------------------------------------===//

#ifndef CUADV_IR_CONTEXT_H
#define CUADV_IR_CONTEXT_H

#include "ir/Type.h"

#include <map>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

namespace cuadv {
namespace ir {

class ConstantInt;
class ConstantFP;

/// Interning context for types, constants, and file names.
class Context {
public:
  Context();
  ~Context();
  Context(const Context &) = delete;
  Context &operator=(const Context &) = delete;

  /// \name Type factories. Scalar types are singletons per context.
  /// @{
  Type *getVoidTy() { return VoidTy.get(); }
  Type *getI1Ty() { return I1Ty.get(); }
  Type *getI32Ty() { return I32Ty.get(); }
  Type *getI64Ty() { return I64Ty.get(); }
  Type *getF32Ty() { return F32Ty.get(); }
  Type *getF64Ty() { return F64Ty.get(); }
  /// Returns the interned pointer type to \p Pointee in \p AS.
  Type *getPointerTy(Type *Pointee, AddrSpace AS = AddrSpace::Global);
  /// @}

  /// \name Constant factories (interned; see Value.h for the classes).
  /// @{
  ConstantInt *getConstantInt(Type *Ty, int64_t Value);
  ConstantFP *getConstantFP(Type *Ty, double Value);
  /// @}

  /// \name Source-file interning for debug locations.
  /// @{
  /// Interns \p Name and returns its id. Id 0 is reserved for "<unknown>".
  unsigned internFileName(const std::string &Name);
  const std::string &fileName(unsigned Id) const;
  /// @}

private:
  std::unique_ptr<Type> VoidTy, I1Ty, I32Ty, I64Ty, F32Ty, F64Ty;
  std::map<std::pair<Type *, AddrSpace>, std::unique_ptr<Type>> PointerTys;
  std::map<std::pair<Type *, int64_t>, std::unique_ptr<ConstantInt>> IntConsts;
  std::map<std::pair<Type *, double>, std::unique_ptr<ConstantFP>> FPConsts;
  std::vector<std::string> FileNames;
  std::unordered_map<std::string, unsigned> FileIds;
};

} // namespace ir
} // namespace cuadv

#endif // CUADV_IR_CONTEXT_H
