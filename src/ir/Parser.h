//===- ir/Parser.h - Textual IR parsing ---------------------------*- C++ -*-===//
//
// Part of the CUDAAdvisor reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Parses the textual IR format produced by ir/Printer.h. Functions may be
/// referenced before their definition (the parser makes two passes, like
/// llvm-as).
///
//===----------------------------------------------------------------------===//

#ifndef CUADV_IR_PARSER_H
#define CUADV_IR_PARSER_H

#include "ir/Module.h"

#include <memory>
#include <string>

namespace cuadv {
namespace ir {

/// Result of parsing: either a module, or an error message with the
/// 1-based source line it was detected on.
struct ParseResult {
  std::unique_ptr<Module> M;
  std::string Error;
  unsigned ErrorLine = 0;

  bool succeeded() const { return M != nullptr; }
};

/// Parses \p Text into a module owned by \p Ctx.
ParseResult parseModule(const std::string &Text, Context &Ctx);

} // namespace ir
} // namespace cuadv

#endif // CUADV_IR_PARSER_H
