//===- ir/Instruction.h - Instruction class hierarchy -------------*- C++ -*-===//
//
// Part of the CUDAAdvisor reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The Instruction hierarchy: memory (alloca/load/store/gep), arithmetic
/// (binary/cmp/cast/select), calls, and terminators (br/ret). This is the
/// surface the instrumentation engine rewrites and the SIMT interpreter
/// executes.
///
//===----------------------------------------------------------------------===//

#ifndef CUADV_IR_INSTRUCTION_H
#define CUADV_IR_INSTRUCTION_H

#include "ir/DebugLoc.h"
#include "ir/Value.h"

#include <cassert>
#include <vector>

namespace cuadv {
namespace ir {

class BasicBlock;
class Function;

/// Base class of all instructions. Operands are held as raw Value pointers;
/// ownership of instructions belongs to their BasicBlock.
class Instruction : public Value {
public:
  BasicBlock *getParent() const { return Parent; }
  void setParent(BasicBlock *BB) { Parent = BB; }

  unsigned getNumOperands() const {
    return static_cast<unsigned>(Operands.size());
  }
  Value *getOperand(unsigned Index) const {
    assert(Index < Operands.size() && "operand index out of range");
    return Operands[Index];
  }
  void setOperand(unsigned Index, Value *V) {
    assert(Index < Operands.size() && "operand index out of range");
    Operands[Index] = V;
  }

  const DebugLoc &getDebugLoc() const { return Loc; }
  void setDebugLoc(const DebugLoc &NewLoc) { Loc = NewLoc; }

  bool isTerminator() const {
    return getKind() == ValueKind::Branch || getKind() == ValueKind::Return;
  }

  /// The textual opcode, e.g. "load" or "br".
  const char *getOpcodeName() const;

  static bool classof(const Value *V) {
    return V->getKind() >= ValueKind::InstBegin &&
           V->getKind() < ValueKind::InstEnd;
  }

protected:
  Instruction(ValueKind Kind, Type *Ty, std::vector<Value *> Ops)
      : Value(Kind, Ty), Operands(std::move(Ops)) {}

private:
  BasicBlock *Parent = nullptr;
  std::vector<Value *> Operands;
  DebugLoc Loc;
};

/// Stack (Local) or scratchpad (Shared) allocation. Locals are per-thread;
/// Shared allocations are one instance per CTA, as with CUDA __shared__.
/// Allocas must appear in the entry block (verifier rule).
class AllocaInst : public Instruction {
public:
  AllocaInst(Context &Ctx, Type *AllocatedTy, uint32_t ArrayCount,
             AddrSpace AS);

  Type *getAllocatedType() const { return AllocatedTy; }
  uint32_t getArrayCount() const { return ArrayCount; }
  AddrSpace getAddrSpace() const { return getType()->getAddrSpace(); }
  uint64_t allocationBytes() const {
    return static_cast<uint64_t>(AllocatedTy->sizeInBytes()) * ArrayCount;
  }

  static bool classof(const Value *V) {
    return V->getKind() == ValueKind::Alloca;
  }

private:
  Type *AllocatedTy;
  uint32_t ArrayCount;
};

/// Memory read through a typed pointer.
class LoadInst : public Instruction {
public:
  explicit LoadInst(Value *Ptr)
      : Instruction(ValueKind::Load, Ptr->getType()->getPointee(), {Ptr}) {
    assert(Ptr->getType()->isPointer() && "load pointer operand required");
  }

  Value *getPointerOperand() const { return getOperand(0); }
  /// Address space of the accessed memory.
  AddrSpace getAddrSpace() const {
    return getPointerOperand()->getType()->getAddrSpace();
  }

  static bool classof(const Value *V) {
    return V->getKind() == ValueKind::Load;
  }
};

/// Memory write through a typed pointer.
class StoreInst : public Instruction {
public:
  StoreInst(Context &Ctx, Value *StoredValue, Value *Ptr);

  Value *getValueOperand() const { return getOperand(0); }
  Value *getPointerOperand() const { return getOperand(1); }
  AddrSpace getAddrSpace() const {
    return getPointerOperand()->getType()->getAddrSpace();
  }

  static bool classof(const Value *V) {
    return V->getKind() == ValueKind::Store;
  }
};

/// Pointer arithmetic: result = Ptr + Index * sizeof(pointee). The single
/// integer index keeps address computation explicit in profiles while
/// covering everything the MiniCUDA front-end needs.
class GEPInst : public Instruction {
public:
  GEPInst(Value *Ptr, Value *Index)
      : Instruction(ValueKind::GEP, Ptr->getType(), {Ptr, Index}) {
    assert(Ptr->getType()->isPointer() && "gep pointer operand required");
    assert(Index->getType()->isInteger() && "gep index must be integer");
  }

  Value *getPointerOperand() const { return getOperand(0); }
  Value *getIndexOperand() const { return getOperand(1); }

  static bool classof(const Value *V) { return V->getKind() == ValueKind::GEP; }
};

/// Two-operand arithmetic/logic.
class BinaryInst : public Instruction {
public:
  enum class Op : uint8_t {
    // Integer.
    Add,
    Sub,
    Mul,
    SDiv,
    SRem,
    And,
    Or,
    Xor,
    Shl,
    AShr,
    // Floating point.
    FAdd,
    FSub,
    FMul,
    FDiv,
  };

  BinaryInst(Op TheOp, Value *LHS, Value *RHS)
      : Instruction(ValueKind::Binary, LHS->getType(), {LHS, RHS}),
        TheOp(TheOp) {
    assert(LHS->getType() == RHS->getType() &&
           "binary operand types must match");
  }

  Op getOp() const { return TheOp; }
  Value *getLHS() const { return getOperand(0); }
  Value *getRHS() const { return getOperand(1); }
  bool isFloatOp() const { return TheOp >= Op::FAdd; }

  static const char *opName(Op TheOp);

  static bool classof(const Value *V) {
    return V->getKind() == ValueKind::Binary;
  }

private:
  Op TheOp;
};

/// Comparison producing i1. Integer predicates are signed.
class CmpInst : public Instruction {
public:
  enum class Pred : uint8_t {
    EQ,
    NE,
    SLT,
    SLE,
    SGT,
    SGE,
    // Ordered float predicates.
    OEQ,
    ONE,
    OLT,
    OLE,
    OGT,
    OGE,
  };

  CmpInst(Context &Ctx, Pred ThePred, Value *LHS, Value *RHS);

  Pred getPred() const { return ThePred; }
  Value *getLHS() const { return getOperand(0); }
  Value *getRHS() const { return getOperand(1); }
  bool isFloatPred() const { return ThePred >= Pred::OEQ; }

  static const char *predName(Pred ThePred);

  static bool classof(const Value *V) { return V->getKind() == ValueKind::Cmp; }

private:
  Pred ThePred;
};

/// Value conversions between scalar types (and pointer bitcasts, used by
/// the instrumentation engine to pass effective addresses as i8*-style
/// generic pointers, mirroring the paper's Listing 2).
class CastInst : public Instruction {
public:
  enum class Op : uint8_t {
    SIToFP,   // int -> float
    FPToSI,   // float -> int (truncating)
    SExt,     // i32 -> i64
    Trunc,    // i64 -> i32
    ZExt,     // i1 -> i32
    FPExt,    // f32 -> f64
    FPTrunc,  // f64 -> f32
    PtrCast,  // pointer -> pointer (address space preserved)
    PtrToInt, // pointer -> i64
  };

  CastInst(Op TheOp, Value *Operand, Type *DestTy)
      : Instruction(ValueKind::Cast, DestTy, {Operand}), TheOp(TheOp) {}

  Op getOp() const { return TheOp; }
  static const char *opName(Op TheOp);

  static bool classof(const Value *V) {
    return V->getKind() == ValueKind::Cast;
  }

private:
  Op TheOp;
};

/// Direct call. Intrinsics (thread-index reads, __syncthreads, math, and
/// the profiler's Record hooks) are calls to declaration-only functions
/// whose names the interpreter dispatches on.
class CallInst : public Instruction {
public:
  CallInst(Function *Callee, std::vector<Value *> Args);

  Function *getCallee() const { return Callee; }
  unsigned getNumArgs() const { return getNumOperands(); }
  Value *getArg(unsigned Index) const { return getOperand(Index); }

  static bool classof(const Value *V) {
    return V->getKind() == ValueKind::Call;
  }

private:
  Function *Callee;
};

/// Ternary select: Cond ? TrueValue : FalseValue (no control flow).
class SelectInst : public Instruction {
public:
  SelectInst(Value *Cond, Value *TrueValue, Value *FalseValue)
      : Instruction(ValueKind::Select, TrueValue->getType(),
                    {Cond, TrueValue, FalseValue}) {
    assert(Cond->getType()->isI1() && "select condition must be i1");
    assert(TrueValue->getType() == FalseValue->getType() &&
           "select arm types must match");
  }

  Value *getCond() const { return getOperand(0); }
  Value *getTrueValue() const { return getOperand(1); }
  Value *getFalseValue() const { return getOperand(2); }

  static bool classof(const Value *V) {
    return V->getKind() == ValueKind::Select;
  }
};

/// Conditional or unconditional branch. Successor blocks are held directly
/// rather than as operands.
class BranchInst : public Instruction {
public:
  /// Unconditional branch.
  BranchInst(Context &Ctx, BasicBlock *Target);
  /// Conditional branch.
  BranchInst(Context &Ctx, Value *Cond, BasicBlock *TrueBlock,
             BasicBlock *FalseBlock);

  bool isConditional() const { return getNumOperands() == 1; }
  Value *getCondition() const {
    assert(isConditional() && "no condition on unconditional branch");
    return getOperand(0);
  }
  unsigned getNumSuccessors() const { return isConditional() ? 2 : 1; }
  BasicBlock *getSuccessor(unsigned Index) const {
    assert(Index < getNumSuccessors() && "successor index out of range");
    return Succs[Index];
  }
  void setSuccessor(unsigned Index, BasicBlock *BB) {
    assert(Index < getNumSuccessors() && "successor index out of range");
    Succs[Index] = BB;
  }

  static bool classof(const Value *V) {
    return V->getKind() == ValueKind::Branch;
  }

private:
  BasicBlock *Succs[2] = {nullptr, nullptr};
};

/// Function return, optionally with a value.
class ReturnInst : public Instruction {
public:
  explicit ReturnInst(Context &Ctx, Value *RetValue = nullptr);

  bool hasReturnValue() const { return getNumOperands() == 1; }
  Value *getReturnValue() const {
    assert(hasReturnValue() && "void return has no value");
    return getOperand(0);
  }

  static bool classof(const Value *V) {
    return V->getKind() == ValueKind::Return;
  }
};

} // namespace ir
} // namespace cuadv

#endif // CUADV_IR_INSTRUCTION_H
