//===- ir/Casting.h - LLVM-style isa/cast/dyn_cast --------------*- C++ -*-===//
//
// Part of the CUDAAdvisor reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Hand-rolled RTTI in the style of llvm/Support/Casting.h. Classes opt in
/// by providing a static classof(const Value *) predicate.
///
//===----------------------------------------------------------------------===//

#ifndef CUADV_IR_CASTING_H
#define CUADV_IR_CASTING_H

#include <cassert>

namespace cuadv {

template <typename To, typename From> bool isa(const From *V) {
  assert(V && "isa<> on a null pointer");
  return To::classof(V);
}

template <typename To, typename From> To *cast(From *V) {
  assert(isa<To>(V) && "cast<> argument of incompatible type");
  return static_cast<To *>(V);
}

template <typename To, typename From> const To *cast(const From *V) {
  assert(isa<To>(V) && "cast<> argument of incompatible type");
  return static_cast<const To *>(V);
}

template <typename To, typename From> const To &cast(const From &V) {
  assert(isa<To>(&V) && "cast<> argument of incompatible type");
  return static_cast<const To &>(V);
}

template <typename To, typename From> To &cast(From &V) {
  assert(isa<To>(&V) && "cast<> argument of incompatible type");
  return static_cast<To &>(V);
}

template <typename To, typename From> To *dyn_cast(From *V) {
  return isa<To>(V) ? static_cast<To *>(V) : nullptr;
}

template <typename To, typename From> const To *dyn_cast(const From *V) {
  return isa<To>(V) ? static_cast<const To *>(V) : nullptr;
}

} // namespace cuadv

#endif // CUADV_IR_CASTING_H
