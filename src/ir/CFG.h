//===- ir/CFG.h - Control-flow graph utilities --------------------*- C++ -*-===//
//
// Part of the CUDAAdvisor reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Control-flow graph queries over a Function: predecessor lists, orderings
/// (post order / reverse post order), and reachability. Used by the
/// verifier, the dominance analyses, and the SIMT reconvergence machinery.
///
//===----------------------------------------------------------------------===//

#ifndef CUADV_IR_CFG_H
#define CUADV_IR_CFG_H

#include "ir/Function.h"

#include <unordered_map>
#include <vector>

namespace cuadv {
namespace ir {

/// Snapshot of a function's CFG. Invalidated by any CFG mutation.
class CFGInfo {
public:
  explicit CFGInfo(const Function &F);

  const std::vector<BasicBlock *> &predecessors(BasicBlock *BB) const;
  const std::vector<BasicBlock *> &blocksInPostOrder() const {
    return PostOrder;
  }
  const std::vector<BasicBlock *> &blocksInReversePostOrder() const {
    return ReversePostOrder;
  }
  bool isReachable(BasicBlock *BB) const {
    return Preds.count(BB) != 0;
  }
  /// Blocks that end in a return instruction.
  const std::vector<BasicBlock *> &exitBlocks() const { return Exits; }

private:
  std::unordered_map<BasicBlock *, std::vector<BasicBlock *>> Preds;
  std::vector<BasicBlock *> PostOrder;
  std::vector<BasicBlock *> ReversePostOrder;
  std::vector<BasicBlock *> Exits;
  std::vector<BasicBlock *> EmptyList;
};

} // namespace ir
} // namespace cuadv

#endif // CUADV_IR_CFG_H
