//===- ir/Dominators.h - (Post)dominator trees --------------------*- C++ -*-===//
//
// Part of the CUDAAdvisor reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Dominator and post-dominator trees via the Cooper-Harvey-Kennedy
/// algorithm ("A Simple, Fast Dominance Algorithm"). The post-dominator
/// tree supplies the immediate-post-dominator (IPDOM) reconvergence points
/// the SIMT interpreter uses for branch-divergence handling, and the
/// dominator tree backs the verifier's def-dominates-use check.
///
//===----------------------------------------------------------------------===//

#ifndef CUADV_IR_DOMINATORS_H
#define CUADV_IR_DOMINATORS_H

#include "ir/CFG.h"

#include <unordered_map>

namespace cuadv {
namespace ir {

/// A dominator tree over a function's reachable blocks. With Post = true,
/// builds the post-dominator tree instead (requires a unique exit block,
/// which the verifier's single-return rule guarantees).
class DominatorTree {
public:
  DominatorTree(const Function &F, const CFGInfo &CFG, bool Post);

  /// Immediate dominator of \p BB. Null for the root and for blocks not in
  /// the tree (unreachable blocks).
  BasicBlock *getIDom(BasicBlock *BB) const;

  /// True if \p A dominates \p B (reflexive).
  bool dominates(BasicBlock *A, BasicBlock *B) const;

  BasicBlock *getRoot() const { return Root; }
  bool contains(BasicBlock *BB) const { return Index.count(BB) != 0; }

private:
  size_t intersect(size_t A, size_t B) const;

  BasicBlock *Root = nullptr;
  std::vector<BasicBlock *> Order; // Reverse (post)order, Root first.
  std::unordered_map<BasicBlock *, size_t> Index;
  std::vector<size_t> IDoms; // Index into Order; IDoms[0] == 0.
};

} // namespace ir
} // namespace cuadv

#endif // CUADV_IR_DOMINATORS_H
