//===- ir/DebugLoc.h - Source locations ---------------------------*- C++ -*-===//
//
// Part of the CUDAAdvisor reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Source-location debug information attached to IR instructions. The
/// instrumentation engine forwards these coordinates to the profiler hooks
/// so every profiled event carries file/line/column attribution (paper
/// Section 3.1).
///
//===----------------------------------------------------------------------===//

#ifndef CUADV_IR_DEBUGLOC_H
#define CUADV_IR_DEBUGLOC_H

namespace cuadv {
namespace ir {

/// A (file, line, column) source coordinate. FileId indexes the Context's
/// interned file-name table; id 0 means "<unknown>".
struct DebugLoc {
  unsigned FileId = 0;
  unsigned Line = 0;
  unsigned Col = 0;

  DebugLoc() = default;
  DebugLoc(unsigned FileId, unsigned Line, unsigned Col)
      : FileId(FileId), Line(Line), Col(Col) {}

  bool isValid() const { return Line != 0; }

  bool operator==(const DebugLoc &Other) const {
    return FileId == Other.FileId && Line == Other.Line && Col == Other.Col;
  }
};

} // namespace ir
} // namespace cuadv

#endif // CUADV_IR_DEBUGLOC_H
