//===- ir/Printer.cpp - Textual IR emission --------------------------------===//

#include "ir/Printer.h"

#include "ir/Casting.h"
#include "support/Error.h"
#include "support/Format.h"

#include <unordered_map>

using namespace cuadv;
using namespace cuadv::ir;

namespace {

/// Per-function printing state: names for unnamed values.
class FunctionPrinter {
public:
  explicit FunctionPrinter(const Function &F) : F(F) {
    // Assign slot numbers to unnamed arguments and value-producing
    // instructions, in program order.
    for (unsigned I = 0, E = F.getNumArgs(); I != E; ++I)
      nameFor(F.getArg(I));
    for (BasicBlock *BB : F)
      for (Instruction *Inst : *BB)
        if (!Inst->getType()->isVoid())
          nameFor(Inst);
  }

  std::string print() {
    std::string Out;
    Out += F.isDeclaration() ? "declare " : "define ";
    if (F.isKernel())
      Out += "kernel ";
    Out += F.getReturnType()->getName();
    Out += " @";
    Out += F.getName();
    Out += '(';
    for (unsigned I = 0, E = F.getNumArgs(); I != E; ++I) {
      if (I)
        Out += ", ";
      const Argument *Arg = F.getArg(I);
      Out += Arg->getType()->getName();
      Out += ' ';
      Out += nameFor(Arg);
    }
    Out += ')';
    if (F.getSourceFileId() != 0) {
      Out += " file \"";
      Out += F.getParent()->getContext().fileName(F.getSourceFileId());
      Out += '"';
    }
    if (F.isDeclaration())
      return Out + "\n";
    Out += " {\n";
    for (BasicBlock *BB : F) {
      Out += BB->getName();
      Out += ":\n";
      for (Instruction *Inst : *BB) {
        Out += "  ";
        Out += printInst(*Inst);
        Out += '\n';
      }
    }
    Out += "}\n";
    return Out;
  }

private:
  std::string nameFor(const Value *V) {
    if (V->hasName())
      return "%" + V->getName();
    auto It = SlotNames.find(V);
    if (It != SlotNames.end())
      return It->second;
    std::string Name = "%" + std::to_string(NextSlot++);
    SlotNames.emplace(V, Name);
    return Name;
  }

  /// Renders a value reference (without its type).
  std::string ref(const Value *V) {
    if (const auto *CI = dyn_cast<ConstantInt>(V)) {
      if (CI->getType()->isI1())
        return CI->getValue() ? "true" : "false";
      return std::to_string(CI->getValue());
    }
    if (const auto *CF = dyn_cast<ConstantFP>(V)) {
      const char *Fmt =
          CF->getType()->getKind() == Type::Kind::F32 ? "%.9g" : "%.17g";
      std::string S = formatString(Fmt, CF->getValue());
      // Ensure the token is recognizably a float when parsed back.
      if (S.find_first_of(".eEni") == std::string::npos)
        S += ".0";
      return S;
    }
    return nameFor(V);
  }

  /// Renders "type ref".
  std::string typedRef(const Value *V) {
    return V->getType()->getName() + " " + ref(V);
  }

  std::string printInst(const Instruction &Inst) {
    std::string Out;
    if (!Inst.getType()->isVoid()) {
      Out += nameFor(&Inst);
      Out += " = ";
    }
    switch (Inst.getKind()) {
    case ValueKind::Alloca: {
      const auto &AI = cast<AllocaInst>(Inst);
      Out += formatString("alloca %s, %u, %s",
                          AI.getAllocatedType()->getName().c_str(),
                          AI.getArrayCount(),
                          addrSpaceName(AI.getAddrSpace()));
      break;
    }
    case ValueKind::Load: {
      const auto &LI = cast<LoadInst>(Inst);
      Out += "load " + LI.getType()->getName() + ", " +
             typedRef(LI.getPointerOperand());
      break;
    }
    case ValueKind::Store: {
      const auto &SI = cast<StoreInst>(Inst);
      Out += "store " + typedRef(SI.getValueOperand()) + ", " +
             typedRef(SI.getPointerOperand());
      break;
    }
    case ValueKind::GEP: {
      const auto &GEP = cast<GEPInst>(Inst);
      Out += "gep " + typedRef(GEP.getPointerOperand()) + ", " +
             typedRef(GEP.getIndexOperand());
      break;
    }
    case ValueKind::Binary: {
      const auto &BI = cast<BinaryInst>(Inst);
      Out += std::string(BinaryInst::opName(BI.getOp())) + " " +
             BI.getLHS()->getType()->getName() + " " + ref(BI.getLHS()) +
             ", " + ref(BI.getRHS());
      break;
    }
    case ValueKind::Cmp: {
      const auto &CI = cast<CmpInst>(Inst);
      Out += std::string("cmp ") + CmpInst::predName(CI.getPred()) + " " +
             CI.getLHS()->getType()->getName() + " " + ref(CI.getLHS()) +
             ", " + ref(CI.getRHS());
      break;
    }
    case ValueKind::Cast: {
      const auto &CI = cast<CastInst>(Inst);
      Out += std::string("cast ") + CastInst::opName(CI.getOp()) + " " +
             typedRef(CI.getOperand(0)) + " to " + CI.getType()->getName();
      break;
    }
    case ValueKind::Call: {
      const auto &CI = cast<CallInst>(Inst);
      Out += "call " + CI.getType()->getName() + " @" +
             CI.getCallee()->getName() + "(";
      for (unsigned I = 0, E = CI.getNumArgs(); I != E; ++I) {
        if (I)
          Out += ", ";
        Out += typedRef(CI.getArg(I));
      }
      Out += ")";
      break;
    }
    case ValueKind::Select: {
      const auto &SI = cast<SelectInst>(Inst);
      Out += "select " + typedRef(SI.getCond()) + ", " +
             typedRef(SI.getTrueValue()) + ", " +
             typedRef(SI.getFalseValue());
      break;
    }
    case ValueKind::Branch: {
      const auto &BI = cast<BranchInst>(Inst);
      if (BI.isConditional())
        Out += "br " + typedRef(BI.getCondition()) + ", label %" +
               BI.getSuccessor(0)->getName() + ", label %" +
               BI.getSuccessor(1)->getName();
      else
        Out += "br label %" + BI.getSuccessor(0)->getName();
      break;
    }
    case ValueKind::Return: {
      const auto &RI = cast<ReturnInst>(Inst);
      Out += RI.hasReturnValue() ? "ret " + typedRef(RI.getReturnValue())
                                 : std::string("ret void");
      break;
    }
    default:
      cuadv_unreachable("unknown instruction kind in printer");
    }

    const DebugLoc &Loc = Inst.getDebugLoc();
    if (Loc.isValid()) {
      if (Loc.FileId == F.getSourceFileId())
        Out += formatString(" !dbg(%u:%u)", Loc.Line, Loc.Col);
      else
        Out += formatString(
            " !dbg(\"%s\", %u, %u)",
            F.getParent()->getContext().fileName(Loc.FileId).c_str(),
            Loc.Line, Loc.Col);
    }
    return Out;
  }

  const Function &F;
  std::unordered_map<const Value *, std::string> SlotNames;
  unsigned NextSlot = 0;
};

} // namespace

std::string ir::printFunction(const Function &F) {
  return FunctionPrinter(F).print();
}

std::string ir::printModule(const Module &M) {
  std::string Out = "module \"" + M.getName() + "\"\n\n";
  for (Function *F : M) {
    Out += printFunction(*F);
    Out += '\n';
  }
  return Out;
}
