//===- ir/Module.h - Modules --------------------------------------*- C++ -*-===//
//
// Part of the CUDAAdvisor reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A translation unit of device code: the unit the front-end emits, the
/// instrumentation engine rewrites, and the runtime registers (the analogue
/// of a fatbin-embedded bitcode module).
///
//===----------------------------------------------------------------------===//

#ifndef CUADV_IR_MODULE_H
#define CUADV_IR_MODULE_H

#include "ir/Context.h"
#include "ir/Function.h"

#include <memory>
#include <string>
#include <vector>

namespace cuadv {
namespace ir {

/// A collection of functions sharing a Context.
class Module {
public:
  Module(std::string Name, Context &Ctx) : Name(std::move(Name)), Ctx(Ctx) {}

  const std::string &getName() const { return Name; }
  Context &getContext() const { return Ctx; }

  /// Creates a new function. Fails fatally if the name is taken.
  Function *createFunction(std::string FuncName, Type *ReturnTy,
                           bool IsKernel = false);

  /// Returns the function named \p FuncName, or null.
  Function *getFunction(const std::string &FuncName) const;

  /// Returns the declaration for \p FuncName, creating it if missing. Used
  /// for intrinsics and profiler hooks. If the function already exists, its
  /// signature must match (checked by assert).
  Function *getOrInsertDeclaration(const std::string &FuncName,
                                   Type *ReturnTy,
                                   const std::vector<Type *> &ParamTys);

  size_t numFunctions() const { return Functions.size(); }
  Function *getFunctionAt(size_t Index) const {
    return Functions[Index].get();
  }

  class function_iterator {
  public:
    using Inner = std::vector<std::unique_ptr<Function>>::const_iterator;
    explicit function_iterator(Inner It) : It(It) {}
    Function *operator*() const { return It->get(); }
    function_iterator &operator++() {
      ++It;
      return *this;
    }
    bool operator!=(const function_iterator &Other) const {
      return It != Other.It;
    }

  private:
    Inner It;
  };
  function_iterator begin() const {
    return function_iterator(Functions.begin());
  }
  function_iterator end() const { return function_iterator(Functions.end()); }

private:
  std::string Name;
  Context &Ctx;
  std::vector<std::unique_ptr<Function>> Functions;
};

} // namespace ir
} // namespace cuadv

#endif // CUADV_IR_MODULE_H
