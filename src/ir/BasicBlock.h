//===- ir/BasicBlock.h - Basic blocks -----------------------------*- C++ -*-===//
//
// Part of the CUDAAdvisor reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Basic blocks: named, ordered instruction sequences ending in one
/// terminator. Instrumentation passes insert hook calls at arbitrary
/// positions, so insertion by index is supported.
///
//===----------------------------------------------------------------------===//

#ifndef CUADV_IR_BASICBLOCK_H
#define CUADV_IR_BASICBLOCK_H

#include "ir/Instruction.h"

#include <memory>
#include <string>
#include <vector>

namespace cuadv {
namespace ir {

class Function;

/// A basic block owned by a Function.
class BasicBlock {
public:
  BasicBlock(std::string Name, Function *Parent)
      : Name(std::move(Name)), Parent(Parent) {}

  const std::string &getName() const { return Name; }
  Function *getParent() const { return Parent; }

  /// Appends \p Inst and takes ownership.
  Instruction *push_back(std::unique_ptr<Instruction> Inst);

  /// Inserts \p Inst before index \p Index (0 = prepend) and takes
  /// ownership.
  Instruction *insertAt(size_t Index, std::unique_ptr<Instruction> Inst);

  size_t size() const { return Insts.size(); }
  bool empty() const { return Insts.empty(); }
  Instruction *getInst(size_t Index) const { return Insts[Index].get(); }

  /// Returns the block terminator, or null if the block is not yet
  /// terminated.
  Instruction *getTerminator() const;

  /// Successor blocks from the terminator (empty for ret).
  std::vector<BasicBlock *> successors() const;

  /// Iteration over raw Instruction pointers.
  class iterator {
  public:
    using Inner = std::vector<std::unique_ptr<Instruction>>::const_iterator;
    explicit iterator(Inner It) : It(It) {}
    Instruction *operator*() const { return It->get(); }
    iterator &operator++() {
      ++It;
      return *this;
    }
    bool operator!=(const iterator &Other) const { return It != Other.It; }
    bool operator==(const iterator &Other) const { return It == Other.It; }

  private:
    Inner It;
  };

  iterator begin() const { return iterator(Insts.begin()); }
  iterator end() const { return iterator(Insts.end()); }

private:
  std::string Name;
  Function *Parent;
  std::vector<std::unique_ptr<Instruction>> Insts;
};

} // namespace ir
} // namespace cuadv

#endif // CUADV_IR_BASICBLOCK_H
