//===- ir/analysis/Lint.h - GPU lint rules ------------------------*- C++ -*-===//
//
// Part of the CUDAAdvisor reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The GPU-specific diagnostic passes built on the uniformity analysis:
///
///   [SM-RACE]    shared-memory race: two accesses to the same __shared__
///                array in one barrier interval, at least one a write,
///                whose thread-index forms cannot be proven disjoint or
///                same-thread (barrier-interval dataflow + affine index
///                disjointness).
///   [BANK]       static shared-memory bank conflict: lane-to-lane word
///                stride of a shared access hits the same bank >= 2 times
///                per warp (32 banks x 4-byte words).
///   [DIV-BR]     statically divergent conditional branch (threads of a
///                warp may take both sides).
///   [BAR-DIV]    __syncthreads reachable only under divergent control —
///                a deadlock on real hardware, fatal in the simulator.
///   [MEM-STRIDE] global-memory access with a strided or unprovable
///                (divergent) address pattern — uncoalesced traffic.
///   [STATIC-OOB] load or store whose byte-offset interval, computed by
///                the symbolic range engine, provably escapes its base
///                object (or is provably misaligned) on every execution
///                — a guaranteed trap. May-out-of-bounds accesses are
///                not reported here; they surface through the
///                memcheck-mode static/dynamic cross-validation where
///                launch facts make the verdicts sharp.
///   [BAR-RED]    redundant __syncthreads: a barrier with no shared or
///                global memory access since the previous barrier, or a
///                barrier in a function that performs no shared/global
///                accesses (and calls no defined function) at all.
///
/// Each finding carries the offending instruction's DebugLoc (and, for
/// races, the second access's location) so diagnostics print file:line:col.
///
//===----------------------------------------------------------------------===//

#ifndef CUADV_IR_ANALYSIS_LINT_H
#define CUADV_IR_ANALYSIS_LINT_H

#include "ir/DebugLoc.h"
#include "ir/analysis/Pass.h"

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace cuadv {
namespace ir {
namespace analysis {

enum class LintRule : uint8_t {
  SharedRace,
  BankConflict,
  DivergentBranch,
  BarrierDivergence,
  MemStride,
  StaticOob,
  RedundantBarrier,
};

/// The stable tag printed in brackets, e.g. "SM-RACE".
const char *lintRuleTag(LintRule Rule);

/// Parses a tag back to a rule; returns false if unknown.
bool parseLintRule(const std::string &Tag, LintRule &Rule);

/// Bit for \p Rule in a rule mask.
inline unsigned lintRuleBit(LintRule Rule) {
  return 1u << static_cast<unsigned>(Rule);
}

/// Mask enabling every rule.
inline unsigned allLintRules() { return (1u << 7) - 1; }

/// One diagnostic produced by a pass.
struct Finding {
  LintRule Rule = LintRule::DivergentBranch;
  /// Function the finding is in (never null for pass findings).
  const Function *F = nullptr;
  /// Primary source location.
  DebugLoc Loc;
  /// Secondary location (the other access of a race); may be invalid.
  DebugLoc RelatedLoc;
  std::string Message;
};

/// \name Pass factories.
/// @{
std::unique_ptr<FunctionPass> createSharedRacePass();
std::unique_ptr<FunctionPass> createBankConflictPass();
std::unique_ptr<FunctionPass> createDivergentBranchPass();
std::unique_ptr<FunctionPass> createBarrierDivergencePass();
std::unique_ptr<FunctionPass> createMemStridePass();
std::unique_ptr<FunctionPass> createStaticOobPass();
std::unique_ptr<FunctionPass> createRedundantBarrierPass();
/// @}

/// Runs the passes selected by \p RuleMask over \p M and returns the
/// sorted findings.
std::vector<Finding> runGpuLint(const Module &M,
                                unsigned RuleMask = allLintRules());

/// Renders one finding as "file:line:col: [TAG] message" using the
/// module's context for file names.
std::string formatFinding(const Module &M, const Finding &F);

} // namespace analysis
} // namespace ir
} // namespace cuadv

#endif // CUADV_IR_ANALYSIS_LINT_H
