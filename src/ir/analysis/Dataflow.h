//===- ir/analysis/Dataflow.h - Forward dataflow engine -----------*- C++ -*-===//
//
// Part of the CUDAAdvisor reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small forward-dataflow fixpoint engine over a function's CFG. A
/// client supplies a Domain describing the lattice:
///
///   struct Domain {
///     using State = ...;                       // a lattice element
///     State boundary() const;                  // entry-block input
///     State initial() const;                   // bottom, for other blocks
///     bool join(State &Into, const State &From) const; // true if changed
///     void transfer(const BasicBlock *BB, State &S) const;
///   };
///
/// The engine iterates a worklist seeded in reverse post order until the
/// block-entry states stabilise, then returns both the entry and exit
/// state of every reachable block. Used by the shared-memory race checker
/// (barrier-interval analysis) and open to further checkers.
///
//===----------------------------------------------------------------------===//

#ifndef CUADV_IR_ANALYSIS_DATAFLOW_H
#define CUADV_IR_ANALYSIS_DATAFLOW_H

#include "ir/CFG.h"

#include <deque>
#include <unordered_map>
#include <unordered_set>

namespace cuadv {
namespace ir {
namespace analysis {

template <typename Domain> struct DataflowResult {
  /// State on entry to each reachable block.
  std::unordered_map<const BasicBlock *, typename Domain::State> In;
  /// State on exit from each reachable block.
  std::unordered_map<const BasicBlock *, typename Domain::State> Out;
};

/// Runs \p D to fixpoint over \p F and returns the per-block states.
template <typename Domain>
DataflowResult<Domain> runForwardDataflow(const Function &,
                                          const CFGInfo &CFG,
                                          const Domain &D) {
  DataflowResult<Domain> R;
  const std::vector<BasicBlock *> &RPO = CFG.blocksInReversePostOrder();
  if (RPO.empty())
    return R;

  for (BasicBlock *BB : RPO)
    R.In.emplace(BB, BB == RPO.front() ? D.boundary() : D.initial());

  std::deque<BasicBlock *> Worklist(RPO.begin(), RPO.end());
  std::unordered_set<BasicBlock *> Queued(RPO.begin(), RPO.end());
  while (!Worklist.empty()) {
    BasicBlock *BB = Worklist.front();
    Worklist.pop_front();
    Queued.erase(BB);

    typename Domain::State S = R.In.at(BB);
    D.transfer(BB, S);
    auto [It, Inserted] = R.Out.emplace(BB, S);
    bool ExitChanged = Inserted;
    if (!Inserted && !(It->second == S)) {
      It->second = S;
      ExitChanged = true;
    }
    if (!ExitChanged)
      continue;

    for (BasicBlock *Succ : BB->successors()) {
      auto InIt = R.In.find(Succ);
      if (InIt == R.In.end())
        continue; // Unreachable successor.
      if (D.join(InIt->second, S) && Queued.insert(Succ).second)
        Worklist.push_back(Succ);
    }
  }
  return R;
}

} // namespace analysis
} // namespace ir
} // namespace cuadv

#endif // CUADV_IR_ANALYSIS_DATAFLOW_H
