//===- ir/analysis/Lint.cpp - GPU lint rules --------------------------------===//
//
// Part of the CUDAAdvisor reproduction project.
//
//===----------------------------------------------------------------------===//

#include "ir/analysis/Lint.h"

#include "ir/Casting.h"
#include "ir/analysis/Dataflow.h"
#include "ir/analysis/MemSafety.h"

#include <map>
#include <numeric>
#include <set>
#include <sstream>

namespace cuadv {
namespace ir {
namespace analysis {

const char *lintRuleTag(LintRule Rule) {
  switch (Rule) {
  case LintRule::SharedRace:
    return "SM-RACE";
  case LintRule::BankConflict:
    return "BANK";
  case LintRule::DivergentBranch:
    return "DIV-BR";
  case LintRule::BarrierDivergence:
    return "BAR-DIV";
  case LintRule::MemStride:
    return "MEM-STRIDE";
  case LintRule::StaticOob:
    return "STATIC-OOB";
  case LintRule::RedundantBarrier:
    return "BAR-RED";
  }
  return "?";
}

bool parseLintRule(const std::string &Tag, LintRule &Rule) {
  for (LintRule R :
       {LintRule::SharedRace, LintRule::BankConflict,
        LintRule::DivergentBranch, LintRule::BarrierDivergence,
        LintRule::MemStride, LintRule::StaticOob,
        LintRule::RedundantBarrier}) {
    if (Tag == lintRuleTag(R)) {
      Rule = R;
      return true;
    }
  }
  return false;
}

std::string formatFinding(const Module &M, const Finding &F) {
  const Context &Ctx = M.getContext();
  std::ostringstream OS;
  OS << Ctx.fileName(F.Loc.FileId) << ':' << F.Loc.Line << ':' << F.Loc.Col
     << ": [" << lintRuleTag(F.Rule) << "] " << F.Message;
  if (F.F)
    OS << " [function '" << F.F->getName() << "']";
  if (F.RelatedLoc.isValid())
    OS << " (other access at " << Ctx.fileName(F.RelatedLoc.FileId) << ':'
       << F.RelatedLoc.Line << ':' << F.RelatedLoc.Col << ')';
  return OS.str();
}

namespace {

/// Returns the pointer operand if \p Inst is a load or store into the
/// given address space, null otherwise.
const Value *accessPointer(const Instruction *Inst, AddrSpace AS) {
  if (const auto *Load = dyn_cast<LoadInst>(Inst))
    return Load->getAddrSpace() == AS ? Load->getPointerOperand() : nullptr;
  if (const auto *Store = dyn_cast<StoreInst>(Inst))
    return Store->getAddrSpace() == AS ? Store->getPointerOperand() : nullptr;
  return nullptr;
}

/// True for accesses a barrier can meaningfully order (shared or global;
/// Local slot traffic is thread-private).
bool touchesSyncedMemory(const Instruction *Inst) {
  return accessPointer(Inst, AddrSpace::Shared) != nullptr ||
         accessPointer(Inst, AddrSpace::Global) != nullptr;
}

/// Strips value-preserving integer casts.
const Value *stripIntCasts(const Value *V) {
  while (const auto *C = dyn_cast<CastInst>(V)) {
    switch (C->getOp()) {
    case CastInst::Op::SExt:
    case CastInst::Op::ZExt:
    case CastInst::Op::Trunc:
      V = C->getOperand(0);
      continue;
    default:
      return V;
    }
  }
  return V;
}

//===----------------------------------------------------------------------===//
// [DIV-BR] Divergent conditional branches.
//===----------------------------------------------------------------------===//

class DivergentBranchPass : public FunctionPass {
public:
  const char *name() const override { return "divergent-branch"; }

  void run(const Function &F, AnalysisManager &AM,
           std::vector<Finding> &Out) override {
    const UniformityInfo &UI = AM.uniformity(F);
    for (BasicBlock *BB : AM.cfg(F).blocksInReversePostOrder()) {
      const Instruction *Term = BB->getTerminator();
      if (!Term || !UI.isDivergentBranch(*Term))
        continue;
      // Range refinement: a thread-dependent condition whose *outcome*
      // is still provable — the range engine folded the comparison, or
      // the canonical `if (tid < blockDim.x)` shape holds by the
      // hardware invariant tid_d <= ntid_d - 1 — never splits the warp.
      if (const auto *Br = dyn_cast<BranchInst>(Term)) {
        if (Br->isConditional()) {
          if (AM.ranges(F).range(Br->getCondition()).isConstant())
            continue;
          if (const auto *Cmp = dyn_cast<CmpInst>(Br->getCondition()))
            if (guardNeverSplitsWarp(*Cmp, UI))
              continue;
        }
      }
      Finding Fd;
      Fd.Rule = LintRule::DivergentBranch;
      Fd.F = &F;
      Fd.Loc = Term->getDebugLoc();
      Fd.Message = "conditional branch depends on the thread index; warp "
                   "lanes may take both sides";
      Out.push_back(std::move(Fd));
    }
  }

private:
  /// Proves a thread-dependent guard decides the same way for every
  /// live thread: the difference lhs - rhs is affine of the exact shape
  /// +-(tid_d - ntid_d) + C, and the hardware invariant
  /// 0 <= tid_d <= ntid_d - 1 bounds it on the side the predicate asks
  /// about.
  static bool guardNeverSplitsWarp(const CmpInst &Cmp,
                                   const UniformityInfo &UI) {
    UVal L = UI.value(Cmp.getLHS());
    UVal R = UI.value(Cmp.getRHS());
    if (!L.isAffine() || !R.isAffine())
      return false;
    AffineForm Diff = AffineForm::sub(L.form(), R.form());
    if (Diff.Terms.size() != 1)
      return false;
    const auto *Ntid = dyn_cast<CallInst>(Diff.Terms[0].first);
    if (!Ntid || !Ntid->getCallee())
      return false;
    const std::string &N = Ntid->getCallee()->getName();
    int Dim = N == "cuadv.ntid.x" ? 0 : N == "cuadv.ntid.y" ? 1 : -1;
    if (Dim < 0)
      return false;
    int64_t TidCoef = Dim == 0 ? Diff.CoefX : Diff.CoefY;
    int64_t OtherCoef = Dim == 0 ? Diff.CoefY : Diff.CoefX;
    int64_t NtidCoef = Diff.Terms[0].second;
    if (OtherCoef != 0)
      return false;
    // tid - ntid + C: the invariant gives Diff <= C - 1.
    // ntid - tid + C: the invariant gives Diff >= C + 1.
    bool HasHi = TidCoef == 1 && NtidCoef == -1;
    bool HasLo = TidCoef == -1 && NtidCoef == 1;
    if (!HasHi && !HasLo)
      return false;
    int64_t C = Diff.Const;
    switch (Cmp.getPred()) {
    case CmpInst::Pred::SLT: // Diff < 0: always true / always false?
      return (HasHi && C - 1 < 0) || (HasLo && C + 1 >= 0);
    case CmpInst::Pred::SLE: // Diff <= 0
      return (HasHi && C - 1 <= 0) || (HasLo && C + 1 > 0);
    case CmpInst::Pred::SGT: // Diff > 0
      return (HasHi && C - 1 <= 0) || (HasLo && C + 1 > 0);
    case CmpInst::Pred::SGE: // Diff >= 0
      return (HasHi && C - 1 < 0) || (HasLo && C + 1 >= 0);
    default:
      return false;
    }
  }
};

//===----------------------------------------------------------------------===//
// [BAR-DIV] Barriers under divergent control flow.
//===----------------------------------------------------------------------===//

class BarrierDivergencePass : public FunctionPass {
public:
  const char *name() const override { return "barrier-divergence"; }

  void run(const Function &F, AnalysisManager &AM,
           std::vector<Finding> &Out) override {
    const UniformityInfo &UI = AM.uniformity(F);
    for (BasicBlock *BB : AM.cfg(F).blocksInReversePostOrder()) {
      if (!UI.isEntryDivergent() && !UI.isBlockDivergent(BB))
        continue;
      for (const Instruction *Inst : *BB) {
        if (!isBarrierCall(*Inst))
          continue;
        Finding Fd;
        Fd.Rule = LintRule::BarrierDivergence;
        Fd.F = &F;
        Fd.Loc = Inst->getDebugLoc();
        Fd.Message =
            "__syncthreads is reachable only under divergent control flow; "
            "threads that skip it deadlock the CTA";
        Out.push_back(std::move(Fd));
      }
    }
  }
};

//===----------------------------------------------------------------------===//
// [BANK] Shared-memory bank conflicts.
//===----------------------------------------------------------------------===//

class BankConflictPass : public FunctionPass {
public:
  const char *name() const override { return "bank-conflict"; }

  void run(const Function &F, AnalysisManager &AM,
           std::vector<Finding> &Out) override {
    const UniformityInfo &UI = AM.uniformity(F);
    for (BasicBlock *BB : AM.cfg(F).blocksInReversePostOrder()) {
      for (const Instruction *Inst : *BB) {
        const Value *Ptr = accessPointer(Inst, AddrSpace::Shared);
        if (!Ptr)
          continue;
        UVal PV = UI.value(Ptr);
        if (!PV.isAffine()) {
          maybeReportWrappedConflict(Inst, Ptr, UI, F, Out);
          continue;
        }
        int64_t ByteStride = PV.form().CoefX;
        // 32 banks of 4-byte words: lanes l and l' collide when
        // (l - l') * wordStride == 0 (mod 32), i.e. gcd(wordStride, 32)
        // lanes land on each bank.
        if (ByteStride == 0 || ByteStride % 4 != 0)
          continue;
        int64_t WordStride = ByteStride / 4;
        int64_t Degree = std::gcd(WordStride < 0 ? -WordStride : WordStride,
                                  int64_t(32));
        if (Degree < 2)
          continue;
        Finding Fd;
        Fd.Rule = LintRule::BankConflict;
        Fd.F = &F;
        Fd.Loc = Inst->getDebugLoc();
        std::ostringstream OS;
        OS << "shared-memory access has a " << Degree
           << "-way bank conflict (lane word stride " << WordStride
           << "); consider padding the row";
        Fd.Message = OS.str();
        Out.push_back(std::move(Fd));
      }
    }
  }

private:
  /// Lane-simulation fallback for indices the affine engine cannot
  /// represent: a shared access `base[expr % m]` or `base[expr & mask]`
  /// where expr is affine in threadIdx.x with no symbolic part. The 32
  /// lanes of a warp are evaluated exactly; a bank hit by two or more
  /// distinct words is a conflict (same word is a broadcast, not a
  /// conflict).
  static void maybeReportWrappedConflict(const Instruction *Inst,
                                         const Value *Ptr,
                                         const UniformityInfo &UI,
                                         const Function &F,
                                         std::vector<Finding> &Out) {
    const auto *G = dyn_cast<GEPInst>(Ptr);
    if (!G)
      return;
    UVal BaseV = UI.value(G->getPointerOperand());
    if (!BaseV.isAffine() || !BaseV.form().isUniform())
      return;
    int64_t Elem =
        G->getPointerOperand()->getType()->getPointee()->sizeInBytes();
    if (Elem <= 0 || Elem % 4 != 0)
      return;
    const auto *Bin = dyn_cast<BinaryInst>(stripIntCasts(G->getIndexOperand()));
    if (!Bin)
      return;
    bool IsRem = Bin->getOp() == BinaryInst::Op::SRem;
    bool IsAnd = Bin->getOp() == BinaryInst::Op::And;
    if (!IsRem && !IsAnd)
      return;
    const Value *ExprV = stripIntCasts(Bin->getLHS());
    const auto *Wrap = dyn_cast<ConstantInt>(stripIntCasts(Bin->getRHS()));
    if (!Wrap && IsAnd) { // bitand commutes; srem does not
      Wrap = dyn_cast<ConstantInt>(stripIntCasts(Bin->getLHS()));
      ExprV = stripIntCasts(Bin->getRHS());
    }
    if (!Wrap || Wrap->getValue() <= 0)
      return;
    UVal Inner = UI.value(ExprV);
    if (!Inner.isAffine() || !Inner.form().Terms.empty() ||
        Inner.form().CoefY != 0 || Inner.form().CoefX == 0)
      return;
    int64_t A = Inner.form().CoefX;
    int64_t C = Inner.form().Const;
    int64_t M = Wrap->getValue();
    if (A < 0 || C < 0)
      return; // keep the wrap evaluation exact for nonnegative indices
    std::map<int64_t, std::set<int64_t>> Banks;
    for (int64_t Lane = 0; Lane < 32; ++Lane) {
      int64_t Idx = A * Lane + C;
      Idx = IsRem ? Idx % M : (Idx & M);
      int64_t Word = Elem / 4 * Idx;
      Banks[Word % 32].insert(Word);
    }
    size_t Degree = 0;
    for (const auto &B : Banks)
      Degree = std::max(Degree, B.second.size());
    if (Degree < 2)
      return;
    Finding Fd;
    Fd.Rule = LintRule::BankConflict;
    Fd.F = &F;
    Fd.Loc = Inst->getDebugLoc();
    std::ostringstream OS;
    OS << "shared-memory access has a " << Degree
       << "-way bank conflict (index wraps "
       << (IsRem ? "modulo " : "under mask ") << M
       << "; 32 lanes simulated); consider padding the row";
    Fd.Message = OS.str();
    Out.push_back(std::move(Fd));
  }
};

//===----------------------------------------------------------------------===//
// [MEM-STRIDE] Uncoalesced global-memory traffic.
//===----------------------------------------------------------------------===//

class MemStridePass : public FunctionPass {
public:
  const char *name() const override { return "mem-stride"; }

  void run(const Function &F, AnalysisManager &AM,
           std::vector<Finding> &Out) override {
    const UniformityInfo &UI = AM.uniformity(F);
    const std::vector<LoopTripCount> &Loops = AM.loops(F);
    for (BasicBlock *BB : AM.cfg(F).blocksInReversePostOrder()) {
      for (const Instruction *Inst : *BB) {
        if (!accessPointer(Inst, AddrSpace::Global))
          continue;
        MemAccessClass C = UI.classifyAccess(*Inst);
        if (C.Kind != MemAccessKind::Strided &&
            C.Kind != MemAccessKind::Divergent)
          continue;
        const LoopTripCount *L = innermostLoopFor(Loops, BB);
        // Trip-count refinement: a loop the range engine proves never
        // runs its body cannot issue the access.
        if (L && L->Counted && L->Trip.hasHi() && L->Trip.Hi == 0)
          continue;
        Finding Fd;
        Fd.Rule = LintRule::MemStride;
        Fd.F = &F;
        Fd.Loc = Inst->getDebugLoc();
        std::ostringstream OS;
        if (C.Kind == MemAccessKind::Strided)
          OS << "global " << (isa<LoadInst>(Inst) ? "load" : "store")
             << " is strided across lanes (stride " << C.StrideBytes
             << " bytes); accesses will not coalesce";
        else
          OS << "global " << (isa<LoadInst>(Inst) ? "load" : "store")
             << " has a thread-divergent address; accesses may not coalesce";
        if (L && L->Counted && L->Trip.hasHi())
          OS << "; the enclosing loop repeats it up to " << L->Trip.Hi
             << " time" << (L->Trip.Hi == 1 ? "" : "s") << " per thread";
        Fd.Message = OS.str();
        Out.push_back(std::move(Fd));
      }
    }
  }
};

//===----------------------------------------------------------------------===//
// [SM-RACE] Shared-memory races within one barrier interval.
//===----------------------------------------------------------------------===//

/// Dataflow domain: the set of shared-memory accesses that reach a program
/// point with no intervening __syncthreads (the current barrier interval).
struct BarrierIntervalDomain {
  using State = std::set<const Instruction *>;
  State boundary() const { return {}; }
  State initial() const { return {}; }
  bool join(State &Into, const State &From) const {
    bool Changed = false;
    for (const Instruction *I : From)
      Changed |= Into.insert(I).second;
    return Changed;
  }
  void transfer(const BasicBlock *BB, State &S) const {
    for (const Instruction *Inst : *BB) {
      if (isBarrierCall(*Inst))
        S.clear();
      else if (accessPointer(Inst, AddrSpace::Shared))
        S.insert(Inst);
    }
  }
};

class SharedRacePass : public FunctionPass {
public:
  const char *name() const override { return "shared-race"; }

  void run(const Function &F, AnalysisManager &AM,
           std::vector<Finding> &Out) override {
    bool AnyShared = false;
    for (BasicBlock *BB : F)
      for (const Instruction *Inst : *BB)
        AnyShared |= accessPointer(Inst, AddrSpace::Shared) != nullptr;
    if (!AnyShared)
      return;

    UI = &AM.uniformity(F);
    DT = &AM.domTree(F);
    const CFGInfo &CFG = AM.cfg(F);
    collectPinGuards(CFG);

    auto Result = runForwardDataflow(F, CFG, BarrierIntervalDomain());
    // Every pair examined once, whether it was proven safe or reported;
    // the instruction walk and the parallel-path sweeps below share it.
    std::set<std::pair<const Instruction *, const Instruction *>> Seen;
    for (BasicBlock *BB : CFG.blocksInReversePostOrder()) {
      BarrierIntervalDomain::State S = Result.In.at(BB);
      // Accesses arriving from disjoint predecessor paths (a store in the
      // then-arm, a load in the else-arm) both sit in this block's
      // In-state but neither is ever the scanned instruction for the
      // other, so compare them pairwise where they first co-occur.
      checkParallelPairs(S, Seen, Out, F);
      for (const Instruction *Inst : *BB) {
        if (isBarrierCall(*Inst)) {
          S.clear();
          continue;
        }
        if (!accessPointer(Inst, AddrSpace::Shared))
          continue;
        for (const Instruction *Prev : S)
          checkPair(Prev, Inst, Seen, Out, F);
        checkPair(Inst, Inst, Seen, Out, F);
        S.insert(Inst);
      }
    }
    // Divergent paths that return without re-merging share no In-state;
    // their surviving accesses still execute in one barrier interval.
    BarrierIntervalDomain::State ExitUnion;
    for (BasicBlock *Exit : CFG.exitBlocks()) {
      auto It = Result.Out.find(Exit);
      if (It != Result.Out.end())
        ExitUnion.insert(It->second.begin(), It->second.end());
    }
    checkParallelPairs(ExitUnion, Seen, Out, F);
    PinGuards.clear();
  }

private:
  struct PinGuard {
    const BasicBlock *EqSucc; ///< Block entered only when the guard holds.
    int Dim;                  ///< 0 = threadIdx.x, 1 = threadIdx.y.
    AffineForm Diff;          ///< Normalised lhs - rhs of the comparison.
  };

  const UniformityInfo *UI = nullptr;
  const DominatorTree *DT = nullptr;
  std::vector<PinGuard> PinGuards;

  /// Collects "tid pins": conditional branches on `tid_d == uniform` whose
  /// equality successor has the branch block as its only predecessor. Any
  /// block dominated by that successor executes only in threads with one
  /// specific tid_d value.
  void collectPinGuards(const CFGInfo &CFG) {
    for (BasicBlock *BB : CFG.blocksInReversePostOrder()) {
      const Instruction *Term = BB->getTerminator();
      if (!Term)
        continue;
      const auto *Br = dyn_cast<BranchInst>(Term);
      if (!Br || !Br->isConditional())
        continue;
      const auto *Cmp = dyn_cast<CmpInst>(Br->getCondition());
      if (!Cmp)
        continue;
      BasicBlock *EqSucc = nullptr;
      if (Cmp->getPred() == CmpInst::Pred::EQ)
        EqSucc = Br->getSuccessor(0);
      else if (Cmp->getPred() == CmpInst::Pred::NE)
        EqSucc = Br->getSuccessor(1);
      else
        continue;
      UVal L = UI->value(Cmp->getLHS());
      UVal R = UI->value(Cmp->getRHS());
      if (!L.isAffine() || !R.isAffine())
        continue;
      AffineForm Diff = AffineForm::sub(L.form(), R.form());
      int Dim;
      if (Diff.CoefX != 0 && Diff.CoefY == 0)
        Dim = 0;
      else if (Diff.CoefX == 0 && Diff.CoefY != 0)
        Dim = 1;
      else
        continue;
      int64_t Lead = Dim == 0 ? Diff.CoefX : Diff.CoefY;
      if (Lead < 0)
        Diff = AffineForm::scale(Diff, -1);
      const std::vector<BasicBlock *> &Preds = CFG.predecessors(EqSucc);
      if (Preds.size() != 1 || Preds[0] != BB)
        continue;
      PinGuards.push_back(PinGuard{EqSucc, Dim, std::move(Diff)});
    }
  }

  /// True if both blocks are constrained to the same tid_d value by a
  /// common pin condition.
  bool pinnedEqual(const BasicBlock *A, const BasicBlock *B, int Dim) const {
    for (const PinGuard &GA : PinGuards) {
      if (GA.Dim != Dim ||
          !DT->dominates(const_cast<BasicBlock *>(GA.EqSucc),
                         const_cast<BasicBlock *>(A)))
        continue;
      for (const PinGuard &GB : PinGuards)
        if (GB.Dim == Dim && GA.Diff == GB.Diff &&
            DT->dominates(const_cast<BasicBlock *>(GB.EqSucc),
                          const_cast<BasicBlock *>(B)))
          return true;
    }
    return false;
  }

  /// True if the access in \p PinBB runs only in the thread with a known
  /// constant tid_D, and the other access's index \p FO can only produce
  /// the pinned access's address \p FP for a thread id that is negative
  /// (nonexistent) or that same thread (no cross-thread collision).
  bool pinnedApart(const BasicBlock *PinBB, const AffineForm &FP,
                   const AffineForm &FO, int D) const {
    for (const PinGuard &G : PinGuards) {
      if (G.Dim != D ||
          !DT->dominates(const_cast<BasicBlock *>(G.EqSucc),
                         const_cast<BasicBlock *>(PinBB)))
        continue;
      // Solve the pin k*tid_D + c == 0 for a constant lane id.
      if (!G.Diff.Terms.empty())
        continue;
      int64_t K = D == 0 ? G.Diff.CoefX : G.Diff.CoefY;
      if (K == 0 || G.Diff.Const % K != 0)
        continue;
      int64_t Lane = -G.Diff.Const / K;
      if (Lane < 0)
        continue; // Guard can never hold; the block is dead anyway.
      // Evaluate the pinned index at that lane and compare against FO.
      AffineForm AtLane = FP;
      AtLane.Const += (D == 0 ? AtLane.CoefX : AtLane.CoefY) * Lane;
      (D == 0 ? AtLane.CoefX : AtLane.CoefY) = 0;
      AffineForm D2 = AffineForm::sub(AtLane, FO);
      if (!D2.Terms.empty() || (D == 0 ? D2.CoefY : D2.CoefX) != 0)
        continue;
      int64_t Stride = -(D == 0 ? D2.CoefX : D2.CoefY);
      if (Stride == 0) {
        if (D2.Const != 0)
          return true; // Addresses constant and distinct.
        continue;
      }
      if (D2.Const % Stride != 0)
        return true; // The stride never lands on the pinned address.
      int64_t Collide = D2.Const / Stride;
      if (Collide < 0 || Collide == Lane)
        return true; // Nonexistent thread, or the pinned thread itself.
    }
    return false;
  }

  /// True if warps can be split between threads executing \p Acc and
  /// threads elsewhere: the access's block lies in the influence region
  /// of a divergent branch, or the whole function may be entered by a
  /// partial warp.
  bool mayRunWithPartialWarp(const Instruction *Acc) const {
    return UI->isEntryDivergent() || UI->isBlockDivergent(Acc->getParent());
  }

  /// Compares accesses on parallel paths (neither reaches the other).
  /// Such a pair only executes concurrently when a divergent branch
  /// splits the warp between the two blocks — under a uniform branch the
  /// whole CTA picks one arm, so the accesses are mutually exclusive and
  /// flagging them would be a false positive.
  void checkParallelPairs(
      const BarrierIntervalDomain::State &S,
      std::set<std::pair<const Instruction *, const Instruction *>> &Seen,
      std::vector<Finding> &Out, const Function &F) {
    for (auto IA = S.begin(); IA != S.end(); ++IA) {
      if (!mayRunWithPartialWarp(*IA))
        continue;
      for (auto IB = std::next(IA); IB != S.end(); ++IB)
        if (mayRunWithPartialWarp(*IB))
          checkPair(*IA, *IB, Seen, Out, F);
    }
  }

  void checkPair(
      const Instruction *A, const Instruction *B,
      std::set<std::pair<const Instruction *, const Instruction *>> &Seen,
      std::vector<Finding> &Out, const Function &F) {
    bool AWrite = isa<StoreInst>(A);
    bool BWrite = isa<StoreInst>(B);
    if (!AWrite && !BWrite)
      return;
    const Value *BaseA = pointerBase(accessPointer(A, AddrSpace::Shared));
    const Value *BaseB = pointerBase(accessPointer(B, AddrSpace::Shared));
    // Shared storage in MiniCUDA is always a kernel-level alloca; distinct
    // allocas never alias.
    if (BaseA != BaseB)
      return;
    // The safety proof depends only on the pair itself (index forms and
    // the blocks the accesses sit in), so one verdict per pair suffices
    // no matter how many program points expose the pair.
    std::pair<const Instruction *, const Instruction *> Key =
        A < B ? std::make_pair(A, B) : std::make_pair(B, A);
    if (!Seen.insert(Key).second)
      return;
    if (pairSafe(A, B))
      return;
    Finding Fd;
    Fd.Rule = LintRule::SharedRace;
    Fd.F = &F;
    // Anchor the finding at a write; the other access is "related".
    const Instruction *Primary = BWrite ? B : A;
    const Instruction *Other = Primary == B ? A : B;
    Fd.Loc = Primary->getDebugLoc();
    if (Other != Primary)
      Fd.RelatedLoc = Other->getDebugLoc();
    std::ostringstream OS;
    const auto *Slot = dyn_cast<AllocaInst>(BaseA);
    OS << "possible shared-memory race on '"
       << (Slot && Slot->hasName() ? Slot->getName() : std::string("shared"))
       << "': " << (AWrite ? "write" : "read") << " and "
       << (BWrite ? "write" : "read")
       << " in the same barrier interval may touch the same element from "
          "different threads";
    Fd.Message = OS.str();
    Out.push_back(std::move(Fd));
  }

  /// Proves a pair of same-array accesses safe, or returns false (race).
  bool pairSafe(const Instruction *A, const Instruction *B) const {
    UVal VA = UI->value(accessPointer(A, AddrSpace::Shared));
    UVal VB = UI->value(accessPointer(B, AddrSpace::Shared));
    if (!VA.isAffine() || !VB.isAffine())
      return false;
    const AffineForm &FA = VA.form();
    const AffineForm &FB = VB.form();

    std::vector<int> Dims;
    if (UI->readsTidX())
      Dims.push_back(0);
    if (UI->readsTidY())
      Dims.push_back(1);

    const BasicBlock *BBA = A->getParent();
    const BasicBlock *BBB = B->getParent();

    if (!(FA == FB)) {
      // Same linear part, different constant offset: thread pair (i, j)
      // collides only when the coefficients can bridge the offset, i.e.
      // when gcd of the thread-index coefficients divides it. The uniform
      // symbolic terms cancel because they are thread-invariant.
      AffineForm Diff = AffineForm::sub(FA, FB);
      if (Diff.isPureConstant() && Diff.Const != 0) {
        int64_t G = 0;
        for (int D : Dims) {
          int64_t C = D == 0 ? FA.CoefX : FA.CoefY;
          G = std::gcd(G, C < 0 ? -C : C);
        }
        int64_t Delta = Diff.Const < 0 ? -Diff.Const : Diff.Const;
        if (G == 0 || Delta % G != 0)
          return true;
      }
      // Otherwise: safe when, in every observed dimension, the accesses
      // are either pinned to the same thread or provably disjoint because
      // one side is pinned to a constant lane the other side's stride
      // never reaches.
      for (int D : Dims) {
        if (pinnedEqual(BBA, BBB, D))
          continue;
        if (pinnedApart(BBA, FA, FB, D) || pinnedApart(BBB, FB, FA, D))
          continue;
        return false;
      }
      return true;
    }

    // Identical index expressions: address collisions are exactly the
    // thread pairs the expression fails to separate.
    std::vector<int> ZeroFree, NonzeroFree;
    for (int D : Dims) {
      if (pinnedEqual(BBA, BBB, D))
        continue; // This dimension cannot differ between the two threads.
      int64_t Coef = D == 0 ? FA.CoefX : FA.CoefY;
      (Coef == 0 ? ZeroFree : NonzeroFree).push_back(D);
    }
    if (ZeroFree.empty()) {
      if (NonzeroFree.size() <= 1)
        return true;
      // Both x and y vary: assume the usual row-major linearisation
      // (ty*W + tx with blockDim.x <= W), under which the map is
      // injective. Documented in docs/STATIC_ANALYSIS.md.
      int64_t CX = FA.CoefX < 0 ? -FA.CoefX : FA.CoefX;
      int64_t CY = FA.CoefY < 0 ? -FA.CoefY : FA.CoefY;
      int64_t Lo = CX < CY ? CX : CY;
      int64_t Hi = CX < CY ? CY : CX;
      return Hi % Lo == 0 && Hi != Lo;
    }
    // Some unconstrained dimension does not reach the address: threads
    // differing only there share the element. Benign only if every write
    // stores a value that is also invariant in those dimensions.
    for (const Instruction *Acc : {A, B}) {
      const auto *Store = dyn_cast<StoreInst>(Acc);
      if (!Store)
        continue;
      UVal SV = UI->value(Store->getValueOperand());
      if (!SV.isAffine())
        return false;
      for (int D : ZeroFree)
        if ((D == 0 ? SV.form().CoefX : SV.form().CoefY) != 0)
          return false;
    }
    return true;
  }
};

//===----------------------------------------------------------------------===//
// [STATIC-OOB] Provable out-of-bounds / misaligned accesses.
//===----------------------------------------------------------------------===//

class StaticOobPass : public FunctionPass {
public:
  const char *name() const override { return "static-oob"; }

  void run(const Function &F, AnalysisManager &AM,
           std::vector<Finding> &Out) override {
    const RangeInfo &RI = AM.ranges(F);
    for (const AccessSafety &A : analyzeMemSafety(F, RI)) {
      if (A.Verdict != SafetyVerdict::MustOutOfBounds &&
          A.Verdict != SafetyVerdict::MustMisaligned)
        continue;
      // Front-end-synthesised spill traffic carries no source location
      // and never faults (scalar slots are always in bounds).
      if (!A.Access->getDebugLoc().isValid())
        continue;
      Finding Fd;
      Fd.Rule = LintRule::StaticOob;
      Fd.F = &F;
      Fd.Loc = A.Access->getDebugLoc();
      std::ostringstream OS;
      OS << (isa<LoadInst>(A.Access) ? "load" : "store") << " of "
         << A.AccessBytes << " bytes at byte offset " << A.Offset.str();
      if (A.Verdict == SafetyVerdict::MustMisaligned) {
        OS << " is misaligned on every execution";
      } else {
        OS << " is out of bounds";
        const auto *Slot = A.Base ? dyn_cast<AllocaInst>(A.Base) : nullptr;
        if (Slot && Slot->hasName())
          OS << " of '" << Slot->getName() << "'";
        if (A.ObjectBytes >= 0)
          OS << " (" << A.ObjectBytes << " bytes)";
        OS << " on every execution";
      }
      Fd.Message = OS.str();
      Out.push_back(std::move(Fd));
    }
  }
};

//===----------------------------------------------------------------------===//
// [BAR-RED] Redundant barriers.
//===----------------------------------------------------------------------===//

class RedundantBarrierPass : public FunctionPass {
public:
  const char *name() const override { return "redundant-barrier"; }

  void run(const Function &F, AnalysisManager &AM,
           std::vector<Finding> &Out) override {
    // A call to a defined function may touch memory (or barrier) on its
    // own; treat it like an access for both checks.
    auto IsOpaqueCall = [](const Instruction *Inst) {
      const auto *Call = dyn_cast<CallInst>(Inst);
      return Call && Call->getCallee() &&
             !Call->getCallee()->isDeclaration();
    };
    bool AnyMem = false;
    bool AnyCall = false;
    for (BasicBlock *BB : F)
      for (const Instruction *Inst : *BB) {
        AnyMem |= touchesSyncedMemory(Inst);
        AnyCall |= IsOpaqueCall(Inst);
      }
    for (BasicBlock *BB : AM.cfg(F).blocksInReversePostOrder()) {
      // Reset at block entry: a predecessor may reach the block with
      // unordered accesses in flight, so only straight-line runs of
      // barriers inside one block are provably redundant.
      const Instruction *PrevBarrier = nullptr;
      for (const Instruction *Inst : *BB) {
        if (isBarrierCall(*Inst)) {
          if (!AnyMem && !AnyCall) {
            report(Inst, nullptr, F,
                   "__syncthreads in a function with no shared or global "
                   "memory accesses orders nothing",
                   Out);
          } else if (PrevBarrier) {
            report(Inst, PrevBarrier, F,
                   "__syncthreads is redundant: no shared or global "
                   "memory access since the previous barrier",
                   Out);
          }
          PrevBarrier = Inst;
        } else if (touchesSyncedMemory(Inst) || IsOpaqueCall(Inst)) {
          PrevBarrier = nullptr;
        }
      }
    }
  }

private:
  static void report(const Instruction *Barrier, const Instruction *Prev,
                     const Function &F, const char *Message,
                     std::vector<Finding> &Out) {
    Finding Fd;
    Fd.Rule = LintRule::RedundantBarrier;
    Fd.F = &F;
    Fd.Loc = Barrier->getDebugLoc();
    if (Prev)
      Fd.RelatedLoc = Prev->getDebugLoc();
    Fd.Message = Message;
    Out.push_back(std::move(Fd));
  }
};

} // namespace

std::unique_ptr<FunctionPass> createSharedRacePass() {
  return std::make_unique<SharedRacePass>();
}
std::unique_ptr<FunctionPass> createBankConflictPass() {
  return std::make_unique<BankConflictPass>();
}
std::unique_ptr<FunctionPass> createDivergentBranchPass() {
  return std::make_unique<DivergentBranchPass>();
}
std::unique_ptr<FunctionPass> createBarrierDivergencePass() {
  return std::make_unique<BarrierDivergencePass>();
}
std::unique_ptr<FunctionPass> createMemStridePass() {
  return std::make_unique<MemStridePass>();
}
std::unique_ptr<FunctionPass> createStaticOobPass() {
  return std::make_unique<StaticOobPass>();
}
std::unique_ptr<FunctionPass> createRedundantBarrierPass() {
  return std::make_unique<RedundantBarrierPass>();
}

std::vector<Finding> runGpuLint(const Module &M, unsigned RuleMask) {
  PassManager PM;
  if (RuleMask & lintRuleBit(LintRule::SharedRace))
    PM.addPass(createSharedRacePass());
  if (RuleMask & lintRuleBit(LintRule::BankConflict))
    PM.addPass(createBankConflictPass());
  if (RuleMask & lintRuleBit(LintRule::DivergentBranch))
    PM.addPass(createDivergentBranchPass());
  if (RuleMask & lintRuleBit(LintRule::BarrierDivergence))
    PM.addPass(createBarrierDivergencePass());
  if (RuleMask & lintRuleBit(LintRule::MemStride))
    PM.addPass(createMemStridePass());
  if (RuleMask & lintRuleBit(LintRule::StaticOob))
    PM.addPass(createStaticOobPass());
  if (RuleMask & lintRuleBit(LintRule::RedundantBarrier))
    PM.addPass(createRedundantBarrierPass());
  return PM.run(M);
}

} // namespace analysis
} // namespace ir
} // namespace cuadv
