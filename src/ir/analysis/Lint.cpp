//===- ir/analysis/Lint.cpp - GPU lint rules --------------------------------===//
//
// Part of the CUDAAdvisor reproduction project.
//
//===----------------------------------------------------------------------===//

#include "ir/analysis/Lint.h"

#include "ir/Casting.h"
#include "ir/analysis/Dataflow.h"

#include <numeric>
#include <set>
#include <sstream>

namespace cuadv {
namespace ir {
namespace analysis {

const char *lintRuleTag(LintRule Rule) {
  switch (Rule) {
  case LintRule::SharedRace:
    return "SM-RACE";
  case LintRule::BankConflict:
    return "BANK";
  case LintRule::DivergentBranch:
    return "DIV-BR";
  case LintRule::BarrierDivergence:
    return "BAR-DIV";
  case LintRule::MemStride:
    return "MEM-STRIDE";
  }
  return "?";
}

bool parseLintRule(const std::string &Tag, LintRule &Rule) {
  for (LintRule R :
       {LintRule::SharedRace, LintRule::BankConflict,
        LintRule::DivergentBranch, LintRule::BarrierDivergence,
        LintRule::MemStride}) {
    if (Tag == lintRuleTag(R)) {
      Rule = R;
      return true;
    }
  }
  return false;
}

std::string formatFinding(const Module &M, const Finding &F) {
  const Context &Ctx = M.getContext();
  std::ostringstream OS;
  OS << Ctx.fileName(F.Loc.FileId) << ':' << F.Loc.Line << ':' << F.Loc.Col
     << ": [" << lintRuleTag(F.Rule) << "] " << F.Message;
  if (F.F)
    OS << " [function '" << F.F->getName() << "']";
  if (F.RelatedLoc.isValid())
    OS << " (other access at " << Ctx.fileName(F.RelatedLoc.FileId) << ':'
       << F.RelatedLoc.Line << ':' << F.RelatedLoc.Col << ')';
  return OS.str();
}

namespace {

/// Returns the pointer operand if \p Inst is a load or store into the
/// given address space, null otherwise.
const Value *accessPointer(const Instruction *Inst, AddrSpace AS) {
  if (const auto *Load = dyn_cast<LoadInst>(Inst))
    return Load->getAddrSpace() == AS ? Load->getPointerOperand() : nullptr;
  if (const auto *Store = dyn_cast<StoreInst>(Inst))
    return Store->getAddrSpace() == AS ? Store->getPointerOperand() : nullptr;
  return nullptr;
}

//===----------------------------------------------------------------------===//
// [DIV-BR] Divergent conditional branches.
//===----------------------------------------------------------------------===//

class DivergentBranchPass : public FunctionPass {
public:
  const char *name() const override { return "divergent-branch"; }

  void run(const Function &F, AnalysisManager &AM,
           std::vector<Finding> &Out) override {
    const UniformityInfo &UI = AM.uniformity(F);
    for (BasicBlock *BB : AM.cfg(F).blocksInReversePostOrder()) {
      const Instruction *Term = BB->getTerminator();
      if (!Term || !UI.isDivergentBranch(*Term))
        continue;
      Finding Fd;
      Fd.Rule = LintRule::DivergentBranch;
      Fd.F = &F;
      Fd.Loc = Term->getDebugLoc();
      Fd.Message = "conditional branch depends on the thread index; warp "
                   "lanes may take both sides";
      Out.push_back(std::move(Fd));
    }
  }
};

//===----------------------------------------------------------------------===//
// [BAR-DIV] Barriers under divergent control flow.
//===----------------------------------------------------------------------===//

class BarrierDivergencePass : public FunctionPass {
public:
  const char *name() const override { return "barrier-divergence"; }

  void run(const Function &F, AnalysisManager &AM,
           std::vector<Finding> &Out) override {
    const UniformityInfo &UI = AM.uniformity(F);
    for (BasicBlock *BB : AM.cfg(F).blocksInReversePostOrder()) {
      if (!UI.isEntryDivergent() && !UI.isBlockDivergent(BB))
        continue;
      for (const Instruction *Inst : *BB) {
        if (!isBarrierCall(*Inst))
          continue;
        Finding Fd;
        Fd.Rule = LintRule::BarrierDivergence;
        Fd.F = &F;
        Fd.Loc = Inst->getDebugLoc();
        Fd.Message =
            "__syncthreads is reachable only under divergent control flow; "
            "threads that skip it deadlock the CTA";
        Out.push_back(std::move(Fd));
      }
    }
  }
};

//===----------------------------------------------------------------------===//
// [BANK] Shared-memory bank conflicts.
//===----------------------------------------------------------------------===//

class BankConflictPass : public FunctionPass {
public:
  const char *name() const override { return "bank-conflict"; }

  void run(const Function &F, AnalysisManager &AM,
           std::vector<Finding> &Out) override {
    const UniformityInfo &UI = AM.uniformity(F);
    for (BasicBlock *BB : AM.cfg(F).blocksInReversePostOrder()) {
      for (const Instruction *Inst : *BB) {
        const Value *Ptr = accessPointer(Inst, AddrSpace::Shared);
        if (!Ptr)
          continue;
        UVal PV = UI.value(Ptr);
        if (!PV.isAffine())
          continue;
        int64_t ByteStride = PV.form().CoefX;
        // 32 banks of 4-byte words: lanes l and l' collide when
        // (l - l') * wordStride == 0 (mod 32), i.e. gcd(wordStride, 32)
        // lanes land on each bank.
        if (ByteStride == 0 || ByteStride % 4 != 0)
          continue;
        int64_t WordStride = ByteStride / 4;
        int64_t Degree = std::gcd(WordStride < 0 ? -WordStride : WordStride,
                                  int64_t(32));
        if (Degree < 2)
          continue;
        Finding Fd;
        Fd.Rule = LintRule::BankConflict;
        Fd.F = &F;
        Fd.Loc = Inst->getDebugLoc();
        std::ostringstream OS;
        OS << "shared-memory access has a " << Degree
           << "-way bank conflict (lane word stride " << WordStride
           << "); consider padding the row";
        Fd.Message = OS.str();
        Out.push_back(std::move(Fd));
      }
    }
  }
};

//===----------------------------------------------------------------------===//
// [MEM-STRIDE] Uncoalesced global-memory traffic.
//===----------------------------------------------------------------------===//

class MemStridePass : public FunctionPass {
public:
  const char *name() const override { return "mem-stride"; }

  void run(const Function &F, AnalysisManager &AM,
           std::vector<Finding> &Out) override {
    const UniformityInfo &UI = AM.uniformity(F);
    for (BasicBlock *BB : AM.cfg(F).blocksInReversePostOrder()) {
      for (const Instruction *Inst : *BB) {
        if (!accessPointer(Inst, AddrSpace::Global))
          continue;
        MemAccessClass C = UI.classifyAccess(*Inst);
        if (C.Kind != MemAccessKind::Strided &&
            C.Kind != MemAccessKind::Divergent)
          continue;
        Finding Fd;
        Fd.Rule = LintRule::MemStride;
        Fd.F = &F;
        Fd.Loc = Inst->getDebugLoc();
        std::ostringstream OS;
        if (C.Kind == MemAccessKind::Strided)
          OS << "global " << (isa<LoadInst>(Inst) ? "load" : "store")
             << " is strided across lanes (stride " << C.StrideBytes
             << " bytes); accesses will not coalesce";
        else
          OS << "global " << (isa<LoadInst>(Inst) ? "load" : "store")
             << " has a thread-divergent address; accesses may not coalesce";
        Fd.Message = OS.str();
        Out.push_back(std::move(Fd));
      }
    }
  }
};

//===----------------------------------------------------------------------===//
// [SM-RACE] Shared-memory races within one barrier interval.
//===----------------------------------------------------------------------===//

/// Dataflow domain: the set of shared-memory accesses that reach a program
/// point with no intervening __syncthreads (the current barrier interval).
struct BarrierIntervalDomain {
  using State = std::set<const Instruction *>;
  State boundary() const { return {}; }
  State initial() const { return {}; }
  bool join(State &Into, const State &From) const {
    bool Changed = false;
    for (const Instruction *I : From)
      Changed |= Into.insert(I).second;
    return Changed;
  }
  void transfer(const BasicBlock *BB, State &S) const {
    for (const Instruction *Inst : *BB) {
      if (isBarrierCall(*Inst))
        S.clear();
      else if (accessPointer(Inst, AddrSpace::Shared))
        S.insert(Inst);
    }
  }
};

class SharedRacePass : public FunctionPass {
public:
  const char *name() const override { return "shared-race"; }

  void run(const Function &F, AnalysisManager &AM,
           std::vector<Finding> &Out) override {
    bool AnyShared = false;
    for (BasicBlock *BB : F)
      for (const Instruction *Inst : *BB)
        AnyShared |= accessPointer(Inst, AddrSpace::Shared) != nullptr;
    if (!AnyShared)
      return;

    UI = &AM.uniformity(F);
    DT = &AM.domTree(F);
    const CFGInfo &CFG = AM.cfg(F);
    collectPinGuards(CFG);

    auto Result = runForwardDataflow(F, CFG, BarrierIntervalDomain());
    // Every pair examined once, whether it was proven safe or reported;
    // the instruction walk and the parallel-path sweeps below share it.
    std::set<std::pair<const Instruction *, const Instruction *>> Seen;
    for (BasicBlock *BB : CFG.blocksInReversePostOrder()) {
      BarrierIntervalDomain::State S = Result.In.at(BB);
      // Accesses arriving from disjoint predecessor paths (a store in the
      // then-arm, a load in the else-arm) both sit in this block's
      // In-state but neither is ever the scanned instruction for the
      // other, so compare them pairwise where they first co-occur.
      checkParallelPairs(S, Seen, Out, F);
      for (const Instruction *Inst : *BB) {
        if (isBarrierCall(*Inst)) {
          S.clear();
          continue;
        }
        if (!accessPointer(Inst, AddrSpace::Shared))
          continue;
        for (const Instruction *Prev : S)
          checkPair(Prev, Inst, Seen, Out, F);
        checkPair(Inst, Inst, Seen, Out, F);
        S.insert(Inst);
      }
    }
    // Divergent paths that return without re-merging share no In-state;
    // their surviving accesses still execute in one barrier interval.
    BarrierIntervalDomain::State ExitUnion;
    for (BasicBlock *Exit : CFG.exitBlocks()) {
      auto It = Result.Out.find(Exit);
      if (It != Result.Out.end())
        ExitUnion.insert(It->second.begin(), It->second.end());
    }
    checkParallelPairs(ExitUnion, Seen, Out, F);
    PinGuards.clear();
  }

private:
  struct PinGuard {
    const BasicBlock *EqSucc; ///< Block entered only when the guard holds.
    int Dim;                  ///< 0 = threadIdx.x, 1 = threadIdx.y.
    AffineForm Diff;          ///< Normalised lhs - rhs of the comparison.
  };

  const UniformityInfo *UI = nullptr;
  const DominatorTree *DT = nullptr;
  std::vector<PinGuard> PinGuards;

  /// Collects "tid pins": conditional branches on `tid_d == uniform` whose
  /// equality successor has the branch block as its only predecessor. Any
  /// block dominated by that successor executes only in threads with one
  /// specific tid_d value.
  void collectPinGuards(const CFGInfo &CFG) {
    for (BasicBlock *BB : CFG.blocksInReversePostOrder()) {
      const Instruction *Term = BB->getTerminator();
      if (!Term)
        continue;
      const auto *Br = dyn_cast<BranchInst>(Term);
      if (!Br || !Br->isConditional())
        continue;
      const auto *Cmp = dyn_cast<CmpInst>(Br->getCondition());
      if (!Cmp)
        continue;
      BasicBlock *EqSucc = nullptr;
      if (Cmp->getPred() == CmpInst::Pred::EQ)
        EqSucc = Br->getSuccessor(0);
      else if (Cmp->getPred() == CmpInst::Pred::NE)
        EqSucc = Br->getSuccessor(1);
      else
        continue;
      UVal L = UI->value(Cmp->getLHS());
      UVal R = UI->value(Cmp->getRHS());
      if (!L.isAffine() || !R.isAffine())
        continue;
      AffineForm Diff = AffineForm::sub(L.form(), R.form());
      int Dim;
      if (Diff.CoefX != 0 && Diff.CoefY == 0)
        Dim = 0;
      else if (Diff.CoefX == 0 && Diff.CoefY != 0)
        Dim = 1;
      else
        continue;
      int64_t Lead = Dim == 0 ? Diff.CoefX : Diff.CoefY;
      if (Lead < 0)
        Diff = AffineForm::scale(Diff, -1);
      const std::vector<BasicBlock *> &Preds = CFG.predecessors(EqSucc);
      if (Preds.size() != 1 || Preds[0] != BB)
        continue;
      PinGuards.push_back(PinGuard{EqSucc, Dim, std::move(Diff)});
    }
  }

  /// True if both blocks are constrained to the same tid_d value by a
  /// common pin condition.
  bool pinnedEqual(const BasicBlock *A, const BasicBlock *B, int Dim) const {
    for (const PinGuard &GA : PinGuards) {
      if (GA.Dim != Dim ||
          !DT->dominates(const_cast<BasicBlock *>(GA.EqSucc),
                         const_cast<BasicBlock *>(A)))
        continue;
      for (const PinGuard &GB : PinGuards)
        if (GB.Dim == Dim && GA.Diff == GB.Diff &&
            DT->dominates(const_cast<BasicBlock *>(GB.EqSucc),
                          const_cast<BasicBlock *>(B)))
          return true;
    }
    return false;
  }

  /// True if the access in \p PinBB runs only in the thread with a known
  /// constant tid_D, and the other access's index \p FO can only produce
  /// the pinned access's address \p FP for a thread id that is negative
  /// (nonexistent) or that same thread (no cross-thread collision).
  bool pinnedApart(const BasicBlock *PinBB, const AffineForm &FP,
                   const AffineForm &FO, int D) const {
    for (const PinGuard &G : PinGuards) {
      if (G.Dim != D ||
          !DT->dominates(const_cast<BasicBlock *>(G.EqSucc),
                         const_cast<BasicBlock *>(PinBB)))
        continue;
      // Solve the pin k*tid_D + c == 0 for a constant lane id.
      if (!G.Diff.Terms.empty())
        continue;
      int64_t K = D == 0 ? G.Diff.CoefX : G.Diff.CoefY;
      if (K == 0 || G.Diff.Const % K != 0)
        continue;
      int64_t Lane = -G.Diff.Const / K;
      if (Lane < 0)
        continue; // Guard can never hold; the block is dead anyway.
      // Evaluate the pinned index at that lane and compare against FO.
      AffineForm AtLane = FP;
      AtLane.Const += (D == 0 ? AtLane.CoefX : AtLane.CoefY) * Lane;
      (D == 0 ? AtLane.CoefX : AtLane.CoefY) = 0;
      AffineForm D2 = AffineForm::sub(AtLane, FO);
      if (!D2.Terms.empty() || (D == 0 ? D2.CoefY : D2.CoefX) != 0)
        continue;
      int64_t Stride = -(D == 0 ? D2.CoefX : D2.CoefY);
      if (Stride == 0) {
        if (D2.Const != 0)
          return true; // Addresses constant and distinct.
        continue;
      }
      if (D2.Const % Stride != 0)
        return true; // The stride never lands on the pinned address.
      int64_t Collide = D2.Const / Stride;
      if (Collide < 0 || Collide == Lane)
        return true; // Nonexistent thread, or the pinned thread itself.
    }
    return false;
  }

  /// True if warps can be split between threads executing \p Acc and
  /// threads elsewhere: the access's block lies in the influence region
  /// of a divergent branch, or the whole function may be entered by a
  /// partial warp.
  bool mayRunWithPartialWarp(const Instruction *Acc) const {
    return UI->isEntryDivergent() || UI->isBlockDivergent(Acc->getParent());
  }

  /// Compares accesses on parallel paths (neither reaches the other).
  /// Such a pair only executes concurrently when a divergent branch
  /// splits the warp between the two blocks — under a uniform branch the
  /// whole CTA picks one arm, so the accesses are mutually exclusive and
  /// flagging them would be a false positive.
  void checkParallelPairs(
      const BarrierIntervalDomain::State &S,
      std::set<std::pair<const Instruction *, const Instruction *>> &Seen,
      std::vector<Finding> &Out, const Function &F) {
    for (auto IA = S.begin(); IA != S.end(); ++IA) {
      if (!mayRunWithPartialWarp(*IA))
        continue;
      for (auto IB = std::next(IA); IB != S.end(); ++IB)
        if (mayRunWithPartialWarp(*IB))
          checkPair(*IA, *IB, Seen, Out, F);
    }
  }

  void checkPair(
      const Instruction *A, const Instruction *B,
      std::set<std::pair<const Instruction *, const Instruction *>> &Seen,
      std::vector<Finding> &Out, const Function &F) {
    bool AWrite = isa<StoreInst>(A);
    bool BWrite = isa<StoreInst>(B);
    if (!AWrite && !BWrite)
      return;
    const Value *BaseA = pointerBase(accessPointer(A, AddrSpace::Shared));
    const Value *BaseB = pointerBase(accessPointer(B, AddrSpace::Shared));
    // Shared storage in MiniCUDA is always a kernel-level alloca; distinct
    // allocas never alias.
    if (BaseA != BaseB)
      return;
    // The safety proof depends only on the pair itself (index forms and
    // the blocks the accesses sit in), so one verdict per pair suffices
    // no matter how many program points expose the pair.
    std::pair<const Instruction *, const Instruction *> Key =
        A < B ? std::make_pair(A, B) : std::make_pair(B, A);
    if (!Seen.insert(Key).second)
      return;
    if (pairSafe(A, B))
      return;
    Finding Fd;
    Fd.Rule = LintRule::SharedRace;
    Fd.F = &F;
    // Anchor the finding at a write; the other access is "related".
    const Instruction *Primary = BWrite ? B : A;
    const Instruction *Other = Primary == B ? A : B;
    Fd.Loc = Primary->getDebugLoc();
    if (Other != Primary)
      Fd.RelatedLoc = Other->getDebugLoc();
    std::ostringstream OS;
    const auto *Slot = dyn_cast<AllocaInst>(BaseA);
    OS << "possible shared-memory race on '"
       << (Slot && Slot->hasName() ? Slot->getName() : std::string("shared"))
       << "': " << (AWrite ? "write" : "read") << " and "
       << (BWrite ? "write" : "read")
       << " in the same barrier interval may touch the same element from "
          "different threads";
    Fd.Message = OS.str();
    Out.push_back(std::move(Fd));
  }

  /// Proves a pair of same-array accesses safe, or returns false (race).
  bool pairSafe(const Instruction *A, const Instruction *B) const {
    UVal VA = UI->value(accessPointer(A, AddrSpace::Shared));
    UVal VB = UI->value(accessPointer(B, AddrSpace::Shared));
    if (!VA.isAffine() || !VB.isAffine())
      return false;
    const AffineForm &FA = VA.form();
    const AffineForm &FB = VB.form();

    std::vector<int> Dims;
    if (UI->readsTidX())
      Dims.push_back(0);
    if (UI->readsTidY())
      Dims.push_back(1);

    const BasicBlock *BBA = A->getParent();
    const BasicBlock *BBB = B->getParent();

    if (!(FA == FB)) {
      // Same linear part, different constant offset: thread pair (i, j)
      // collides only when the coefficients can bridge the offset, i.e.
      // when gcd of the thread-index coefficients divides it. The uniform
      // symbolic terms cancel because they are thread-invariant.
      AffineForm Diff = AffineForm::sub(FA, FB);
      if (Diff.isPureConstant() && Diff.Const != 0) {
        int64_t G = 0;
        for (int D : Dims) {
          int64_t C = D == 0 ? FA.CoefX : FA.CoefY;
          G = std::gcd(G, C < 0 ? -C : C);
        }
        int64_t Delta = Diff.Const < 0 ? -Diff.Const : Diff.Const;
        if (G == 0 || Delta % G != 0)
          return true;
      }
      // Otherwise: safe when, in every observed dimension, the accesses
      // are either pinned to the same thread or provably disjoint because
      // one side is pinned to a constant lane the other side's stride
      // never reaches.
      for (int D : Dims) {
        if (pinnedEqual(BBA, BBB, D))
          continue;
        if (pinnedApart(BBA, FA, FB, D) || pinnedApart(BBB, FB, FA, D))
          continue;
        return false;
      }
      return true;
    }

    // Identical index expressions: address collisions are exactly the
    // thread pairs the expression fails to separate.
    std::vector<int> ZeroFree, NonzeroFree;
    for (int D : Dims) {
      if (pinnedEqual(BBA, BBB, D))
        continue; // This dimension cannot differ between the two threads.
      int64_t Coef = D == 0 ? FA.CoefX : FA.CoefY;
      (Coef == 0 ? ZeroFree : NonzeroFree).push_back(D);
    }
    if (ZeroFree.empty()) {
      if (NonzeroFree.size() <= 1)
        return true;
      // Both x and y vary: assume the usual row-major linearisation
      // (ty*W + tx with blockDim.x <= W), under which the map is
      // injective. Documented in docs/STATIC_ANALYSIS.md.
      int64_t CX = FA.CoefX < 0 ? -FA.CoefX : FA.CoefX;
      int64_t CY = FA.CoefY < 0 ? -FA.CoefY : FA.CoefY;
      int64_t Lo = CX < CY ? CX : CY;
      int64_t Hi = CX < CY ? CY : CX;
      return Hi % Lo == 0 && Hi != Lo;
    }
    // Some unconstrained dimension does not reach the address: threads
    // differing only there share the element. Benign only if every write
    // stores a value that is also invariant in those dimensions.
    for (const Instruction *Acc : {A, B}) {
      const auto *Store = dyn_cast<StoreInst>(Acc);
      if (!Store)
        continue;
      UVal SV = UI->value(Store->getValueOperand());
      if (!SV.isAffine())
        return false;
      for (int D : ZeroFree)
        if ((D == 0 ? SV.form().CoefX : SV.form().CoefY) != 0)
          return false;
    }
    return true;
  }
};

} // namespace

std::unique_ptr<FunctionPass> createSharedRacePass() {
  return std::make_unique<SharedRacePass>();
}
std::unique_ptr<FunctionPass> createBankConflictPass() {
  return std::make_unique<BankConflictPass>();
}
std::unique_ptr<FunctionPass> createDivergentBranchPass() {
  return std::make_unique<DivergentBranchPass>();
}
std::unique_ptr<FunctionPass> createBarrierDivergencePass() {
  return std::make_unique<BarrierDivergencePass>();
}
std::unique_ptr<FunctionPass> createMemStridePass() {
  return std::make_unique<MemStridePass>();
}

std::vector<Finding> runGpuLint(const Module &M, unsigned RuleMask) {
  PassManager PM;
  if (RuleMask & lintRuleBit(LintRule::SharedRace))
    PM.addPass(createSharedRacePass());
  if (RuleMask & lintRuleBit(LintRule::BankConflict))
    PM.addPass(createBankConflictPass());
  if (RuleMask & lintRuleBit(LintRule::DivergentBranch))
    PM.addPass(createDivergentBranchPass());
  if (RuleMask & lintRuleBit(LintRule::BarrierDivergence))
    PM.addPass(createBarrierDivergencePass());
  if (RuleMask & lintRuleBit(LintRule::MemStride))
    PM.addPass(createMemStridePass());
  return PM.run(M);
}

} // namespace analysis
} // namespace ir
} // namespace cuadv
