//===- ir/analysis/TripCount.h - Loop trip-count inference --------*- C++ -*-===//
//
// Part of the CUDAAdvisor reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Natural-loop discovery and trip-count inference over MiniCUDA IR. The
/// -O0 front-end lowers every `for`/`while` into the canonical shape
///
///   header:  %i = load Local slot ; %c = cmp REL %i, bound ; br %c, body,
///            exit
///   body..latch: ... store (add %i', step), slot ; br header
///
/// so a *counted loop* is recognised by (a) a back edge whose header
/// guards on a comparison of a scalar Local slot against a bound and
/// (b) exactly one in-loop store to that slot, of the slot's value plus
/// a constant step. The trip count — the number of body executions — is
/// then an interval computed from the slot's initial range at the
/// preheader, the bound's range, and the step, all supplied by the
/// symbolic range engine (Range.h). Loops that do not match stay with
/// Trip = [0, +inf].
///
/// The trip interval over-approximates: zero-trip loops (init already
/// fails the guard) report Trip.Lo == 0, divergent bounds (`i < tid`)
/// are flagged so per-thread counts may differ, and non-unit steps
/// divide through by |step|.
///
//===----------------------------------------------------------------------===//

#ifndef CUADV_IR_ANALYSIS_TRIPCOUNT_H
#define CUADV_IR_ANALYSIS_TRIPCOUNT_H

#include "ir/DebugLoc.h"
#include "ir/analysis/Range.h"

#include <unordered_set>
#include <vector>

namespace cuadv {
namespace ir {

class CFGInfo;
class DominatorTree;

namespace analysis {

class UniformityInfo;

/// One natural loop and (when recognised) its counted-loop facts.
struct LoopTripCount {
  const BasicBlock *Header = nullptr;
  /// All blocks of the natural loop, header included.
  std::unordered_set<const BasicBlock *> Blocks;
  /// True when the counted-loop pattern matched and Trip is meaningful
  /// beyond the trivial [0, +inf].
  bool Counted = false;
  /// The Local alloca slot acting as the counter (null if !Counted).
  const Value *CounterSlot = nullptr;
  /// The guard bound operand (null if !Counted).
  const Value *Bound = nullptr;
  /// Signed counter step per iteration (0 if !Counted).
  int64_t Step = 0;
  /// Interval of body-execution counts.
  Interval Trip = Interval::make(0, Interval::PosInf);
  /// True when the guard bound is not provably CTA-uniform: threads of a
  /// warp may run different trip counts (e.g. `for (i = 0; i < tid; ...)`).
  bool DivergentBound = false;
  /// Source location of the header's guard branch.
  DebugLoc Loc;

  bool contains(const BasicBlock *BB) const { return Blocks.count(BB) != 0; }
};

/// Discovers the natural loops of \p F (one entry per header; multiple
/// back edges to one header merge) and infers trip counts from \p RI.
/// \p UI, when non-null, supplies the divergent-bound flag.
std::vector<LoopTripCount> findLoops(const Function &F, const CFGInfo &CFG,
                                     const DominatorTree &DT,
                                     const RangeInfo &RI,
                                     const UniformityInfo *UI);

/// The innermost (fewest-blocks) loop in \p Loops containing \p BB, or
/// null.
const LoopTripCount *innermostLoopFor(const std::vector<LoopTripCount> &Loops,
                                      const BasicBlock *BB);

} // namespace analysis
} // namespace ir
} // namespace cuadv

#endif // CUADV_IR_ANALYSIS_TRIPCOUNT_H
