//===- ir/analysis/Range.h - Symbolic value-range analysis --------*- C++ -*-===//
//
// Part of the CUDAAdvisor reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Interprocedural integer value-range inference over MiniCUDA IR: an
/// interval lattice with widening/narrowing over the CFG, layered on the
/// same entry-block-alloca dataflow the uniformity analysis walks. Two
/// ingredients beyond the textbook analysis:
///
///  - Launch facts. A kernel analysed under a known launch configuration
///    seeds the thread/geometry intrinsics with exact bounds
///    (threadIdx.x in [0, blockDim.x-1], blockDim.x a constant, ...) and
///    scalar kernel arguments with their launched values; without facts,
///    the hardware limits apply (blockDim <= 1024, grid < 2^31).
///
///  - Pointer offsets. Pointer-typed values are tracked as *byte offsets
///    relative to their underlying base* (see pointerBase): allocas and
///    pointer arguments sit at offset 0, a GEP adds index * elemsize.
///    The memory-safety layer compares these offset intervals against
///    allocation sizes.
///
/// Conditional branches refine: on an edge guarded by `i < n`, the
/// target's interval (and, for loads of a local slot, the slot itself)
/// is met with the bound derived from the other operand, scoped by
/// dominance. This is what turns `for (i = 0; i < n; ++i)` into
/// i in [0, n-1] inside the body — the substrate for trip counts
/// (TripCount.h) and static out-of-bounds proofs (MemSafety.h).
///
/// Claims are conservative: an interval always over-approximates the set
/// of values a thread may observe; only "provably in bounds" style
/// conclusions rely on it and those are checked against the dynamic trap
/// model by the differential safety oracle.
///
//===----------------------------------------------------------------------===//

#ifndef CUADV_IR_ANALYSIS_RANGE_H
#define CUADV_IR_ANALYSIS_RANGE_H

#include "ir/Module.h"

#include <cstdint>
#include <string>
#include <unordered_map>

namespace cuadv {
namespace ir {
namespace analysis {

/// A (possibly unbounded) closed integer interval [Lo, Hi]. The sentinel
/// values NegInf/PosInf denote open ends; Lo > Hi denotes the empty
/// interval (bottom — an unreachable or not-yet-computed value).
struct Interval {
  static constexpr int64_t NegInf = INT64_MIN;
  static constexpr int64_t PosInf = INT64_MAX;

  int64_t Lo = 1;
  int64_t Hi = 0;

  static Interval empty() { return {}; }
  static Interval full() { return {NegInf, PosInf}; }
  static Interval constant(int64_t C) { return {C, C}; }
  static Interval make(int64_t Lo, int64_t Hi) { return {Lo, Hi}; }
  /// [Lo, +inf).
  static Interval atLeast(int64_t Lo) { return {Lo, PosInf}; }
  /// (-inf, Hi].
  static Interval atMost(int64_t Hi) { return {NegInf, Hi}; }

  bool isEmpty() const { return Lo > Hi; }
  bool isFull() const { return Lo == NegInf && Hi == PosInf; }
  bool isConstant() const { return Lo == Hi; }
  bool hasLo() const { return !isEmpty() && Lo != NegInf; }
  bool hasHi() const { return !isEmpty() && Hi != PosInf; }
  bool isFinite() const { return hasLo() && hasHi(); }
  bool contains(int64_t V) const { return !isEmpty() && Lo <= V && V <= Hi; }

  bool operator==(const Interval &O) const {
    return (isEmpty() && O.isEmpty()) || (Lo == O.Lo && Hi == O.Hi);
  }
  bool operator!=(const Interval &O) const { return !(*this == O); }

  /// Least upper bound (interval hull).
  static Interval join(const Interval &A, const Interval &B);
  /// Greatest lower bound (intersection; may be empty).
  static Interval meet(const Interval &A, const Interval &B);
  /// Standard interval widening: a bound that grew jumps to infinity.
  static Interval widen(const Interval &Old, const Interval &New);
  /// Standard interval narrowing: only infinite bounds of \p Old are
  /// refined by \p New, so a descending iteration stays sound.
  static Interval narrow(const Interval &Old, const Interval &New);

  /// \name Abstract arithmetic. Any bound computation that would
  /// overflow int64 conservatively falls back to an open end.
  /// @{
  static Interval add(const Interval &A, const Interval &B);
  static Interval sub(const Interval &A, const Interval &B);
  static Interval mul(const Interval &A, const Interval &B);
  static Interval sdiv(const Interval &A, const Interval &B);
  static Interval srem(const Interval &A, const Interval &B);
  static Interval shl(const Interval &A, const Interval &B);
  static Interval ashr(const Interval &A, const Interval &B);
  static Interval bitAnd(const Interval &A, const Interval &B);
  static Interval bitOrXor(const Interval &A, const Interval &B);
  /// @}

  /// Renders "[lo, hi]" with "-inf"/"+inf" for open ends and "empty" for
  /// bottom (used in lint messages; deterministic).
  std::string str() const;
};

/// Ground facts about one kernel's launch, used to seed the analysis.
/// All fields are optional; negative dimensions mean "unknown".
struct LaunchFacts {
  int64_t BlockX = -1;
  int64_t BlockY = -1;
  int64_t GridX = -1;
  int64_t GridY = -1;
  /// Known launched values of scalar integer arguments, by index.
  std::unordered_map<unsigned, int64_t> ArgValues;
  /// Bytes addressable from the pointer passed for each pointer
  /// argument (allocation size minus the pointer's offset into it).
  std::unordered_map<unsigned, uint64_t> ArgAllocBytes;
};

/// Results of the range analysis for one function.
class RangeInfo {
public:
  /// The interval computed for \p V. Constants evaluate directly;
  /// values the analysis never reached are empty (bottom). For
  /// pointer-typed values the interval is the byte offset relative to
  /// the value's pointerBase.
  Interval range(const Value *V) const;

  /// The interval a Local alloca slot holds on exit from \p BB
  /// (constant 0 when no store reached the slot — locals are
  /// zero-filled; empty for unanalysed blocks).
  Interval exitSlotRange(const BasicBlock *BB, const Value *Slot) const;

  /// The launch facts this function was analysed under.
  const LaunchFacts &facts() const { return Facts; }

private:
  friend class RangeDriver;

  const Function *F = nullptr;
  LaunchFacts Facts;
  std::unordered_map<const Value *, Interval> Values;
  std::unordered_map<const BasicBlock *,
                     std::unordered_map<const Value *, Interval>>
      ExitSlots;
};

/// Module-wide range analysis: kernels are seeded from their launch
/// facts (hardware limits when absent), device functions from the join
/// of the ranges their call sites pass in, with bottom-up return-range
/// summaries — mirroring the uniformity driver's structure.
class ModuleRanges {
public:
  /// Analyse without launch facts (pure static: hardware limits only).
  explicit ModuleRanges(const Module &M);
  /// Analyse with per-kernel launch facts, keyed by kernel name.
  ModuleRanges(const Module &M,
               const std::unordered_map<std::string, LaunchFacts> &KernelFacts);

  /// Per-function results. \p F must be a definition in the analysed
  /// module.
  const RangeInfo &info(const Function &F) const;

private:
  std::unordered_map<const Function *, RangeInfo> Infos;
};

} // namespace analysis
} // namespace ir
} // namespace cuadv

#endif // CUADV_IR_ANALYSIS_RANGE_H
