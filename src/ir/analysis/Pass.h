//===- ir/analysis/Pass.h - Function passes and analysis caching --*- C++ -*-===//
//
// Part of the CUDAAdvisor reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The static-analysis pass infrastructure: an AnalysisManager that lazily
/// computes and caches the per-function structural analyses (CFG, dominator
/// and post-dominator trees) plus the module-wide uniformity analysis, a
/// FunctionPass interface for diagnostic passes, and a PassManager that
/// runs passes over every defined function of a module. This is the static
/// counterpart of the runtime profiling pipeline: the same IR the
/// instrumentation engine rewrites is analysed here before any simulated
/// execution is paid for.
///
//===----------------------------------------------------------------------===//

#ifndef CUADV_IR_ANALYSIS_PASS_H
#define CUADV_IR_ANALYSIS_PASS_H

#include "ir/Dominators.h"
#include "ir/Module.h"
#include "ir/analysis/TripCount.h"
#include "ir/analysis/Uniformity.h"

#include <memory>
#include <unordered_map>
#include <vector>

namespace cuadv {
namespace ir {
namespace analysis {

struct Finding;

/// Lazily computes and caches analyses over one module. All results are
/// snapshots: any IR mutation invalidates the manager (call invalidate()
/// or build a fresh one).
class AnalysisManager {
public:
  explicit AnalysisManager(const Module &M) : M(M) {}

  const Module &getModule() const { return M; }

  /// CFG snapshot for \p F.
  const CFGInfo &cfg(const Function &F);

  /// Dominator tree for \p F.
  const DominatorTree &domTree(const Function &F);

  /// Post-dominator tree for \p F (relies on the verifier's single-return
  /// guarantee for definitions).
  const DominatorTree &postDomTree(const Function &F);

  /// The module-wide uniformity analysis (computed once, on first use).
  const ModuleUniformity &uniformity();

  /// Per-function view of the uniformity analysis.
  const UniformityInfo &uniformity(const Function &F);

  /// The module-wide symbolic range analysis (pure static: hardware
  /// limits, no launch facts), computed once on first use.
  const ModuleRanges &ranges();

  /// Per-function view of the range analysis.
  const RangeInfo &ranges(const Function &F);

  /// Natural loops of \p F with trip counts inferred from the range
  /// analysis and divergent-bound flags from the uniformity analysis.
  const std::vector<LoopTripCount> &loops(const Function &F);

  /// Drops all cached results.
  void invalidate();

private:
  const Module &M;
  std::unordered_map<const Function *, std::unique_ptr<CFGInfo>> CFGs;
  std::unordered_map<const Function *, std::unique_ptr<DominatorTree>> Doms;
  std::unordered_map<const Function *, std::unique_ptr<DominatorTree>>
      PostDoms;
  std::unique_ptr<ModuleUniformity> Uniformity;
  std::unique_ptr<ModuleRanges> Ranges;
  std::unordered_map<const Function *, std::vector<LoopTripCount>> Loops;
};

/// A diagnostic pass over one function. Passes are stateless between
/// functions; findings are appended to the shared output list.
class FunctionPass {
public:
  virtual ~FunctionPass();

  /// Short stable identifier, e.g. "shared-race".
  virtual const char *name() const = 0;

  /// Analyses \p F, appending any findings to \p Out.
  virtual void run(const Function &F, AnalysisManager &AM,
                   std::vector<Finding> &Out) = 0;
};

/// Runs a sequence of FunctionPasses over every defined function of a
/// module, sharing one AnalysisManager so structural analyses are computed
/// once per function.
class PassManager {
public:
  void addPass(std::unique_ptr<FunctionPass> Pass) {
    Passes.push_back(std::move(Pass));
  }
  size_t numPasses() const { return Passes.size(); }

  /// Runs all passes over \p M. Findings are returned sorted by source
  /// location (file id, line, column), then rule.
  std::vector<Finding> run(const Module &M);

private:
  std::vector<std::unique_ptr<FunctionPass>> Passes;
};

} // namespace analysis
} // namespace ir
} // namespace cuadv

#endif // CUADV_IR_ANALYSIS_PASS_H
