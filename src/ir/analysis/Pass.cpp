//===- ir/analysis/Pass.cpp - Function passes and analysis caching ----------===//
//
// Part of the CUDAAdvisor reproduction project.
//
//===----------------------------------------------------------------------===//

#include "ir/analysis/Pass.h"

#include "ir/analysis/Lint.h"

#include <algorithm>
#include <tuple>

namespace cuadv {
namespace ir {
namespace analysis {

const CFGInfo &AnalysisManager::cfg(const Function &F) {
  auto It = CFGs.find(&F);
  if (It == CFGs.end())
    It = CFGs.emplace(&F, std::make_unique<CFGInfo>(F)).first;
  return *It->second;
}

const DominatorTree &AnalysisManager::domTree(const Function &F) {
  auto It = Doms.find(&F);
  if (It == Doms.end())
    It = Doms.emplace(&F, std::make_unique<DominatorTree>(F, cfg(F), false))
             .first;
  return *It->second;
}

const DominatorTree &AnalysisManager::postDomTree(const Function &F) {
  auto It = PostDoms.find(&F);
  if (It == PostDoms.end())
    It = PostDoms
             .emplace(&F, std::make_unique<DominatorTree>(F, cfg(F), true))
             .first;
  return *It->second;
}

const ModuleUniformity &AnalysisManager::uniformity() {
  if (!Uniformity)
    Uniformity = std::make_unique<ModuleUniformity>(M);
  return *Uniformity;
}

const UniformityInfo &AnalysisManager::uniformity(const Function &F) {
  return uniformity().info(F);
}

const ModuleRanges &AnalysisManager::ranges() {
  if (!Ranges)
    Ranges = std::make_unique<ModuleRanges>(M);
  return *Ranges;
}

const RangeInfo &AnalysisManager::ranges(const Function &F) {
  return ranges().info(F);
}

const std::vector<LoopTripCount> &AnalysisManager::loops(const Function &F) {
  auto It = Loops.find(&F);
  if (It == Loops.end())
    It = Loops
             .emplace(&F, findLoops(F, cfg(F), domTree(F), ranges(F),
                                    &uniformity(F)))
             .first;
  return It->second;
}

void AnalysisManager::invalidate() {
  CFGs.clear();
  Doms.clear();
  PostDoms.clear();
  Uniformity.reset();
  Ranges.reset();
  Loops.clear();
}

FunctionPass::~FunctionPass() = default;

std::vector<Finding> PassManager::run(const Module &M) {
  AnalysisManager AM(M);
  std::vector<Finding> Findings;
  for (Function *F : M) {
    if (F->isDeclaration())
      continue;
    for (auto &Pass : Passes)
      Pass->run(*F, AM, Findings);
  }
  std::stable_sort(Findings.begin(), Findings.end(),
                   [](const Finding &A, const Finding &B) {
                     return std::make_tuple(A.Loc.FileId, A.Loc.Line,
                                            A.Loc.Col,
                                            static_cast<unsigned>(A.Rule),
                                            A.Message) <
                            std::make_tuple(B.Loc.FileId, B.Loc.Line,
                                            B.Loc.Col,
                                            static_cast<unsigned>(B.Rule),
                                            B.Message);
                   });
  return Findings;
}

} // namespace analysis
} // namespace ir
} // namespace cuadv
