//===- ir/analysis/MemSafety.cpp - Static memory-safety proofs --------------===//
//
// Part of the CUDAAdvisor reproduction project.
//
//===----------------------------------------------------------------------===//

#include "ir/analysis/MemSafety.h"

#include "ir/Casting.h"
#include "ir/analysis/Uniformity.h"

#include <numeric>
#include <unordered_set>

namespace cuadv {
namespace ir {
namespace analysis {

const char *safetyVerdictName(SafetyVerdict V) {
  switch (V) {
  case SafetyVerdict::ProvablySafe:
    return "provably-safe";
  case SafetyVerdict::MayOutOfBounds:
    return "may-out-of-bounds";
  case SafetyVerdict::MustOutOfBounds:
    return "must-out-of-bounds";
  case SafetyVerdict::MustMisaligned:
    return "must-misaligned";
  }
  return "?";
}

namespace {

/// Alignment every base object (device allocation, shared/local array)
/// is assumed to carry. Pointer arithmetic in MiniCUDA is typed, so
/// derived pointers stay element-aligned; only casts can break this.
constexpr int64_t BaseAlignBytes = 16;

const AllocaInst *pointerSlot(const Value *Ptr) {
  const auto *Slot = dyn_cast<AllocaInst>(pointerBase(Ptr));
  if (Slot && Slot->getAddrSpace() == AddrSpace::Local &&
      Slot->getArrayCount() == 1 &&
      Slot->getAllocatedType()->isPointer())
    return Slot;
  return nullptr;
}

const Value *resolveImpl(const Value *Ptr, const Function &F,
                         std::unordered_set<const Value *> &Visiting) {
  while (true) {
    if (const auto *G = dyn_cast<GEPInst>(Ptr)) {
      Ptr = G->getPointerOperand();
      continue;
    }
    if (const auto *C = dyn_cast<CastInst>(Ptr)) {
      if (C->getOp() == CastInst::Op::PtrCast) {
        Ptr = C->getOperand(0);
        continue;
      }
    }
    break;
  }
  if (isa<AllocaInst>(Ptr))
    return Ptr;
  if (const auto *Arg = dyn_cast<Argument>(Ptr))
    return Arg->getType()->isPointer() ? Arg : nullptr;
  if (const auto *Load = dyn_cast<LoadInst>(Ptr)) {
    // A reload of a spilled pointer variable: resolves when every store
    // to the slot carries the same base.
    const AllocaInst *Slot = pointerSlot(Load->getPointerOperand());
    if (!Slot || !Visiting.insert(Slot).second)
      return nullptr;
    const Value *Base = nullptr;
    for (const BasicBlock *BB : F)
      for (const Instruction *Inst : *BB) {
        const auto *Store = dyn_cast<StoreInst>(Inst);
        if (!Store ||
            dyn_cast<AllocaInst>(pointerBase(Store->getPointerOperand())) !=
                Slot)
          continue;
        const Value *B = resolveImpl(Store->getValueOperand(), F, Visiting);
        if (!B || (Base && B != Base))
          return nullptr;
        Base = B;
      }
    return Base;
  }
  return nullptr;
}

/// Provable alignment of the byte address \p Ptr denotes (gcd of the
/// base alignment and every GEP element contribution); 1 when unknown.
int64_t provableAlignment(const Value *Ptr, const Function &F,
                          std::unordered_set<const Value *> &Visiting) {
  int64_t Align = BaseAlignBytes;
  while (true) {
    if (const auto *G = dyn_cast<GEPInst>(Ptr)) {
      int64_t Elem =
          G->getPointerOperand()->getType()->getPointee()->sizeInBytes();
      Align = std::gcd(Align, Elem > 0 ? Elem : 1);
      Ptr = G->getPointerOperand();
      continue;
    }
    if (const auto *C = dyn_cast<CastInst>(Ptr)) {
      if (C->getOp() == CastInst::Op::PtrCast) {
        Ptr = C->getOperand(0);
        continue;
      }
    }
    break;
  }
  if (isa<AllocaInst>(Ptr) || isa<Argument>(Ptr))
    return Align;
  if (const auto *Load = dyn_cast<LoadInst>(Ptr)) {
    const AllocaInst *Slot = pointerSlot(Load->getPointerOperand());
    if (!Slot || !Visiting.insert(Slot).second)
      return 1;
    int64_t Stored = 0;
    for (const BasicBlock *BB : F)
      for (const Instruction *Inst : *BB) {
        const auto *Store = dyn_cast<StoreInst>(Inst);
        if (!Store ||
            dyn_cast<AllocaInst>(pointerBase(Store->getPointerOperand())) !=
                Slot)
          continue;
        int64_t A =
            provableAlignment(Store->getValueOperand(), F, Visiting);
        Stored = Stored == 0 ? A : std::gcd(Stored, A);
      }
    return std::gcd(Align, Stored == 0 ? 1 : Stored);
  }
  return 1;
}

} // namespace

const Value *resolveBaseObject(const Value *Ptr, const Function &F) {
  std::unordered_set<const Value *> Visiting;
  return resolveImpl(Ptr, F, Visiting);
}

std::vector<AccessSafety> analyzeMemSafety(const Function &F,
                                           const RangeInfo &RI) {
  std::vector<AccessSafety> Out;
  for (const BasicBlock *BB : F) {
    for (const Instruction *Inst : *BB) {
      const Value *Ptr = nullptr;
      unsigned Bytes = 0;
      AddrSpace AS = AddrSpace::Generic;
      if (const auto *Load = dyn_cast<LoadInst>(Inst)) {
        Ptr = Load->getPointerOperand();
        Bytes = Load->getType()->sizeInBytes();
        AS = Load->getAddrSpace();
      } else if (const auto *Store = dyn_cast<StoreInst>(Inst)) {
        Ptr = Store->getPointerOperand();
        Bytes = Store->getValueOperand()->getType()->sizeInBytes();
        AS = Store->getAddrSpace();
      } else {
        continue;
      }

      AccessSafety A;
      A.Access = Inst;
      A.AS = AS;
      A.AccessBytes = Bytes == 0 ? 1 : Bytes;
      A.Base = resolveBaseObject(Ptr, F);
      A.Offset = RI.range(Ptr);

      if (A.Base) {
        if (const auto *AI = dyn_cast<AllocaInst>(A.Base)) {
          A.ObjectBytes = static_cast<int64_t>(AI->allocationBytes());
        } else if (const auto *Arg = dyn_cast<Argument>(A.Base)) {
          auto It = RI.facts().ArgAllocBytes.find(Arg->getIndex());
          if (It != RI.facts().ArgAllocBytes.end())
            A.ObjectBytes = static_cast<int64_t>(It->second);
        }
      }

      // Classification. Must-claims first: an access entirely past the
      // end (or before the start) of a known object faults on every
      // execution, as does a constant misaligned offset.
      const Interval &O = A.Offset;
      bool EntirelyOut = false;
      if (A.ObjectBytes >= 0 && !O.isEmpty()) {
        if (O.hasLo() &&
            static_cast<__int128>(O.Lo) + A.AccessBytes > A.ObjectBytes)
          EntirelyOut = true;
        if (O.hasHi() && O.Hi < 0)
          EntirelyOut = true;
      }
      if (EntirelyOut) {
        A.Verdict = SafetyVerdict::MustOutOfBounds;
      } else if (!O.isEmpty() && O.isConstant() &&
                 ((O.Lo % A.AccessBytes) + A.AccessBytes) % A.AccessBytes !=
                     0) {
        A.Verdict = SafetyVerdict::MustMisaligned;
      } else if (A.ObjectBytes >= 0 && O.isFinite() && O.Lo >= 0 &&
                 static_cast<__int128>(O.Hi) + A.AccessBytes <=
                     A.ObjectBytes) {
        std::unordered_set<const Value *> Visiting;
        int64_t Align = provableAlignment(Ptr, F, Visiting);
        A.Verdict = (Align % A.AccessBytes == 0)
                        ? SafetyVerdict::ProvablySafe
                        : SafetyVerdict::MayOutOfBounds;
      } else {
        A.Verdict = SafetyVerdict::MayOutOfBounds;
      }
      Out.push_back(A);
    }
  }
  return Out;
}

} // namespace analysis
} // namespace ir
} // namespace cuadv
