//===- ir/analysis/TripCount.cpp - Loop trip-count inference ----------------===//
//
// Part of the CUDAAdvisor reproduction project.
//
//===----------------------------------------------------------------------===//

#include "ir/analysis/TripCount.h"

#include "ir/Casting.h"
#include "ir/Dominators.h"
#include "ir/analysis/Uniformity.h"

#include <algorithm>
#include <deque>

namespace cuadv {
namespace ir {
namespace analysis {

namespace {

/// Strips value-preserving integer casts.
const Value *stripCasts(const Value *V) {
  while (const auto *C = dyn_cast<CastInst>(V)) {
    switch (C->getOp()) {
    case CastInst::Op::SExt:
    case CastInst::Op::ZExt:
    case CastInst::Op::Trunc:
      V = C->getOperand(0);
      continue;
    default:
      return V;
    }
  }
  return V;
}

/// The scalar Local slot behind \p V when it is (modulo casts) a load of
/// one; null otherwise.
const AllocaInst *loadedSlot(const Value *V) {
  const auto *Load = dyn_cast<LoadInst>(stripCasts(V));
  if (!Load)
    return nullptr;
  const auto *Slot = dyn_cast<AllocaInst>(pointerBase(Load->getPointerOperand()));
  if (Slot && Slot->getAddrSpace() == AddrSpace::Local &&
      Slot->getArrayCount() == 1)
    return Slot;
  return nullptr;
}

/// ceil((B - A) / S) for S > 0, clamped into [0, PosInf].
int64_t ceilDivClamped(int64_t B, int64_t A, int64_t S) {
  __int128 D = static_cast<__int128>(B) - A;
  if (D <= 0)
    return 0;
  __int128 T = (D + S - 1) / S;
  if (T >= static_cast<__int128>(Interval::PosInf))
    return Interval::PosInf;
  return static_cast<int64_t>(T);
}

/// Trip interval for a counter starting in Init, stepping by +S while
/// `counter < BoundExcl` (the bound already normalised to an exclusive
/// upper limit). Symmetric cases are mapped onto this one by negation.
Interval tripsUpward(const Interval &Init, const Interval &BoundExcl,
                     int64_t S) {
  // Max trips pair the largest bound with the smallest start.
  int64_t MaxT = (BoundExcl.Hi == Interval::PosInf ||
                  Init.Lo == Interval::NegInf)
                     ? Interval::PosInf
                     : ceilDivClamped(BoundExcl.Hi, Init.Lo, S);
  // Min trips pair the smallest bound with the largest start; any open
  // end means a zero-trip execution is possible.
  int64_t MinT = (BoundExcl.Lo == Interval::NegInf ||
                  Init.Hi == Interval::PosInf)
                     ? 0
                     : ceilDivClamped(BoundExcl.Lo, Init.Hi, S);
  return Interval::make(MinT, MaxT);
}

Interval negate(const Interval &A) {
  if (A.isEmpty())
    return A;
  int64_t Lo = A.Hi == Interval::PosInf
                   ? Interval::NegInf
                   : (A.Hi == Interval::NegInf ? Interval::PosInf : -A.Hi);
  int64_t Hi = A.Lo == Interval::NegInf
                   ? Interval::PosInf
                   : (A.Lo == Interval::PosInf ? Interval::NegInf : -A.Lo);
  return Interval::make(Lo, Hi);
}

Interval shiftByOne(const Interval &A) {
  if (A.isEmpty())
    return A;
  return Interval::add(A, Interval::constant(1));
}

/// Matches `store (load slot) +- C` inside the loop and returns the
/// signed step, or 0 when the pattern fails.
int64_t matchStep(const StoreInst &Store, const AllocaInst *Slot) {
  const auto *Bin = dyn_cast<BinaryInst>(stripCasts(Store.getValueOperand()));
  if (!Bin)
    return 0;
  bool IsAdd = Bin->getOp() == BinaryInst::Op::Add;
  bool IsSub = Bin->getOp() == BinaryInst::Op::Sub;
  if (!IsAdd && !IsSub)
    return 0;
  const Value *L = stripCasts(Bin->getLHS());
  const Value *R = stripCasts(Bin->getRHS());
  if (loadedSlot(L) == Slot) {
    if (const auto *C = dyn_cast<ConstantInt>(R))
      return IsAdd ? C->getValue() : -C->getValue();
  }
  if (IsAdd && loadedSlot(R) == Slot)
    if (const auto *C = dyn_cast<ConstantInt>(L))
      return C->getValue();
  return 0;
}

void inferTrip(LoopTripCount &L, const CFGInfo &CFG, const RangeInfo &RI,
               const UniformityInfo *UI) {
  // Guard: the header ends in a conditional branch on a comparison with
  // exactly one successor inside the loop.
  const auto *Br =
      dyn_cast<BranchInst>(
          const_cast<BasicBlock *>(L.Header)->getTerminator());
  if (!Br || !Br->isConditional())
    return;
  L.Loc = Br->getDebugLoc();
  const auto *Cmp = dyn_cast<CmpInst>(Br->getCondition());
  if (!Cmp)
    return;
  bool TrueInLoop = L.contains(Br->getSuccessor(0));
  bool FalseInLoop = L.contains(Br->getSuccessor(1));
  if (TrueInLoop == FalseInLoop)
    return;

  // Counter: one comparison operand loads a scalar Local slot.
  const AllocaInst *Slot = loadedSlot(Cmp->getLHS());
  bool CounterIsLHS = Slot != nullptr;
  const Value *Bound = Cmp->getRHS();
  if (!Slot) {
    Slot = loadedSlot(Cmp->getRHS());
    Bound = Cmp->getLHS();
  }
  if (!Slot)
    return;

  // Exactly one in-loop store to the counter, of counter +- constant.
  int64_t Step = 0;
  unsigned Stores = 0;
  for (const BasicBlock *BB : L.Blocks)
    for (const Instruction *Inst : *BB)
      if (const auto *Store = dyn_cast<StoreInst>(Inst))
        if (dyn_cast<AllocaInst>(pointerBase(Store->getPointerOperand())) ==
            Slot) {
          ++Stores;
          Step = matchStep(*Store, Slot);
        }
  if (Stores != 1 || Step == 0)
    return;

  // Initial counter range: join of the slot on exit from every
  // out-of-loop predecessor of the header (the preheader side).
  Interval Init = Interval::empty();
  for (BasicBlock *P :
       CFG.predecessors(const_cast<BasicBlock *>(L.Header))) {
    if (!CFG.isReachable(P) || L.contains(P))
      continue;
    Init = Interval::join(Init, RI.exitSlotRange(P, Slot));
  }
  if (Init.isEmpty())
    return;

  // Normalise `counter REL bound` with the counter on the left and the
  // relation holding while the loop continues.
  CmpInst::Pred P = Cmp->getPred();
  if (!CounterIsLHS) {
    switch (P) {
    case CmpInst::Pred::SLT:
      P = CmpInst::Pred::SGT;
      break;
    case CmpInst::Pred::SLE:
      P = CmpInst::Pred::SGE;
      break;
    case CmpInst::Pred::SGT:
      P = CmpInst::Pred::SLT;
      break;
    case CmpInst::Pred::SGE:
      P = CmpInst::Pred::SLE;
      break;
    default:
      break;
    }
  }
  if (FalseInLoop) {
    switch (P) {
    case CmpInst::Pred::SLT:
      P = CmpInst::Pred::SGE;
      break;
    case CmpInst::Pred::SLE:
      P = CmpInst::Pred::SGT;
      break;
    case CmpInst::Pred::SGT:
      P = CmpInst::Pred::SLE;
      break;
    case CmpInst::Pred::SGE:
      P = CmpInst::Pred::SLT;
      break;
    default:
      return;
    }
  }

  Interval BoundR = RI.range(Bound);
  if (BoundR.isEmpty())
    return;

  Interval Trip;
  switch (P) {
  case CmpInst::Pred::SLT: // while (i < bound), step > 0
    if (Step <= 0)
      return;
    Trip = tripsUpward(Init, BoundR, Step);
    break;
  case CmpInst::Pred::SLE: // while (i <= bound): exclusive bound + 1
    if (Step <= 0)
      return;
    Trip = tripsUpward(Init, shiftByOne(BoundR), Step);
    break;
  case CmpInst::Pred::SGT: // while (i > bound), step < 0: negate.
    if (Step >= 0)
      return;
    Trip = tripsUpward(negate(Init), negate(BoundR), -Step);
    break;
  case CmpInst::Pred::SGE: // while (i >= bound)
    if (Step >= 0)
      return;
    Trip = tripsUpward(negate(Init), shiftByOne(negate(BoundR)), -Step);
    break;
  default:
    return; // EQ/NE guards are not counted loops.
  }

  L.Counted = true;
  L.CounterSlot = Slot;
  L.Bound = Bound;
  L.Step = Step;
  L.Trip = Trip;
  if (UI)
    L.DivergentBound = !UI->value(Bound).isUniform();
}

} // namespace

std::vector<LoopTripCount> findLoops(const Function &F, const CFGInfo &CFG,
                                     const DominatorTree &DT,
                                     const RangeInfo &RI,
                                     const UniformityInfo *UI) {
  std::vector<LoopTripCount> Loops;
  // Back edges B -> H with H dominating B define the natural loops;
  // multiple back edges to one header merge into one loop.
  for (BasicBlock *BB : CFG.blocksInReversePostOrder()) {
    Instruction *Term = BB->getTerminator();
    if (!Term)
      continue;
    const auto *Br = dyn_cast<BranchInst>(Term);
    if (!Br)
      continue;
    for (unsigned I = 0; I < Br->getNumSuccessors(); ++I) {
      BasicBlock *H = Br->getSuccessor(I);
      if (!DT.contains(BB) || !DT.contains(H) || !DT.dominates(H, BB))
        continue;
      LoopTripCount *L = nullptr;
      for (LoopTripCount &Existing : Loops)
        if (Existing.Header == H)
          L = &Existing;
      if (!L) {
        Loops.emplace_back();
        L = &Loops.back();
        L->Header = H;
        L->Blocks.insert(H);
      }
      // The loop body: blocks that reach the back-edge source without
      // passing through the header.
      std::deque<BasicBlock *> Work{BB};
      while (!Work.empty()) {
        BasicBlock *Cur = Work.front();
        Work.pop_front();
        if (!L->Blocks.insert(Cur).second)
          continue;
        for (BasicBlock *P : CFG.predecessors(Cur))
          if (CFG.isReachable(P))
            Work.push_back(P);
      }
    }
  }
  (void)F;
  for (LoopTripCount &L : Loops)
    inferTrip(L, CFG, RI, UI);
  // Deterministic order: headers in reverse post-order appearance.
  std::vector<const BasicBlock *> RPO;
  for (BasicBlock *BB : CFG.blocksInReversePostOrder())
    RPO.push_back(BB);
  std::stable_sort(Loops.begin(), Loops.end(),
                   [&](const LoopTripCount &A, const LoopTripCount &B) {
                     auto PosA = std::find(RPO.begin(), RPO.end(), A.Header);
                     auto PosB = std::find(RPO.begin(), RPO.end(), B.Header);
                     return PosA < PosB;
                   });
  return Loops;
}

const LoopTripCount *innermostLoopFor(const std::vector<LoopTripCount> &Loops,
                                      const BasicBlock *BB) {
  const LoopTripCount *Best = nullptr;
  for (const LoopTripCount &L : Loops)
    if (L.contains(BB))
      if (!Best || L.Blocks.size() < Best->Blocks.size())
        Best = &L;
  return Best;
}

} // namespace analysis
} // namespace ir
} // namespace cuadv
