//===- ir/analysis/Uniformity.cpp - Static divergence analysis --------------===//
//
// Part of the CUDAAdvisor reproduction project.
//
//===----------------------------------------------------------------------===//

#include "ir/analysis/Uniformity.h"

#include "ir/Casting.h"
#include "ir/Dominators.h"

#include <algorithm>
#include <cassert>
#include <deque>
#include <set>

namespace cuadv {
namespace ir {
namespace analysis {

//===----------------------------------------------------------------------===//
// Intrinsic classification.
//===----------------------------------------------------------------------===//

bool isBarrierCall(const Instruction &Inst) {
  const auto *Call = dyn_cast<CallInst>(&Inst);
  return Call && Call->getCallee()->getName() == "cuadv.syncthreads";
}

int threadIdxDim(const Function &Callee) {
  if (Callee.getName() == "cuadv.tid.x")
    return 0;
  if (Callee.getName() == "cuadv.tid.y")
    return 1;
  return -1;
}

bool isUniformGeometryIntrinsic(const Function &Callee) {
  const std::string &N = Callee.getName();
  return N == "cuadv.ctaid.x" || N == "cuadv.ctaid.y" || N == "cuadv.ntid.x" ||
         N == "cuadv.ntid.y" || N == "cuadv.nctaid.x" || N == "cuadv.nctaid.y";
}

//===----------------------------------------------------------------------===//
// AffineForm arithmetic.
//===----------------------------------------------------------------------===//

AffineForm AffineForm::add(const AffineForm &A, const AffineForm &B) {
  AffineForm R;
  R.CoefX = A.CoefX + B.CoefX;
  R.CoefY = A.CoefY + B.CoefY;
  R.Const = A.Const + B.Const;
  // Merge the two sorted term lists, summing coefficients and dropping
  // terms that cancel.
  size_t I = 0, J = 0;
  while (I < A.Terms.size() || J < B.Terms.size()) {
    if (J == B.Terms.size() ||
        (I < A.Terms.size() && A.Terms[I].first < B.Terms[J].first)) {
      R.Terms.push_back(A.Terms[I++]);
    } else if (I == A.Terms.size() || B.Terms[J].first < A.Terms[I].first) {
      R.Terms.push_back(B.Terms[J++]);
    } else {
      int64_t C = A.Terms[I].second + B.Terms[J].second;
      if (C != 0)
        R.Terms.emplace_back(A.Terms[I].first, C);
      ++I;
      ++J;
    }
  }
  return R;
}

AffineForm AffineForm::sub(const AffineForm &A, const AffineForm &B) {
  return add(A, scale(B, -1));
}

AffineForm AffineForm::scale(const AffineForm &A, int64_t K) {
  AffineForm R;
  if (K == 0)
    return R;
  R.CoefX = A.CoefX * K;
  R.CoefY = A.CoefY * K;
  R.Const = A.Const * K;
  R.Terms.reserve(A.Terms.size());
  for (const auto &[V, C] : A.Terms)
    R.Terms.emplace_back(V, C * K);
  return R;
}

AffineForm AffineForm::uniformValue(const Value *V) {
  AffineForm R;
  R.Terms.emplace_back(V, 1);
  return R;
}

AffineForm AffineForm::constant(int64_t C) {
  AffineForm R;
  R.Const = C;
  return R;
}

//===----------------------------------------------------------------------===//
// UVal lattice.
//===----------------------------------------------------------------------===//

UVal UVal::meet(const UVal &A, const UVal &B, const Value *CanonToken) {
  if (A.isBottom())
    return B;
  if (B.isBottom())
    return A;
  if (A.isDivergent() || B.isDivergent())
    return divergent();
  if (A.Form == B.Form)
    return A;
  if (A.Form.sameCoefficients(B.Form)) {
    // Same thread-index coefficients, different uniform base: collapse the
    // base to a single opaque token so the chain
    //   specific form -> canonical form -> Divergent
    // is a bounded descent (termination of the fixpoint).
    AffineForm F;
    F.CoefX = A.Form.CoefX;
    F.CoefY = A.Form.CoefY;
    F.Terms.emplace_back(CanonToken, 1);
    if (A.Form == F)
      return A;
    if (B.Form == F)
      return B;
    return affine(std::move(F));
  }
  return divergent();
}

const char *memAccessKindName(MemAccessKind K) {
  switch (K) {
  case MemAccessKind::Uniform:
    return "uniform";
  case MemAccessKind::Coalesced:
    return "coalesced";
  case MemAccessKind::Strided:
    return "strided";
  case MemAccessKind::Divergent:
    return "divergent";
  }
  return "?";
}

//===----------------------------------------------------------------------===//
// Pointer utilities.
//===----------------------------------------------------------------------===//

const Value *pointerBase(const Value *Ptr) {
  while (true) {
    if (const auto *G = dyn_cast<GEPInst>(Ptr)) {
      Ptr = G->getPointerOperand();
      continue;
    }
    if (const auto *C = dyn_cast<CastInst>(Ptr)) {
      if (C->getOp() == CastInst::Op::PtrCast) {
        Ptr = C->getOperand(0);
        continue;
      }
    }
    return Ptr;
  }
}

//===----------------------------------------------------------------------===//
// UniformityInfo queries.
//===----------------------------------------------------------------------===//

UVal UniformityInfo::value(const Value *V) const {
  if (const auto *CI = dyn_cast<ConstantInt>(V))
    return UVal::affine(AffineForm::constant(CI->getValue()));
  if (isa<ConstantFP>(V))
    return UVal::affine(AffineForm::uniformValue(V));
  auto It = Values.find(V);
  return It == Values.end() ? UVal() : It->second;
}

bool UniformityInfo::isDivergentBranch(const Instruction &Terminator) const {
  const auto *Br = dyn_cast<BranchInst>(&Terminator);
  if (!Br || !Br->isConditional())
    return false;
  return !value(Br->getCondition()).isUniform();
}

MemAccessClass UniformityInfo::classifyAccess(const Instruction &Access) const {
  const Value *Ptr = nullptr;
  int64_t ElemBytes = 0;
  if (const auto *L = dyn_cast<LoadInst>(&Access)) {
    Ptr = L->getPointerOperand();
    ElemBytes = L->getType()->sizeInBytes();
  } else if (const auto *S = dyn_cast<StoreInst>(&Access)) {
    Ptr = S->getPointerOperand();
    ElemBytes = S->getValueOperand()->getType()->sizeInBytes();
  } else {
    return {MemAccessKind::Divergent, 0};
  }
  UVal PV = value(Ptr);
  if (!PV.isAffine())
    return {MemAccessKind::Divergent, 0};
  const AffineForm &Fm = PV.form();
  if (Fm.isUniform())
    return {MemAccessKind::Uniform, 0};
  // Warps are laid out x-major, so the lane-to-lane stride is CoefX when
  // the address depends on threadIdx.x; an x-invariant but y-variant
  // address jumps at warp row boundaries and is reported as strided.
  if (Fm.CoefX != 0) {
    MemAccessKind K = (Fm.CoefX == ElemBytes || Fm.CoefX == -ElemBytes)
                          ? MemAccessKind::Coalesced
                          : MemAccessKind::Strided;
    // A nonzero CoefY is surfaced as SpansY: the x-based classification
    // assumes a warp never spans a y row (blockDim.x >= warpSize); a
    // narrower block makes even a Coalesced access jump by the row
    // stride mid-warp.
    return {K, Fm.CoefX, Fm.CoefY != 0};
  }
  return {MemAccessKind::Strided, Fm.CoefY, false};
}

//===----------------------------------------------------------------------===//
// The interprocedural driver.
//===----------------------------------------------------------------------===//

namespace {

/// Bottom-up summary of one defined function (phase A).
struct FuncSummary {
  bool ReturnUniform = false;
  bool operator==(const FuncSummary &O) const {
    return ReturnUniform == O.ReturnUniform;
  }
};

} // namespace

class UniformityDriver {
public:
  explicit UniformityDriver(const Module &M) : M(M) {}

  void run(std::unordered_map<const Function *, UniformityInfo> &Out);

private:
  /// A flow-sensitive environment: the abstract value held by each Local
  /// alloca at a program point. MiniCUDA locals are scalars (arrays live
  /// in shared or global memory), so one UVal per slot is exact.
  using ValueMap = std::unordered_map<const Value *, UVal>;
  using BlockEnvMap = std::unordered_map<const BasicBlock *, ValueMap>;

  void computeDimsRead();
  void computeSummaries();
  void computeFinalInfos(
      std::unordered_map<const Function *, UniformityInfo> &Out);

  /// Runs the intraprocedural analysis for \p F into \p Info (which must
  /// already carry EntryDivergent / ReadsTid flags and argument seeds).
  void analyzeFunction(const Function &F, UniformityInfo &Info);

  bool valueSweep(const Function &F, UniformityInfo &Info, BlockEnvMap &Exits,
                  bool Enforce);
  /// Returns true if new blocks became control-divergent.
  bool growControlDivergence(const Function &F, UniformityInfo &Info);

  UVal transfer(const Instruction *Inst, const UniformityInfo &Info,
                const ValueMap &Env);

  const Module &M;
  std::vector<const Function *> Defined;
  std::unordered_map<const Function *, std::unique_ptr<CFGInfo>> CFGs;
  std::unordered_map<const Function *, std::unique_ptr<DominatorTree>> PDTs;
  std::unordered_map<const Function *, FuncSummary> Summaries;
  std::unordered_map<const Function *, bool> ReadsX, ReadsY;
};

void UniformityDriver::run(
    std::unordered_map<const Function *, UniformityInfo> &Out) {
  for (Function *F : M)
    if (!F->isDeclaration()) {
      Defined.push_back(F);
      CFGs.emplace(F, std::make_unique<CFGInfo>(*F));
      PDTs.emplace(F,
                   std::make_unique<DominatorTree>(*F, *CFGs.at(F), true));
    }
  computeDimsRead();
  computeSummaries();
  computeFinalInfos(Out);
}

void UniformityDriver::computeDimsRead() {
  // Direct reads, then transitive closure over the (defined) call graph.
  for (const Function *F : Defined) {
    bool X = false, Y = false;
    for (const BasicBlock *BB : *F)
      for (const Instruction *Inst : *BB)
        if (const auto *Call = dyn_cast<CallInst>(Inst)) {
          int Dim = threadIdxDim(*Call->getCallee());
          X |= Dim == 0;
          Y |= Dim == 1;
        }
    ReadsX[F] = X;
    ReadsY[F] = Y;
  }
  bool Changed = true;
  while (Changed) {
    Changed = false;
    for (const Function *F : Defined)
      for (const BasicBlock *BB : *F)
        for (const Instruction *Inst : *BB)
          if (const auto *Call = dyn_cast<CallInst>(Inst)) {
            const Function *Callee = Call->getCallee();
            if (Callee->isDeclaration())
              continue;
            bool NX = ReadsX[F] || ReadsX[Callee];
            bool NY = ReadsY[F] || ReadsY[Callee];
            Changed |= NX != ReadsX[F] || NY != ReadsY[F];
            ReadsX[F] = NX;
            ReadsY[F] = NY;
          }
  }
}

void UniformityDriver::computeSummaries() {
  // Pessimistic start (ReturnUniform = false), then ascend to the least
  // fixpoint: each round analyses every function with uniform arguments
  // under the current callee summaries. Monotone, so it converges.
  for (const Function *F : Defined)
    Summaries[F] = FuncSummary{F->getReturnType()->isVoid()};
  for (int Round = 0; Round < 16; ++Round) {
    bool Changed = false;
    for (const Function *F : Defined) {
      if (F->getReturnType()->isVoid())
        continue;
      UniformityInfo Info;
      Info.F = F;
      Info.ReadsTidX = ReadsX[F];
      Info.ReadsTidY = ReadsY[F];
      for (unsigned I = 0; I < F->getNumArgs(); ++I)
        Info.Values[F->getArg(I)] =
            UVal::affine(AffineForm::uniformValue(F->getArg(I)));
      analyzeFunction(*F, Info);
      bool RetUniform = true;
      for (BasicBlock *Exit : CFGs.at(F)->exitBlocks())
        if (const auto *Ret = dyn_cast<ReturnInst>(Exit->getTerminator()))
          if (Ret->hasReturnValue())
            RetUniform &= Info.value(Ret->getReturnValue()).isUniform();
      FuncSummary New{RetUniform};
      if (!(Summaries[F] == New)) {
        Summaries[F] = New;
        Changed = true;
      }
    }
    if (!Changed)
      break;
  }
}

void UniformityDriver::computeFinalInfos(
    std::unordered_map<const Function *, UniformityInfo> &Out) {
  // Top-down: kernels start with uniform arguments and a reconverged
  // entry; device functions take the meet of the lattices their call
  // sites pass in, and are entry-divergent if any call site executes
  // under divergent control. Iterated because callers may themselves be
  // device functions analysed later in module order.
  struct Inputs {
    std::vector<UVal> Args;
    bool EntryDivergent = false;
    bool Valid = false;
    bool operator==(const Inputs &O) const {
      if (EntryDivergent != O.EntryDivergent || Valid != O.Valid ||
          Args.size() != O.Args.size())
        return false;
      for (size_t I = 0; I < Args.size(); ++I)
        if (Args[I] != O.Args[I])
          return false;
      return true;
    }
  };
  std::unordered_map<const Function *, Inputs> Stored;

  auto computeInputs = [&](const Function *F) {
    Inputs In;
    In.Valid = true;
    In.Args.resize(F->getNumArgs());
    if (F->isKernel()) {
      for (unsigned I = 0; I < F->getNumArgs(); ++I)
        In.Args[I] = UVal::affine(AffineForm::uniformValue(F->getArg(I)));
      return In;
    }
    bool AnyCallSite = false;
    for (const Function *Caller : Defined) {
      auto It = Out.find(Caller);
      if (It == Out.end())
        continue;
      const UniformityInfo &CI = It->second;
      for (const BasicBlock *BB : *Caller)
        for (const Instruction *Inst : *BB) {
          const auto *Call = dyn_cast<CallInst>(Inst);
          if (!Call || Call->getCallee() != F)
            continue;
          AnyCallSite = true;
          In.EntryDivergent |=
              CI.isEntryDivergent() || CI.isBlockDivergent(BB);
          for (unsigned I = 0; I < Call->getNumArgs(); ++I)
            In.Args[I] = UVal::meet(In.Args[I], CI.value(Call->getArg(I)),
                                    F->getArg(I));
        }
    }
    if (!AnyCallSite)
      // Dead device function: analyse as if called uniformly.
      for (unsigned I = 0; I < F->getNumArgs(); ++I)
        In.Args[I] = UVal::affine(AffineForm::uniformValue(F->getArg(I)));
    return In;
  };

  bool Converged = false;
  for (int Round = 0; Round < 32 && !Converged; ++Round) {
    bool Changed = false;
    for (const Function *F : Defined) {
      Inputs In = computeInputs(F);
      if (Stored[F] == In)
        continue;
      Stored[F] = In;
      UniformityInfo Info;
      Info.F = F;
      Info.EntryDivergent = In.EntryDivergent;
      Info.ReadsTidX = ReadsX[F];
      Info.ReadsTidY = ReadsY[F];
      for (unsigned I = 0; I < F->getNumArgs(); ++I)
        if (!In.Args[I].isBottom())
          Info.Values[F->getArg(I)] = In.Args[I];
      analyzeFunction(*F, Info);
      Out[F] = std::move(Info);
      Changed = true;
    }
    Converged = !Changed;
  }
  if (!Converged) {
    // The round cap was hit before the call-site input lattices settled,
    // so some device functions were last analysed under stale,
    // overly-uniform inputs. Kernel inputs are fixed (uniform arguments,
    // reconverged entry) and never go stale; re-analyse every device
    // function under fully pessimistic inputs so early termination stays
    // conservative — no unsound "uniform" claim survives.
    for (const Function *F : Defined) {
      if (F->isKernel())
        continue;
      UniformityInfo Info;
      Info.F = F;
      Info.EntryDivergent = true;
      Info.ReadsTidX = ReadsX[F];
      Info.ReadsTidY = ReadsY[F];
      for (unsigned I = 0; I < F->getNumArgs(); ++I)
        Info.Values[F->getArg(I)] = UVal::divergent();
      analyzeFunction(*F, Info);
      Out[F] = std::move(Info);
    }
  }
}

void UniformityDriver::analyzeFunction(const Function &F,
                                       UniformityInfo &Info) {
  // Alternate value fixpoints with influence-region growth: a newly
  // divergent branch makes blocks up to its immediate post-dominator
  // control-divergent, which taints stores there, which may make further
  // branches divergent. CtrlDiv only grows, so this terminates.
  size_t Guard = F.numBlocks() + 2;
  BlockEnvMap Exits;
  do {
    // Plain-assignment sweeps recompute every value from its operands, so
    // transient first-sweep values (a loop counter seen as its initialiser
    // before the back edge is folded in) are replaced by the final form
    // instead of being met with it — a meet would collapse the value to an
    // opaque token and permanently lose the affine structure. Any settled
    // state is a fixpoint of the (sound) transfer equations; if the
    // iteration fails to settle, fall back to meet-enforced descent,
    // which is guaranteed to terminate by the bounded lattice height.
    int Sweeps = 0;
    bool Enforce = false;
    do {
      ++Sweeps;
      Enforce = Sweeps > 64 + 4 * (int)F.numBlocks();
      assert(Sweeps < 100000 && "uniformity fixpoint failed to settle");
    } while (valueSweep(F, Info, Exits, Enforce));
    assert(Guard > 0 && "influence regions failed to settle");
    --Guard;
  } while (growControlDivergence(F, Info));
}

bool UniformityDriver::valueSweep(const Function &F, UniformityInfo &Info,
                                  BlockEnvMap &Exits, bool Enforce) {
  bool Changed = false;
  const CFGInfo &CFG = *CFGs.at(&F);
  for (BasicBlock *BB : CFG.blocksInReversePostOrder()) {
    // Entry environment: join the predecessors' exit environments. This
    // is flow-sensitive: a local assigned under a divergent guard and
    // read before reconvergence keeps its exact affine form, because
    // every thread executing the read executed the same store. Only at a
    // join fed by a divergent edge can threads arrive carrying different
    // values, and only there does the slot degrade to Divergent.
    //
    // A back-edge source with no recorded exit yet contributes Bottom,
    // i.e. nothing — the next sweep folds it in.
    std::vector<const ValueMap *> PredEnvs;
    std::vector<bool> PredDiv;
    for (BasicBlock *P : CFG.predecessors(BB)) {
      if (!CFG.isReachable(P))
        continue;
      auto It = Exits.find(P);
      if (It == Exits.end())
        continue;
      PredEnvs.push_back(&It->second);
      bool D = Info.isBlockDivergent(P);
      if (!D) {
        if (const Instruction *Term = P->getTerminator())
          if (const auto *Br = dyn_cast<BranchInst>(Term))
            if (Br->isConditional()) {
              UVal C = Info.value(Br->getCondition());
              D = !C.isBottom() && !C.isUniform();
            }
      }
      PredDiv.push_back(D);
    }
    ValueMap Cur;
    std::set<const Value *> Keys;
    for (const ValueMap *E : PredEnvs)
      for (const auto &KV : *E)
        Keys.insert(KV.first);
    for (const Value *K : Keys) {
      UVal Joined;
      UVal First;
      bool HaveFirst = false, AllEqual = true, DivContrib = false;
      for (size_t I = 0; I < PredEnvs.size(); ++I) {
        auto It = PredEnvs[I]->find(K);
        // A path that never stored the slot carries its initial value:
        // locals start zero-filled, which is thread-invariant.
        UVal V = It == PredEnvs[I]->end()
                     ? UVal::affine(AffineForm::uniformValue(K))
                     : It->second;
        if (V.isBottom())
          continue; // not computed yet on that path; next sweep
        if (!HaveFirst) {
          First = V;
          HaveFirst = true;
        } else if (V != First) {
          AllEqual = false;
        }
        Joined = UVal::meet(Joined, V, K);
        DivContrib |= PredDiv[I];
      }
      if (!HaveFirst)
        continue;
      Cur[K] = (AllEqual || !DivContrib) ? Joined : UVal::divergent();
    }
    for (const Instruction *Inst : *BB) {
      if (const auto *Store = dyn_cast<StoreInst>(Inst)) {
        const Value *Base = pointerBase(Store->getPointerOperand());
        const auto *Slot = dyn_cast<AllocaInst>(Base);
        if (Slot && Slot->getAddrSpace() == AddrSpace::Local)
          Cur[Slot] = Info.value(Store->getValueOperand());
        continue;
      }
      if (Inst->getType()->isVoid())
        continue;
      UVal New = transfer(Inst, Info, Cur);
      UVal &Slot = Info.Values[Inst];
      UVal Next = Enforce ? UVal::meet(Slot, New, Inst) : New;
      if (Next != Slot) {
        Slot = Next;
        Changed = true;
      }
    }
    ValueMap &Prev = Exits[BB];
    if (Prev != Cur) {
      Prev = std::move(Cur);
      Changed = true;
    }
  }
  return Changed;
}

UVal UniformityDriver::transfer(const Instruction *Inst,
                                const UniformityInfo &Info,
                                const ValueMap &Env) {
  auto Get = [&](const Value *V) { return Info.value(V); };

  switch (Inst->getKind()) {
  case ValueKind::Alloca:
    // The pointer itself; per-thread stack slots never alias across
    // threads, so the handle is treated as an opaque uniform base.
    return UVal::affine(AffineForm::uniformValue(Inst));

  case ValueKind::Load: {
    const auto *Load = cast<LoadInst>(Inst);
    const Value *Base = pointerBase(Load->getPointerOperand());
    const auto *Slot = dyn_cast<AllocaInst>(Base);
    if (Slot && Slot->getAddrSpace() == AddrSpace::Local) {
      auto It = Env.find(Slot);
      if (It == Env.end())
        // No store on any path to this load: locals are zero-filled, so
        // the value is thread-invariant.
        return UVal::affine(AffineForm::uniformValue(Slot));
      // A Bottom entry means the reaching stores are not computed yet;
      // stay Bottom and let a later sweep resolve it.
      return It->second;
    }
    // Global/shared memory may be written by other threads between this
    // warp's visits; make no claim about the loaded value.
    return UVal::divergent();
  }

  case ValueKind::GEP: {
    const auto *GEP = cast<GEPInst>(Inst);
    UVal PV = Get(GEP->getPointerOperand());
    UVal IV = Get(GEP->getIndexOperand());
    if (PV.isBottom() || IV.isBottom())
      return UVal();
    if (PV.isDivergent() || IV.isDivergent())
      return UVal::divergent();
    int64_t ElemBytes =
        GEP->getPointerOperand()->getType()->getPointee()->sizeInBytes();
    return UVal::affine(
        AffineForm::add(PV.form(), AffineForm::scale(IV.form(), ElemBytes)));
  }

  case ValueKind::Binary: {
    const auto *Bin = cast<BinaryInst>(Inst);
    UVal L = Get(Bin->getLHS());
    UVal R = Get(Bin->getRHS());
    if (L.isBottom() || R.isBottom())
      return UVal();
    if (L.isDivergent() || R.isDivergent())
      return UVal::divergent();
    switch (Bin->getOp()) {
    case BinaryInst::Op::Add:
      return UVal::affine(AffineForm::add(L.form(), R.form()));
    case BinaryInst::Op::Sub:
      return UVal::affine(AffineForm::sub(L.form(), R.form()));
    case BinaryInst::Op::Mul:
      if (L.form().isPureConstant())
        return UVal::affine(AffineForm::scale(R.form(), L.form().Const));
      if (R.form().isPureConstant())
        return UVal::affine(AffineForm::scale(L.form(), R.form().Const));
      break;
    case BinaryInst::Op::Shl:
      if (R.form().isPureConstant() && R.form().Const >= 0 &&
          R.form().Const < 63)
        return UVal::affine(
            AffineForm::scale(L.form(), int64_t(1) << R.form().Const));
      break;
    default:
      break;
    }
    if (L.isUniform() && R.isUniform())
      return UVal::affine(AffineForm::uniformValue(Inst));
    return UVal::divergent();
  }

  case ValueKind::Cmp: {
    const auto *Cmp = cast<CmpInst>(Inst);
    UVal L = Get(Cmp->getLHS());
    UVal R = Get(Cmp->getRHS());
    if (L.isBottom() || R.isBottom())
      return UVal();
    // If both sides share the same thread-index coefficients, their
    // difference is thread-invariant, so the comparison outcome is too.
    if (L.isAffine() && R.isAffine() &&
        L.form().sameCoefficients(R.form()))
      return UVal::affine(AffineForm::uniformValue(Inst));
    return UVal::divergent();
  }

  case ValueKind::Cast: {
    const auto *Cast_ = cast<CastInst>(Inst);
    UVal V = Get(Cast_->getOperand(0));
    switch (Cast_->getOp()) {
    case CastInst::Op::SExt:
    case CastInst::Op::Trunc:
    case CastInst::Op::ZExt:
    case CastInst::Op::PtrCast:
    case CastInst::Op::PtrToInt:
      // Value-preserving for in-range MiniCUDA indices; the affine form
      // passes straight through.
      return V;
    default:
      if (V.isBottom())
        return UVal();
      if (V.isUniform())
        return UVal::affine(AffineForm::uniformValue(Inst));
      return UVal::divergent();
    }
  }

  case ValueKind::Call: {
    const auto *Call = cast<CallInst>(Inst);
    const Function *Callee = Call->getCallee();
    int Dim = threadIdxDim(*Callee);
    if (Dim >= 0) {
      AffineForm Fm;
      (Dim == 0 ? Fm.CoefX : Fm.CoefY) = 1;
      return UVal::affine(std::move(Fm));
    }
    bool AnyBottom = false, AllUniform = true;
    for (unsigned I = 0; I < Call->getNumArgs(); ++I) {
      UVal A = Get(Call->getArg(I));
      AnyBottom |= A.isBottom();
      AllUniform &= A.isUniform();
    }
    if (AnyBottom)
      return UVal();
    // Geometry intrinsics, math declarations and defined callees with a
    // uniform-return summary all yield a uniform result for uniform
    // arguments; anything else is divergent.
    bool CalleeUniform = Callee->isDeclaration()
                             ? true
                             : Summaries.at(Callee).ReturnUniform;
    if (AllUniform && CalleeUniform)
      return UVal::affine(AffineForm::uniformValue(Inst));
    return UVal::divergent();
  }

  case ValueKind::Select: {
    const auto *Sel = cast<SelectInst>(Inst);
    UVal C = Get(Sel->getCond());
    if (C.isBottom())
      return UVal();
    if (!C.isUniform())
      return UVal::divergent();
    return UVal::meet(Get(Sel->getTrueValue()), Get(Sel->getFalseValue()),
                      Inst);
  }

  default:
    return UVal::divergent();
  }
}

bool UniformityDriver::growControlDivergence(const Function &F,
                                             UniformityInfo &Info) {
  const CFGInfo &CFG = *CFGs.at(&F);
  const DominatorTree &PDT = *PDTs.at(&F);
  bool Grew = false;
  for (BasicBlock *BB : CFG.blocksInReversePostOrder()) {
    Instruction *Term = BB->getTerminator();
    if (!Term)
      continue;
    auto *Br = dyn_cast<BranchInst>(Term);
    if (!Br || !Br->isConditional())
      continue;
    UVal Cond = Info.value(Br->getCondition());
    if (Cond.isUniform() || Cond.isBottom())
      continue;
    // The influence region of a divergent branch: every block on a path
    // from a successor to the branch's immediate post-dominator executes
    // with a partial warp.
    BasicBlock *Join =
        PDT.contains(BB) ? PDT.getIDom(BB) : nullptr;
    std::deque<BasicBlock *> Work;
    for (unsigned I = 0; I < Br->getNumSuccessors(); ++I)
      Work.push_back(Br->getSuccessor(I));
    std::unordered_set<const BasicBlock *> Seen;
    while (!Work.empty()) {
      BasicBlock *Cur = Work.front();
      Work.pop_front();
      if (Cur == Join || !Seen.insert(Cur).second)
        continue;
      Grew |= Info.CtrlDiv.insert(Cur).second;
      for (BasicBlock *Succ : Cur->successors())
        Work.push_back(Succ);
    }
  }
  return Grew;
}

//===----------------------------------------------------------------------===//
// ModuleUniformity.
//===----------------------------------------------------------------------===//

ModuleUniformity::ModuleUniformity(const Module &M) {
  UniformityDriver(M).run(Infos);
}

const UniformityInfo &ModuleUniformity::info(const Function &F) const {
  auto It = Infos.find(&F);
  assert(It != Infos.end() && "uniformity requested for unanalysed function");
  return It->second;
}

} // namespace analysis
} // namespace ir
} // namespace cuadv
