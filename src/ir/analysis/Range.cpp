//===- ir/analysis/Range.cpp - Symbolic value-range analysis ----------------===//
//
// Part of the CUDAAdvisor reproduction project.
//
//===----------------------------------------------------------------------===//

#include "ir/analysis/Range.h"

#include "ir/Casting.h"
#include "ir/Dominators.h"
#include "ir/analysis/Uniformity.h"

#include <algorithm>
#include <cassert>
#include <set>
#include <sstream>

namespace cuadv {
namespace ir {
namespace analysis {

//===----------------------------------------------------------------------===//
// Interval bound arithmetic.
//===----------------------------------------------------------------------===//

namespace {

/// Hardware launch limits used when no facts are available: blockDim is
/// capped at 1024 threads per dimension, grid dimensions fit in i32.
constexpr int64_t MaxBlockDim = 1024;
constexpr int64_t MaxGridDim = INT32_MAX;

int64_t clampBound(__int128 V) {
  if (V <= static_cast<__int128>(Interval::NegInf))
    return Interval::NegInf;
  if (V >= static_cast<__int128>(Interval::PosInf))
    return Interval::PosInf;
  return static_cast<int64_t>(V);
}

bool isInf(int64_t B) {
  return B == Interval::NegInf || B == Interval::PosInf;
}

/// A + B treating the sentinels as infinities. Mixed infinities cannot
/// arise from nonempty intervals' like-direction bounds.
int64_t infAdd(int64_t A, int64_t B) {
  if (A == Interval::NegInf || B == Interval::NegInf)
    return Interval::NegInf;
  if (A == Interval::PosInf || B == Interval::PosInf)
    return Interval::PosInf;
  return clampBound(static_cast<__int128>(A) + B);
}

/// A * B with infinity semantics; 0 annihilates an open end (sound for
/// bound products: the concrete values are finite).
int64_t infMul(int64_t A, int64_t B) {
  if (A == 0 || B == 0)
    return 0;
  if (isInf(A) || isInf(B))
    return ((A < 0) != (B < 0)) ? Interval::NegInf : Interval::PosInf;
  return clampBound(static_cast<__int128>(A) * B);
}

/// Truncating A / B for nonzero, sign-pure divisor bounds.
int64_t infDiv(int64_t A, int64_t B) {
  assert(B != 0 && "interval division by a zero bound");
  if (isInf(A)) {
    if (isInf(B))
      return 0; // |A/B| can be anything; callers join both signs.
    return ((A < 0) != (B < 0)) ? Interval::NegInf : Interval::PosInf;
  }
  if (isInf(B))
    return 0;
  return A / B;
}

} // namespace

Interval Interval::join(const Interval &A, const Interval &B) {
  if (A.isEmpty())
    return B;
  if (B.isEmpty())
    return A;
  return {std::min(A.Lo, B.Lo), std::max(A.Hi, B.Hi)};
}

Interval Interval::meet(const Interval &A, const Interval &B) {
  if (A.isEmpty() || B.isEmpty())
    return empty();
  Interval R{std::max(A.Lo, B.Lo), std::min(A.Hi, B.Hi)};
  return R.isEmpty() ? empty() : R;
}

Interval Interval::widen(const Interval &Old, const Interval &New) {
  if (Old.isEmpty())
    return New;
  if (New.isEmpty())
    return Old;
  return {New.Lo < Old.Lo ? NegInf : Old.Lo,
          New.Hi > Old.Hi ? PosInf : Old.Hi};
}

Interval Interval::narrow(const Interval &Old, const Interval &New) {
  if (Old.isEmpty() || New.isEmpty())
    return New;
  Interval R{Old.Lo == NegInf ? New.Lo : Old.Lo,
             Old.Hi == PosInf ? New.Hi : Old.Hi};
  return R.isEmpty() ? empty() : R;
}

Interval Interval::add(const Interval &A, const Interval &B) {
  if (A.isEmpty() || B.isEmpty())
    return empty();
  return {infAdd(A.Lo, B.Lo), infAdd(A.Hi, B.Hi)};
}

Interval Interval::sub(const Interval &A, const Interval &B) {
  if (A.isEmpty() || B.isEmpty())
    return empty();
  // -B = [-B.Hi, -B.Lo]; negation swaps the sentinels.
  int64_t NLo = B.Hi == PosInf ? NegInf : (B.Hi == NegInf ? PosInf : -B.Hi);
  int64_t NHi = B.Lo == NegInf ? PosInf : (B.Lo == PosInf ? NegInf : -B.Lo);
  return {infAdd(A.Lo, NLo), infAdd(A.Hi, NHi)};
}

Interval Interval::mul(const Interval &A, const Interval &B) {
  if (A.isEmpty() || B.isEmpty())
    return empty();
  int64_t C[4] = {infMul(A.Lo, B.Lo), infMul(A.Lo, B.Hi),
                  infMul(A.Hi, B.Lo), infMul(A.Hi, B.Hi)};
  return {*std::min_element(C, C + 4), *std::max_element(C, C + 4)};
}

Interval Interval::sdiv(const Interval &A, const Interval &B) {
  if (A.isEmpty() || B.isEmpty())
    return empty();
  // Split the divisor at zero (division by zero traps; the abstract
  // result covers the surviving executions).
  Interval R = empty();
  auto Part = [&](int64_t BLo, int64_t BHi) {
    if (BLo > BHi)
      return;
    int64_t C[4] = {infDiv(A.Lo, BLo), infDiv(A.Lo, BHi),
                    infDiv(A.Hi, BLo), infDiv(A.Hi, BHi)};
    // An open dividend end with an open divisor end yields 0 from
    // infDiv; widen those corners to the full quotient range.
    bool Open = (isInf(A.Lo) || isInf(A.Hi)) && (isInf(BLo) || isInf(BHi));
    Interval P{*std::min_element(C, C + 4), *std::max_element(C, C + 4)};
    if (Open)
      P = full();
    R = join(R, P);
  };
  Part(B.Lo, std::min<int64_t>(B.Hi, -1));
  Part(std::max<int64_t>(B.Lo, 1), B.Hi);
  return R.isEmpty() ? full() : R;
}

Interval Interval::srem(const Interval &A, const Interval &B) {
  if (A.isEmpty() || B.isEmpty())
    return empty();
  // |A srem B| < |B| and the sign follows the dividend (C semantics).
  int64_t MaxAbsB = PosInf;
  if (!isInf(B.Lo) && !isInf(B.Hi))
    MaxAbsB = std::max(B.Lo == NegInf ? PosInf : std::abs(B.Lo),
                       std::abs(B.Hi));
  int64_t MinAbsB = 0;
  if (B.Lo > 0)
    MinAbsB = B.Lo;
  else if (B.Hi < 0 && B.Hi != NegInf)
    MinAbsB = -B.Hi;
  // Exact when the dividend provably fits below every divisor.
  if (MinAbsB > 0 && A.Lo >= 0 && A.Hi != PosInf && A.Hi < MinAbsB)
    return A;
  int64_t Cap = MaxAbsB == PosInf ? PosInf : MaxAbsB - 1;
  int64_t Lo = A.Lo >= 0 ? 0
                         : (Cap == PosInf ? NegInf
                                          : std::max(-Cap, A.Lo == NegInf
                                                               ? -Cap
                                                               : A.Lo));
  int64_t Hi = (A.Hi <= 0 && A.Hi != PosInf)
                   ? 0
                   : (Cap == PosInf ? (A.Hi == PosInf ? PosInf : A.Hi)
                                    : std::min(Cap, A.Hi == PosInf ? Cap
                                                                   : A.Hi));
  return {Lo, Hi};
}

Interval Interval::shl(const Interval &A, const Interval &B) {
  if (A.isEmpty() || B.isEmpty())
    return empty();
  if (B.isConstant() && B.Lo >= 0 && B.Lo < 63)
    return mul(A, constant(int64_t(1) << B.Lo));
  return full();
}

Interval Interval::ashr(const Interval &A, const Interval &B) {
  if (A.isEmpty() || B.isEmpty())
    return empty();
  if (B.isConstant() && B.Lo >= 0 && B.Lo < 64) {
    int64_t K = B.Lo;
    int64_t Lo = A.Lo == NegInf ? NegInf : (A.Lo >> K);
    int64_t Hi = A.Hi == PosInf ? PosInf : (A.Hi >> K);
    return {Lo, Hi};
  }
  if (A.Lo >= 0)
    return {0, A.Hi};
  return full();
}

Interval Interval::bitAnd(const Interval &A, const Interval &B) {
  if (A.isEmpty() || B.isEmpty())
    return empty();
  // A nonnegative mask bounds the result to [0, mask].
  if (B.isConstant() && B.Lo >= 0) {
    int64_t Hi = B.Lo;
    if (A.Lo >= 0 && A.Hi != PosInf)
      Hi = std::min(Hi, A.Hi);
    return {0, Hi};
  }
  if (A.isConstant() && A.Lo >= 0)
    return bitAnd(B, A);
  if (A.Lo >= 0 && B.Lo >= 0)
    return {0, std::min(A.Hi, B.Hi)};
  return full();
}

Interval Interval::bitOrXor(const Interval &A, const Interval &B) {
  if (A.isEmpty() || B.isEmpty())
    return empty();
  if (A.Lo >= 0 && B.Lo >= 0 && A.Hi != PosInf && B.Hi != PosInf) {
    // or/xor of two values below 2^k stays below 2^k.
    uint64_t M = static_cast<uint64_t>(std::max(A.Hi, B.Hi));
    uint64_t Cap = 1;
    while (Cap <= M && Cap < (uint64_t(1) << 62))
      Cap <<= 1;
    return {0, static_cast<int64_t>(Cap - 1)};
  }
  return full();
}

std::string Interval::str() const {
  if (isEmpty())
    return "empty";
  std::ostringstream OS;
  OS << '[';
  if (Lo == NegInf)
    OS << "-inf";
  else
    OS << Lo;
  OS << ", ";
  if (Hi == PosInf)
    OS << "+inf";
  else
    OS << Hi;
  OS << ']';
  return OS.str();
}

//===----------------------------------------------------------------------===//
// RangeInfo queries.
//===----------------------------------------------------------------------===//

Interval RangeInfo::range(const Value *V) const {
  if (const auto *CI = dyn_cast<ConstantInt>(V))
    return Interval::constant(CI->getValue());
  if (isa<ConstantFP>(V))
    return Interval::full();
  auto It = Values.find(V);
  return It == Values.end() ? Interval::empty() : It->second;
}

Interval RangeInfo::exitSlotRange(const BasicBlock *BB,
                                  const Value *Slot) const {
  auto It = ExitSlots.find(BB);
  if (It == ExitSlots.end())
    return Interval::empty();
  auto SI = It->second.find(Slot);
  // No store reached the slot on this path: locals are zero-filled.
  return SI == It->second.end() ? Interval::constant(0) : SI->second;
}

//===----------------------------------------------------------------------===//
// The interprocedural driver.
//===----------------------------------------------------------------------===//

namespace {

/// The Local alloca slot behind \p Ptr when it names a scalar local
/// (the -O0 front-end's variable slots); null otherwise. Arrays are
/// excluded: one interval per slot is only exact for scalars.
const AllocaInst *scalarLocalSlot(const Value *Ptr) {
  const auto *Slot = dyn_cast<AllocaInst>(pointerBase(Ptr));
  if (Slot && Slot->getAddrSpace() == AddrSpace::Local &&
      Slot->getArrayCount() == 1)
    return Slot;
  return nullptr;
}

/// One refinement attached to a branch edge: on entry to Block, Target
/// satisfies `Target PRED other-operand` (with PRED adjusted for the
/// edge polarity and operand side). When Target is a load of a local
/// slot, the slot itself is refined too — that is what bounds loop
/// counters.
struct EdgeConstraint {
  const Value *Target = nullptr;
  const AllocaInst *Slot = nullptr;
  const CmpInst *Cmp = nullptr;
  bool TargetIsLHS = false;
  bool TrueEdge = false;
};

CmpInst::Pred swapOperands(CmpInst::Pred P) {
  switch (P) {
  case CmpInst::Pred::SLT:
    return CmpInst::Pred::SGT;
  case CmpInst::Pred::SLE:
    return CmpInst::Pred::SGE;
  case CmpInst::Pred::SGT:
    return CmpInst::Pred::SLT;
  case CmpInst::Pred::SGE:
    return CmpInst::Pred::SLE;
  default:
    return P;
  }
}

CmpInst::Pred invertPred(CmpInst::Pred P) {
  switch (P) {
  case CmpInst::Pred::SLT:
    return CmpInst::Pred::SGE;
  case CmpInst::Pred::SLE:
    return CmpInst::Pred::SGT;
  case CmpInst::Pred::SGT:
    return CmpInst::Pred::SLE;
  case CmpInst::Pred::SGE:
    return CmpInst::Pred::SLT;
  case CmpInst::Pred::EQ:
    return CmpInst::Pred::NE;
  case CmpInst::Pred::NE:
    return CmpInst::Pred::EQ;
  default:
    return P; // Float predicates are never used for refinement.
  }
}

} // namespace

class RangeDriver {
public:
  RangeDriver(const Module &M,
              const std::unordered_map<std::string, LaunchFacts> &KernelFacts)
      : M(M), KernelFacts(KernelFacts) {}

  void run(std::unordered_map<const Function *, RangeInfo> &Out);

private:
  using SlotMap = std::unordered_map<const Value *, Interval>;
  using BlockEnvMap = std::unordered_map<const BasicBlock *, SlotMap>;
  using ConstraintMap = std::unordered_map<const Value *, Interval>;

  void computeConstraints(const Function &F);
  void computeSummaries();
  void
  computeFinalInfos(std::unordered_map<const Function *, RangeInfo> &Out);

  enum class Mode { Plain, Widen, Narrow };

  void analyzeFunction(const Function &F, RangeInfo &Info);
  bool sweep(const Function &F, RangeInfo &Info, BlockEnvMap &Exits,
             Mode SweepMode);

  Interval evalConstraint(const EdgeConstraint &C, const RangeInfo &Info);
  ConstraintMap activeConstraints(const Function &F, BasicBlock *BB,
                                  const RangeInfo &Info);

  Interval transfer(const Instruction *Inst, const RangeInfo &Info,
                    const SlotMap &Env, const ConstraintMap &Active);
  Interval get(const Value *V, const RangeInfo &Info,
               const ConstraintMap &Active);
  Interval intrinsicRange(const Function &Callee, const LaunchFacts &Facts);

  const Module &M;
  const std::unordered_map<std::string, LaunchFacts> &KernelFacts;
  std::vector<const Function *> Defined;
  std::unordered_map<const Function *, std::unique_ptr<CFGInfo>> CFGs;
  std::unordered_map<const Function *, std::unique_ptr<DominatorTree>> DTs;
  std::unordered_map<const BasicBlock *, std::vector<EdgeConstraint>>
      Constraints;
  std::unordered_map<const Function *, Interval> Summaries;
};

void RangeDriver::run(std::unordered_map<const Function *, RangeInfo> &Out) {
  for (Function *F : M)
    if (!F->isDeclaration()) {
      Defined.push_back(F);
      CFGs.emplace(F, std::make_unique<CFGInfo>(*F));
      DTs.emplace(F, std::make_unique<DominatorTree>(*F, *CFGs.at(F),
                                                     /*Post=*/false));
      computeConstraints(*F);
    }
  computeSummaries();
  computeFinalInfos(Out);
}

void RangeDriver::computeConstraints(const Function &F) {
  const CFGInfo &CFG = *CFGs.at(&F);
  for (BasicBlock *BB : CFG.blocksInReversePostOrder()) {
    Instruction *Term = BB->getTerminator();
    if (!Term)
      continue;
    const auto *Br = dyn_cast<BranchInst>(Term);
    if (!Br || !Br->isConditional())
      continue;
    const auto *Cmp = dyn_cast<CmpInst>(Br->getCondition());
    if (!Cmp)
      continue;
    BasicBlock *TrueBB = Br->getSuccessor(0);
    BasicBlock *FalseBB = Br->getSuccessor(1);
    if (TrueBB == FalseBB)
      continue;
    auto Attach = [&](BasicBlock *Succ, bool TrueEdge) {
      // The edge constraint is only valid when the edge dominates the
      // successor: a unique predecessor guarantees that.
      unsigned Preds = 0;
      for (BasicBlock *P : CFG.predecessors(Succ))
        if (CFG.isReachable(P))
          ++Preds;
      if (Preds != 1)
        return;
      auto Side = [&](const Value *Op, bool IsLHS) {
        if (isa<ConstantInt>(Op))
          return;
        EdgeConstraint C;
        C.Target = Op;
        C.Cmp = Cmp;
        C.TargetIsLHS = IsLHS;
        C.TrueEdge = TrueEdge;
        if (const auto *Load = dyn_cast<LoadInst>(Op))
          C.Slot = scalarLocalSlot(Load->getPointerOperand());
        Constraints[Succ].push_back(C);
      };
      Side(Cmp->getLHS(), true);
      Side(Cmp->getRHS(), false);
    };
    Attach(TrueBB, true);
    Attach(FalseBB, false);
  }
}

Interval RangeDriver::evalConstraint(const EdgeConstraint &C,
                                     const RangeInfo &Info) {
  const Value *Other = C.TargetIsLHS ? C.Cmp->getRHS() : C.Cmp->getLHS();
  Interval O = Info.range(Other);
  if (O.isEmpty())
    return Interval::full(); // Bound not computed yet: no refinement.
  CmpInst::Pred P = C.Cmp->getPred();
  if (!C.TargetIsLHS)
    P = swapOperands(P);
  if (!C.TrueEdge)
    P = invertPred(P);
  switch (P) {
  case CmpInst::Pred::SLT:
    return Interval::atMost(infAdd(O.Hi, -1));
  case CmpInst::Pred::SLE:
    return Interval::atMost(O.Hi);
  case CmpInst::Pred::SGT:
    return Interval::atLeast(infAdd(O.Lo, 1));
  case CmpInst::Pred::SGE:
    return Interval::atLeast(O.Lo);
  case CmpInst::Pred::EQ:
    return O;
  default:
    return Interval::full(); // NE and float predicates: no refinement.
  }
}

RangeDriver::ConstraintMap
RangeDriver::activeConstraints(const Function &F, BasicBlock *BB,
                               const RangeInfo &Info) {
  // SSA values never change, so a constraint attached to a block also
  // holds in every block it dominates: walk the idom chain.
  ConstraintMap Active;
  const DominatorTree &DT = *DTs.at(&F);
  for (BasicBlock *D = BB; D; D = DT.contains(D) ? DT.getIDom(D)
                                                 : nullptr) {
    auto It = Constraints.find(D);
    if (It != Constraints.end())
      for (const EdgeConstraint &C : It->second) {
        Interval Cons = evalConstraint(C, Info);
        auto AI = Active.find(C.Target);
        // The innermost (first-seen) constraint wins ties; meet keeps
        // both refinements.
        Active[C.Target] = AI == Active.end()
                               ? Cons
                               : Interval::meet(AI->second, Cons);
      }
  }
  return Active;
}

Interval RangeDriver::get(const Value *V, const RangeInfo &Info,
                          const ConstraintMap &Active) {
  Interval R = Info.range(V);
  auto It = Active.find(V);
  if (It != Active.end() && !R.isEmpty())
    R = Interval::meet(R, It->second);
  return R;
}

Interval RangeDriver::intrinsicRange(const Function &Callee,
                                     const LaunchFacts &Facts) {
  const std::string &N = Callee.getName();
  auto Dim = [&](int64_t Known, int64_t HwMax) {
    return Known > 0 ? Interval::make(0, Known - 1)
                     : Interval::make(0, HwMax - 1);
  };
  auto Extent = [&](int64_t Known, int64_t HwMax) {
    return Known > 0 ? Interval::constant(Known) : Interval::make(1, HwMax);
  };
  if (N == "cuadv.tid.x")
    return Dim(Facts.BlockX, MaxBlockDim);
  if (N == "cuadv.tid.y")
    return Dim(Facts.BlockY, MaxBlockDim);
  if (N == "cuadv.ntid.x")
    return Extent(Facts.BlockX, MaxBlockDim);
  if (N == "cuadv.ntid.y")
    return Extent(Facts.BlockY, MaxBlockDim);
  if (N == "cuadv.ctaid.x")
    return Dim(Facts.GridX, MaxGridDim);
  if (N == "cuadv.ctaid.y")
    return Dim(Facts.GridY, MaxGridDim);
  if (N == "cuadv.nctaid.x")
    return Extent(Facts.GridX, MaxGridDim);
  if (N == "cuadv.nctaid.y")
    return Extent(Facts.GridY, MaxGridDim);
  return Interval::full();
}

Interval RangeDriver::transfer(const Instruction *Inst, const RangeInfo &Info,
                               const SlotMap &Env,
                               const ConstraintMap &Active) {
  auto Get = [&](const Value *V) { return get(V, Info, Active); };

  switch (Inst->getKind()) {
  case ValueKind::Alloca:
    // The handle itself: byte offset 0 from its own base.
    return Interval::constant(0);

  case ValueKind::Load: {
    const auto *Load = cast<LoadInst>(Inst);
    if (const AllocaInst *Slot =
            scalarLocalSlot(Load->getPointerOperand())) {
      auto It = Env.find(Slot);
      if (It == Env.end())
        // No store on any path: locals are zero-filled.
        return Interval::constant(0);
      return It->second;
    }
    // Global/shared memory (or a local array): no claim.
    return Interval::full();
  }

  case ValueKind::GEP: {
    const auto *GEP = cast<GEPInst>(Inst);
    Interval PV = Get(GEP->getPointerOperand());
    Interval IV = Get(GEP->getIndexOperand());
    if (PV.isEmpty() || IV.isEmpty())
      return Interval::empty();
    int64_t ElemBytes =
        GEP->getPointerOperand()->getType()->getPointee()->sizeInBytes();
    return Interval::add(PV,
                         Interval::mul(IV, Interval::constant(ElemBytes)));
  }

  case ValueKind::Binary: {
    const auto *Bin = cast<BinaryInst>(Inst);
    if (Bin->isFloatOp())
      return Interval::full();
    Interval L = Get(Bin->getLHS());
    Interval R = Get(Bin->getRHS());
    if (L.isEmpty() || R.isEmpty())
      return Interval::empty();
    switch (Bin->getOp()) {
    case BinaryInst::Op::Add:
      return Interval::add(L, R);
    case BinaryInst::Op::Sub:
      return Interval::sub(L, R);
    case BinaryInst::Op::Mul:
      return Interval::mul(L, R);
    case BinaryInst::Op::SDiv:
      return Interval::sdiv(L, R);
    case BinaryInst::Op::SRem:
      return Interval::srem(L, R);
    case BinaryInst::Op::Shl:
      return Interval::shl(L, R);
    case BinaryInst::Op::AShr:
      return Interval::ashr(L, R);
    case BinaryInst::Op::And:
      return Interval::bitAnd(L, R);
    case BinaryInst::Op::Or:
    case BinaryInst::Op::Xor:
      return Interval::bitOrXor(L, R);
    default:
      return Interval::full();
    }
  }

  case ValueKind::Cmp: {
    const auto *Cmp = cast<CmpInst>(Inst);
    Interval L = Get(Cmp->getLHS());
    Interval R = Get(Cmp->getRHS());
    if (L.isEmpty() || R.isEmpty())
      return Interval::empty();
    // A comparison whose outcome the ranges decide folds to a constant
    // (this is what lets the branch refinement prove guards redundant).
    auto Decide = [&](bool TrueWhen, bool FalseWhen) {
      if (TrueWhen)
        return Interval::constant(1);
      if (FalseWhen)
        return Interval::constant(0);
      return Interval::make(0, 1);
    };
    switch (Cmp->getPred()) {
    case CmpInst::Pred::SLT:
      return Decide(L.hasHi() && R.hasLo() && L.Hi < R.Lo,
                    L.hasLo() && R.hasHi() && L.Lo >= R.Hi);
    case CmpInst::Pred::SLE:
      return Decide(L.hasHi() && R.hasLo() && L.Hi <= R.Lo,
                    L.hasLo() && R.hasHi() && L.Lo > R.Hi);
    case CmpInst::Pred::SGT:
      return Decide(L.hasLo() && R.hasHi() && L.Lo > R.Hi,
                    L.hasHi() && R.hasLo() && L.Hi <= R.Lo);
    case CmpInst::Pred::SGE:
      return Decide(L.hasLo() && R.hasHi() && L.Lo >= R.Hi,
                    L.hasHi() && R.hasLo() && L.Hi < R.Lo);
    case CmpInst::Pred::EQ:
      return Decide(L.isConstant() && R.isConstant() && L.Lo == R.Lo,
                    Interval::meet(L, R).isEmpty());
    case CmpInst::Pred::NE:
      return Decide(Interval::meet(L, R).isEmpty(),
                    L.isConstant() && R.isConstant() && L.Lo == R.Lo);
    default:
      return Interval::make(0, 1);
    }
  }

  case ValueKind::Cast: {
    const auto *Cast_ = cast<CastInst>(Inst);
    Interval V = Get(Cast_->getOperand(0));
    switch (Cast_->getOp()) {
    case CastInst::Op::SExt:
    case CastInst::Op::PtrCast:
    case CastInst::Op::PtrToInt:
      return V;
    case CastInst::Op::ZExt:
      if (V.isEmpty() || V.Lo >= 0)
        return V;
      return Interval::full();
    case CastInst::Op::Trunc: {
      if (V.isEmpty())
        return V;
      int64_t Bits = Cast_->getType()->sizeInBytes() * 8;
      if (Bits >= 64)
        return V;
      int64_t Max = (int64_t(1) << (Bits - 1)) - 1;
      if (V.hasLo() && V.hasHi() && V.Lo >= -Max - 1 && V.Hi <= Max)
        return V; // Value-preserving truncation.
      return Interval::full();
    }
    default:
      return Interval::full();
    }
  }

  case ValueKind::Call: {
    const auto *Call = cast<CallInst>(Inst);
    const Function *Callee = Call->getCallee();
    if (Callee->isDeclaration())
      return intrinsicRange(*Callee, Info.facts());
    auto It = Summaries.find(Callee);
    return It == Summaries.end() ? Interval::full() : It->second;
  }

  case ValueKind::Select: {
    const auto *Sel = cast<SelectInst>(Inst);
    Interval C = Get(Sel->getCond());
    if (C.isEmpty())
      return Interval::empty();
    if (C == Interval::constant(1))
      return Get(Sel->getTrueValue());
    if (C == Interval::constant(0))
      return Get(Sel->getFalseValue());
    return Interval::join(Get(Sel->getTrueValue()),
                          Get(Sel->getFalseValue()));
  }

  default:
    return Interval::full();
  }
}

bool RangeDriver::sweep(const Function &F, RangeInfo &Info,
                        BlockEnvMap &Exits, Mode SweepMode) {
  bool Changed = false;
  const CFGInfo &CFG = *CFGs.at(&F);
  for (BasicBlock *BB : CFG.blocksInReversePostOrder()) {
    // Entry environment: join the predecessors' exit environments, then
    // apply this block's edge constraints to any refined slots. A
    // back-edge source with no recorded exit yet contributes nothing.
    std::vector<const SlotMap *> PredEnvs;
    for (BasicBlock *P : CFG.predecessors(BB)) {
      if (!CFG.isReachable(P))
        continue;
      auto It = Exits.find(P);
      if (It != Exits.end())
        PredEnvs.push_back(&It->second);
    }
    SlotMap Cur;
    std::set<const Value *> Keys;
    for (const SlotMap *E : PredEnvs)
      for (const auto &KV : *E)
        Keys.insert(KV.first);
    for (const Value *K : Keys) {
      Interval Joined = Interval::empty();
      for (const SlotMap *E : PredEnvs) {
        auto It = E->find(K);
        // A path that never stored the slot carries the zero-fill.
        Interval V = It == E->end() ? Interval::constant(0) : It->second;
        Joined = Interval::join(Joined, V);
      }
      if (!Joined.isEmpty())
        Cur[K] = Joined;
    }
    ConstraintMap Active = activeConstraints(F, BB, Info);
    auto CIt = Constraints.find(BB);
    if (CIt != Constraints.end())
      for (const EdgeConstraint &C : CIt->second) {
        if (!C.Slot)
          continue;
        Interval Cons = evalConstraint(C, Info);
        auto It = Cur.find(C.Slot);
        Interval CurV =
            It == Cur.end() ? Interval::constant(0) : It->second;
        Interval Met = Interval::meet(CurV, Cons);
        if (!Met.isEmpty())
          Cur[C.Slot] = Met;
      }

    for (const Instruction *Inst : *BB) {
      if (const auto *Store = dyn_cast<StoreInst>(Inst)) {
        if (const AllocaInst *Slot =
                scalarLocalSlot(Store->getPointerOperand())) {
          Interval V = get(Store->getValueOperand(), Info, Active);
          if (!V.isEmpty())
            Cur[Slot] = V;
        }
        continue;
      }
      if (Inst->getType()->isVoid())
        continue;
      Interval New = transfer(Inst, Info, Cur, Active);
      Interval &Slot = Info.Values[Inst];
      Interval Next = SweepMode == Mode::Widen
                          ? Interval::widen(Slot, New)
                          : SweepMode == Mode::Narrow
                                ? Interval::narrow(Slot, New)
                                : New;
      if (Next != Slot) {
        Slot = Next;
        Changed = true;
      }
    }
    SlotMap &Prev = Exits[BB];
    if (Prev != Cur) {
      Prev = std::move(Cur);
      Changed = true;
    }
  }
  return Changed;
}

void RangeDriver::analyzeFunction(const Function &F, RangeInfo &Info) {
  // Plain recompute sweeps first (exact for guard-bounded loops, whose
  // counters the edge constraints cap); if the iteration fails to
  // settle — an unguarded counter growing by its step every sweep —
  // switch to widening, which jumps grown bounds to infinity and is a
  // bounded ascent. Two narrowing sweeps then pull infinite bounds back
  // where a guard bounds the value after all; interval narrowing only
  // refines open ends, so the result stays a sound over-approximation.
  BlockEnvMap Exits;
  int Sweeps = 0;
  const int WidenAfter = 12 + 4 * static_cast<int>(F.numBlocks());
  bool Changed;
  do {
    ++Sweeps;
    Mode SweepMode = Sweeps > WidenAfter ? Mode::Widen : Mode::Plain;
    Changed = sweep(F, Info, Exits, SweepMode);
    assert(Sweeps < 100000 && "range fixpoint failed to settle");
  } while (Changed);
  sweep(F, Info, Exits, Mode::Narrow);
  sweep(F, Info, Exits, Mode::Narrow);
  Info.ExitSlots = std::move(Exits);
}

void RangeDriver::computeSummaries() {
  // Bottom-up return-range summaries under unknown (full) arguments —
  // sound at every call site. Two rounds let a summary refine through
  // one level of callee summaries; the pessimistic start keeps every
  // intermediate state sound.
  for (const Function *F : Defined)
    Summaries[F] = Interval::full();
  for (int Round = 0; Round < 2; ++Round) {
    for (const Function *F : Defined) {
      if (F->getReturnType()->isVoid())
        continue;
      RangeInfo Info;
      Info.F = F;
      for (unsigned I = 0; I < F->getNumArgs(); ++I)
        Info.Values[F->getArg(I)] =
            F->getArg(I)->getType()->isPointer() ? Interval::constant(0)
                                                 : Interval::full();
      analyzeFunction(*F, Info);
      Interval Ret = Interval::empty();
      for (BasicBlock *Exit : CFGs.at(F)->exitBlocks())
        if (const auto *RetI =
                dyn_cast<ReturnInst>(Exit->getTerminator()))
          if (RetI->hasReturnValue())
            Ret = Interval::join(Ret, Info.range(RetI->getReturnValue()));
      Summaries[F] = Ret.isEmpty() ? Interval::full() : Ret;
    }
  }
}

void RangeDriver::computeFinalInfos(
    std::unordered_map<const Function *, RangeInfo> &Out) {
  // Top-down: kernels are seeded from launch facts; device functions
  // take the join of the intervals their call sites pass in (and the
  // join of their callers' launch geometry). Iterated with a round cap;
  // on non-convergence device functions fall back to fully pessimistic
  // inputs so no stale narrow claim survives.
  struct Inputs {
    std::vector<Interval> Args;
    LaunchFacts Facts;
    bool Valid = false;
    bool operator==(const Inputs &O) const {
      if (Valid != O.Valid || Args.size() != O.Args.size())
        return false;
      for (size_t I = 0; I < Args.size(); ++I)
        if (Args[I] != O.Args[I])
          return false;
      return Facts.BlockX == O.Facts.BlockX &&
             Facts.BlockY == O.Facts.BlockY &&
             Facts.GridX == O.Facts.GridX && Facts.GridY == O.Facts.GridY;
    }
  };
  std::unordered_map<const Function *, Inputs> Stored;

  auto joinDim = [](int64_t A, int64_t B) { return A == B ? A : -1; };

  auto computeInputs = [&](const Function *F) {
    Inputs In;
    In.Valid = true;
    In.Args.resize(F->getNumArgs(), Interval::empty());
    if (F->isKernel()) {
      auto FIt = KernelFacts.find(F->getName());
      if (FIt != KernelFacts.end())
        In.Facts = FIt->second;
      for (unsigned I = 0; I < F->getNumArgs(); ++I) {
        if (F->getArg(I)->getType()->isPointer()) {
          In.Args[I] = Interval::constant(0);
          continue;
        }
        auto VIt = In.Facts.ArgValues.find(I);
        In.Args[I] = VIt != In.Facts.ArgValues.end()
                         ? Interval::constant(VIt->second)
                         : Interval::full();
      }
      return In;
    }
    bool AnyCallSite = false;
    bool First = true;
    for (const Function *Caller : Defined) {
      auto It = Out.find(Caller);
      if (It == Out.end())
        continue;
      const RangeInfo &CI = It->second;
      bool CallsF = false;
      for (const BasicBlock *BB : *Caller)
        for (const Instruction *Inst : *BB) {
          const auto *Call = dyn_cast<CallInst>(Inst);
          if (!Call || Call->getCallee() != F)
            continue;
          AnyCallSite = CallsF = true;
          for (unsigned I = 0; I < Call->getNumArgs(); ++I)
            In.Args[I] =
                Interval::join(In.Args[I], CI.range(Call->getArg(I)));
        }
      if (CallsF) {
        if (First) {
          In.Facts.BlockX = CI.facts().BlockX;
          In.Facts.BlockY = CI.facts().BlockY;
          In.Facts.GridX = CI.facts().GridX;
          In.Facts.GridY = CI.facts().GridY;
          First = false;
        } else {
          In.Facts.BlockX = joinDim(In.Facts.BlockX, CI.facts().BlockX);
          In.Facts.BlockY = joinDim(In.Facts.BlockY, CI.facts().BlockY);
          In.Facts.GridX = joinDim(In.Facts.GridX, CI.facts().GridX);
          In.Facts.GridY = joinDim(In.Facts.GridY, CI.facts().GridY);
        }
      }
    }
    for (unsigned I = 0; I < F->getNumArgs(); ++I)
      if (!AnyCallSite || In.Args[I].isEmpty())
        In.Args[I] = F->getArg(I)->getType()->isPointer()
                         ? Interval::constant(0)
                         : Interval::full();
    return In;
  };

  bool Converged = false;
  for (int Round = 0; Round < 16 && !Converged; ++Round) {
    bool Changed = false;
    for (const Function *F : Defined) {
      Inputs In = computeInputs(F);
      if (Stored[F] == In)
        continue;
      Stored[F] = In;
      RangeInfo Info;
      Info.F = F;
      Info.Facts = In.Facts;
      for (unsigned I = 0; I < F->getNumArgs(); ++I)
        Info.Values[F->getArg(I)] = In.Args[I];
      analyzeFunction(*F, Info);
      Out[F] = std::move(Info);
      Changed = true;
    }
    Converged = !Changed;
  }
  if (!Converged) {
    // Kernel inputs are fixed by their facts and never go stale;
    // re-analyse device functions pessimistically so early termination
    // stays conservative.
    for (const Function *F : Defined) {
      if (F->isKernel())
        continue;
      RangeInfo Info;
      Info.F = F;
      for (unsigned I = 0; I < F->getNumArgs(); ++I)
        Info.Values[F->getArg(I)] =
            F->getArg(I)->getType()->isPointer() ? Interval::constant(0)
                                                 : Interval::full();
      analyzeFunction(*F, Info);
      Out[F] = std::move(Info);
    }
  }
}

//===----------------------------------------------------------------------===//
// ModuleRanges.
//===----------------------------------------------------------------------===//

ModuleRanges::ModuleRanges(const Module &M) {
  std::unordered_map<std::string, LaunchFacts> None;
  RangeDriver(M, None).run(Infos);
}

ModuleRanges::ModuleRanges(
    const Module &M,
    const std::unordered_map<std::string, LaunchFacts> &KernelFacts) {
  RangeDriver(M, KernelFacts).run(Infos);
}

const RangeInfo &ModuleRanges::info(const Function &F) const {
  auto It = Infos.find(&F);
  assert(It != Infos.end() && "ranges requested for unanalysed function");
  return It->second;
}

} // namespace analysis
} // namespace ir
} // namespace cuadv
