//===- ir/analysis/Uniformity.h - Static divergence analysis ------*- C++ -*-===//
//
// Part of the CUDAAdvisor reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Uniformity (divergence) inference over MiniCUDA IR. Values seeded from
/// the thread-index intrinsics are tracked as affine forms in
/// (threadIdx.x, threadIdx.y); everything provably identical across the
/// threads of a CTA is *uniform*, everything else is *divergent*. The
/// analysis propagates
///
///  - through SSA def-use chains (sparse, transfer-function based),
///  - through the entry-block allocas the -O0-style front-end emits for
///    every local (a store under divergent control taints the slot — the
///    memory equivalent of a phi at a divergent join), and
///  - through sync dependence: a branch on a divergent condition makes
///    every block between it and its immediate post-dominator execute with
///    a partial warp (the influence region of the post-dominance
///    frontier), which in turn taints stores in that region.
///
/// On top of the value lattice the analysis classifies every conditional
/// branch (uniform/divergent) and every load/store address
/// (uniform/coalesced/strided/divergent). Classification is conservative:
/// "uniform" claims are sound, "divergent" may be a false alarm. The
/// companion runtime profiler measures the same properties dynamically;
/// core/analysis/Reports cross-checks the two.
///
//===----------------------------------------------------------------------===//

#ifndef CUADV_IR_ANALYSIS_UNIFORMITY_H
#define CUADV_IR_ANALYSIS_UNIFORMITY_H

#include "ir/Module.h"

#include <cstdint>
#include <unordered_map>
#include <unordered_set>
#include <vector>

namespace cuadv {
namespace ir {
namespace analysis {

/// \name Intrinsic classification helpers.
/// @{
/// True for the CTA barrier intrinsic (@cuadv.syncthreads).
bool isBarrierCall(const Instruction &Inst);
/// Returns 0 for @cuadv.tid.x, 1 for @cuadv.tid.y, -1 otherwise.
int threadIdxDim(const Function &Callee);
/// True for the uniform launch-geometry intrinsics (ctaid/ntid/nctaid).
bool isUniformGeometryIntrinsic(const Function &Callee);
/// @}

/// An affine decomposition of an integer/pointer value:
///   V = CoefX * threadIdx.x + CoefY * threadIdx.y + sum(Terms) + Const
/// where every Term is a (uniform value, coefficient) pair. A form with
/// CoefX == CoefY == 0 denotes a uniform value.
struct AffineForm {
  int64_t CoefX = 0;
  int64_t CoefY = 0;
  int64_t Const = 0;
  /// Uniform symbolic terms, sorted by pointer for canonical comparison.
  std::vector<std::pair<const Value *, int64_t>> Terms;

  bool isUniform() const { return CoefX == 0 && CoefY == 0; }
  bool isPureConstant() const { return isUniform() && Terms.empty(); }
  bool sameCoefficients(const AffineForm &O) const {
    return CoefX == O.CoefX && CoefY == O.CoefY;
  }
  bool operator==(const AffineForm &O) const {
    return CoefX == O.CoefX && CoefY == O.CoefY && Const == O.Const &&
           Terms == O.Terms;
  }

  /// V1 + V2 (termwise).
  static AffineForm add(const AffineForm &A, const AffineForm &B);
  /// V1 - V2.
  static AffineForm sub(const AffineForm &A, const AffineForm &B);
  /// V * K.
  static AffineForm scale(const AffineForm &A, int64_t K);
  /// A uniform form whose sole term is \p V (an opaque uniform value).
  static AffineForm uniformValue(const Value *V);
  /// The pure constant \p C.
  static AffineForm constant(int64_t C);
};

/// Lattice element for one value.
class UVal {
public:
  enum class Kind : uint8_t {
    Bottom,    ///< Not yet computed (unreachable operands).
    Affine,    ///< Known affine form (uniform when coefficients are 0).
    Divergent, ///< May differ between threads in a non-affine way.
  };

  UVal() : K(Kind::Bottom) {}
  static UVal divergent() {
    UVal V;
    V.K = Kind::Divergent;
    return V;
  }
  static UVal affine(AffineForm F) {
    UVal V;
    V.K = Kind::Affine;
    V.Form = std::move(F);
    return V;
  }

  Kind kind() const { return K; }
  bool isBottom() const { return K == Kind::Bottom; }
  bool isDivergent() const { return K == Kind::Divergent; }
  bool isAffine() const { return K == Kind::Affine; }
  bool isUniform() const { return K == Kind::Affine && Form.isUniform(); }
  const AffineForm &form() const { return Form; }

  bool operator==(const UVal &O) const {
    return K == O.K && (K != Kind::Affine || Form == O.Form);
  }
  bool operator!=(const UVal &O) const { return !(*this == O); }

  /// Lattice meet. Two affine forms with equal coefficients but different
  /// bases collapse to a canonical form whose base is the single opaque
  /// term \p CanonToken (e.g. the alloca being merged); different
  /// coefficients meet to Divergent.
  static UVal meet(const UVal &A, const UVal &B, const Value *CanonToken);

private:
  Kind K;
  AffineForm Form;
};

/// Static classification of one memory access's address pattern across
/// the lanes of a warp.
enum class MemAccessKind : uint8_t {
  Uniform,   ///< Same address in every lane (broadcast).
  Coalesced, ///< Consecutive lanes touch consecutive elements.
  Strided,   ///< Affine with a known non-unit stride.
  Divergent, ///< Address not provably affine in the thread index.
};

const char *memAccessKindName(MemAccessKind K);

struct MemAccessClass {
  MemAccessKind Kind = MemAccessKind::Divergent;
  /// Address stride in bytes per +1 step of the lane-major thread
  /// dimension; meaningful for Coalesced/Strided.
  int64_t StrideBytes = 0;
  /// True when the address depends on threadIdx.y in addition to
  /// threadIdx.x. Kind then describes the warp-uniform-y case
  /// (x-major warps with blockDim.x >= warpSize); a narrower block makes
  /// the warp span y rows, so the access also jumps by the y stride
  /// mid-warp and a Coalesced claim no longer holds.
  bool SpansY = false;
};

/// Results of the uniformity analysis for one function.
class UniformityInfo {
public:
  /// True if the function may be entered by a partial warp (device
  /// functions called under divergent control, transitively). Kernels are
  /// always entered reconverged.
  bool isEntryDivergent() const { return EntryDivergent; }

  /// True if \p BB may execute with a partial warp relative to function
  /// entry (it lies in the influence region of a divergent branch).
  bool isBlockDivergent(const BasicBlock *BB) const {
    return CtrlDiv.count(BB) != 0;
  }

  /// The lattice value computed for \p V (Bottom for values the analysis
  /// never reached).
  UVal value(const Value *V) const;

  /// True if \p V is provably CTA-uniform.
  bool isUniformValue(const Value *V) const { return value(V).isUniform(); }

  /// Classifies a conditional branch: false means provably uniform (all
  /// threads of a warp take the same side), true means possibly
  /// divergent. Unconditional branches are uniform.
  bool isDivergentBranch(const Instruction &Terminator) const;

  /// Classifies the address pattern of a load or store.
  MemAccessClass classifyAccess(const Instruction &Access) const;

  /// Thread dimensions (x and/or y) this function observes, transitively
  /// through callees. The race checker treats unobserved dimensions as
  /// degenerate (extent 1).
  bool readsTidX() const { return ReadsTidX; }
  bool readsTidY() const { return ReadsTidY; }

private:
  friend class UniformityDriver;

  const Function *F = nullptr;
  bool EntryDivergent = false;
  bool ReadsTidX = false;
  bool ReadsTidY = false;
  std::unordered_map<const Value *, UVal> Values;
  std::unordered_set<const BasicBlock *> CtrlDiv;
};

/// Module-wide uniformity: runs the interprocedural analysis (bottom-up
/// return-uniformity summaries, then top-down propagation of argument
/// lattices and entry divergence from call sites) once per module.
class ModuleUniformity {
public:
  explicit ModuleUniformity(const Module &M);

  /// Per-function results. \p F must be a definition in the analysed
  /// module.
  const UniformityInfo &info(const Function &F) const;

private:
  std::unordered_map<const Function *, UniformityInfo> Infos;
};

/// Follows GEP/pointer-cast chains to the underlying base value of a
/// pointer (an alloca, argument, or other root).
const Value *pointerBase(const Value *Ptr);

} // namespace analysis
} // namespace ir
} // namespace cuadv

#endif // CUADV_IR_ANALYSIS_UNIFORMITY_H
