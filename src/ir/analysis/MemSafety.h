//===- ir/analysis/MemSafety.h - Static memory-safety proofs ------*- C++ -*-===//
//
// Part of the CUDAAdvisor reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Static out-of-bounds classification over MiniCUDA IR. Every load and
/// store is reduced to (base object, byte-offset interval, access width)
/// using the symbolic range engine, then compared against the object's
/// known size:
///
///  - shared/local arrays: the alloca's allocation size,
///  - pointer kernel arguments: the launch-fact allocation size when the
///    analysis runs under a recorded launch (memcheck/profile modes),
///    unknown in the purely static lint.
///
/// Verdicts are one-sided, mirroring the uniformity contract:
/// *ProvablySafe* is a proof (checked against the dynamic trap model by
/// the differential safety oracle); *MayOutOfBounds* includes every
/// access the engine cannot bound — in particular any access into an
/// object of unknown size; *MustOutOfBounds* / *MustMisaligned* mean
/// every execution of the access faults.
///
//===----------------------------------------------------------------------===//

#ifndef CUADV_IR_ANALYSIS_MEMSAFETY_H
#define CUADV_IR_ANALYSIS_MEMSAFETY_H

#include "ir/analysis/Range.h"

#include <vector>

namespace cuadv {
namespace ir {
namespace analysis {

enum class SafetyVerdict : uint8_t {
  ProvablySafe,   ///< Offset interval fits the object on every execution.
  MayOutOfBounds, ///< Cannot be proven in bounds (unknown size or range).
  MustOutOfBounds,///< Every execution is outside the object.
  MustMisaligned, ///< Offset provably not a multiple of the access width.
};

const char *safetyVerdictName(SafetyVerdict V);

/// One classified load or store.
struct AccessSafety {
  const Instruction *Access = nullptr;
  /// The resolved base object: an AllocaInst, a pointer Argument, or
  /// null when the base could not be resolved (verdict is then
  /// MayOutOfBounds).
  const Value *Base = nullptr;
  AddrSpace AS = AddrSpace::Generic;
  unsigned AccessBytes = 0;
  /// Byte offsets the access may touch, relative to Base.
  Interval Offset = Interval::full();
  /// Known object size in bytes; -1 when unknown.
  int64_t ObjectBytes = -1;
  SafetyVerdict Verdict = SafetyVerdict::MayOutOfBounds;
};

/// Resolves the base object of \p Ptr, walking GEP/pointer-cast chains
/// *and* reloads of pointer-typed Local slots (the -O0 front-end spills
/// every pointer argument): a slot resolves when every store to it in
/// \p F carries the same base. Returns null when ambiguous.
const Value *resolveBaseObject(const Value *Ptr, const Function &F);

/// Classifies every load/store of \p F under the ranges (and launch
/// facts) in \p RI. Deterministic: accesses appear in block/instruction
/// order.
std::vector<AccessSafety> analyzeMemSafety(const Function &F,
                                           const RangeInfo &RI);

} // namespace analysis
} // namespace ir
} // namespace cuadv

#endif // CUADV_IR_ANALYSIS_MEMSAFETY_H
