//===- gpusim/TraceShard.cpp - Per-SM hook-event shard ------------------------===//
//
// Part of the CUDAAdvisor reproduction project.
//
// Delta/varint SoA encoding of the per-SM hook-event stream. Every
// header field is predicted against its near-constant expectation (the
// previous record's CTA coordinates, the context's valid mask, the
// shard's own SM id) so the common case costs one zero byte per field;
// memory addresses are predicted against the same warp's previous
// access, turning strided sweeps into small constant deltas. The
// decoder in replayInto() mirrors the encoder's prediction state
// exactly, so every field round-trips bit-identically and replay order
// equals record order.
//
//===----------------------------------------------------------------------===//

#include "gpusim/TraceShard.h"

#include <cstring>

using namespace cuadv;
using namespace cuadv::gpusim;

namespace {

void putVarint(std::vector<uint8_t> &V, uint64_t X) {
  while (X >= 0x80) {
    V.push_back(uint8_t(X) | 0x80);
    X >>= 7;
  }
  V.push_back(uint8_t(X));
}

uint64_t getVarint(const std::vector<uint8_t> &V, size_t &Pos) {
  uint64_t X = 0;
  unsigned Shift = 0;
  uint8_t B;
  do {
    B = V[Pos++];
    X |= uint64_t(B & 0x7f) << Shift;
    Shift += 7;
  } while (B & 0x80);
  return X;
}

/// Zigzag maps small-magnitude signed deltas onto small unsigned
/// varints (0, -1, 1, -2, ... -> 0, 1, 2, 3, ...).
uint64_t zigzag(int64_t X) { return (uint64_t(X) << 1) ^ uint64_t(X >> 63); }

int64_t unzigzag(uint64_t X) { return int64_t(X >> 1) ^ -int64_t(X & 1); }

void putDelta(std::vector<uint8_t> &V, int64_t Delta) {
  putVarint(V, zigzag(Delta));
}

int64_t getDelta(const std::vector<uint8_t> &V, size_t &Pos) {
  return unzigzag(getVarint(V, Pos));
}

void putDoubleBits(std::vector<uint8_t> &V, double D) {
  uint64_t Bits;
  std::memcpy(&Bits, &D, sizeof(Bits));
  for (unsigned I = 0; I != 8; ++I)
    V.push_back(uint8_t(Bits >> (8 * I)));
}

double getDoubleBits(const std::vector<uint8_t> &V, size_t &Pos) {
  uint64_t Bits = 0;
  for (unsigned I = 0; I != 8; ++I)
    Bits |= uint64_t(V[Pos++]) << (8 * I);
  double D;
  std::memcpy(&D, &Bits, sizeof(D));
  return D;
}

/// Largest op value that fits the 5 op bits of the kind/op byte; larger
/// values store the escape there followed by the real op as a varint.
constexpr uint8_t OpEscape = 31;

} // namespace

void TraceShard::putHeader(Kind K, uint8_t Op, const WarpContext &Ctx) {
  Head.push_back(uint8_t(K) |
                 uint8_t((Op < OpEscape ? Op : OpEscape) << 3));
  if (Op >= OpEscape)
    putVarint(Head, Op);
  putDelta(Head, int64_t(Ctx.SmId) - int64_t(SmId));
  putDelta(Head, int64_t(Ctx.CtaLinear) - int64_t(PrevCtaLinear));
  putDelta(Head, int64_t(Ctx.CtaX) - int64_t(PrevCtaX));
  putDelta(Head, int64_t(Ctx.CtaY) - int64_t(PrevCtaY));
  putVarint(Head, Ctx.WarpInCta);
  putVarint(Head, uint64_t(Ctx.ValidMask) ^ 0xffffffffu);
  PrevCtaLinear = Ctx.CtaLinear;
  PrevCtaX = Ctx.CtaX;
  PrevCtaY = Ctx.CtaY;
  ++NumEvents;
}

void TraceShard::onMemAccess(const WarpContext &Ctx, uint32_t SiteId,
                             uint8_t OpKind, uint32_t Bits, uint32_t Line,
                             uint32_t Col,
                             const std::vector<MemLaneRecord> &Lanes) {
  if (!admit())
    return;
  putHeader(Kind::Mem, OpKind, Ctx);
  putVarint(Head, SiteId);
  putVarint(Head, Bits);
  putVarint(Head, Line);
  putVarint(Head, Col);
  putVarint(Head, Lanes.size());
  uint64_t &WarpAddr = LastWarpAddr[warpKey(Ctx)];
  uint64_t PredAddr = WarpAddr;
  int64_t PrevLane = -1;
  for (const MemLaneRecord &L : Lanes) {
    putDelta(MemLaneIdx, int64_t(L.Lane) - PrevLane - 1);
    PrevLane = int64_t(L.Lane);
    putDelta(MemThread,
             int64_t(L.ThreadLinear) - int64_t(Ctx.WarpInCta * 32 + L.Lane));
    putDelta(MemAddr, int64_t(L.Address - PredAddr));
    PredAddr = L.Address;
  }
  if (!Lanes.empty())
    WarpAddr = Lanes.back().Address;
}

void TraceShard::onBlockEntry(const WarpContext &Ctx, uint32_t SiteId,
                              uint32_t ActiveMask) {
  if (!admit())
    return;
  putHeader(Kind::Block, 0, Ctx);
  putVarint(Head, SiteId);
  putVarint(Head, uint64_t(ActiveMask ^ Ctx.ValidMask));
}

void TraceShard::onCallSite(const WarpContext &Ctx, uint32_t FuncId,
                            uint32_t SiteId, uint32_t ActiveMask) {
  if (!admit())
    return;
  putHeader(Kind::Call, 0, Ctx);
  putVarint(Head, FuncId);
  putVarint(Head, SiteId);
  putVarint(Head, uint64_t(ActiveMask ^ Ctx.ValidMask));
}

void TraceShard::onCallReturn(const WarpContext &Ctx, uint32_t FuncId,
                              uint32_t ActiveMask) {
  if (!admit())
    return;
  putHeader(Kind::Ret, 0, Ctx);
  putVarint(Head, FuncId);
  putVarint(Head, uint64_t(ActiveMask ^ Ctx.ValidMask));
}

void TraceShard::onArith(const WarpContext &Ctx, uint32_t SiteId,
                         uint8_t OpKind,
                         const std::vector<ArithLaneRecord> &Lanes) {
  if (!admit())
    return;
  putHeader(Kind::Arith, OpKind, Ctx);
  putVarint(Head, SiteId);
  putVarint(Head, Lanes.size());
  int64_t PrevLane = -1;
  for (const ArithLaneRecord &L : Lanes) {
    putDelta(ArithLaneIdx, int64_t(L.Lane) - PrevLane - 1);
    PrevLane = int64_t(L.Lane);
    putDoubleBits(ArithVals, L.LHS);
    putDoubleBits(ArithVals, L.RHS);
  }
}

void TraceShard::replayInto(HookSink &Sink, uint64_t &Seq) const {
  size_t HPos = 0, MemLanePos = 0, MemThreadPos = 0, MemAddrPos = 0;
  size_t ArithLanePos = 0, ArithValPos = 0;
  uint32_t CtaLinear = 0, CtaX = 0, CtaY = 0;
  std::unordered_map<uint64_t, uint64_t> WarpAddr;
  std::vector<MemLaneRecord> MemScratch;
  std::vector<ArithLaneRecord> ArithScratch;
  for (uint64_t E = 0; E != NumEvents; ++E) {
    uint8_t KindOp = Head[HPos++];
    Kind K = Kind(KindOp & 7);
    uint8_t Op = uint8_t(KindOp >> 3);
    if (Op == OpEscape)
      Op = uint8_t(getVarint(Head, HPos));
    WarpContext Ctx;
    Ctx.SmId = unsigned(int64_t(SmId) + getDelta(Head, HPos));
    CtaLinear = uint32_t(int64_t(CtaLinear) + getDelta(Head, HPos));
    CtaX = uint32_t(int64_t(CtaX) + getDelta(Head, HPos));
    CtaY = uint32_t(int64_t(CtaY) + getDelta(Head, HPos));
    Ctx.CtaLinear = CtaLinear;
    Ctx.CtaX = CtaX;
    Ctx.CtaY = CtaY;
    Ctx.WarpInCta = unsigned(getVarint(Head, HPos));
    Ctx.ValidMask = uint32_t(getVarint(Head, HPos) ^ 0xffffffffu);
    Ctx.Seq = Seq++;
    switch (K) {
    case Kind::Mem: {
      uint32_t SiteId = uint32_t(getVarint(Head, HPos));
      uint32_t Bits = uint32_t(getVarint(Head, HPos));
      uint32_t Line = uint32_t(getVarint(Head, HPos));
      uint32_t Col = uint32_t(getVarint(Head, HPos));
      uint64_t NumLanes = getVarint(Head, HPos);
      MemScratch.clear();
      MemScratch.reserve(NumLanes);
      uint64_t &Pred = WarpAddr[warpKey(Ctx)];
      uint64_t Addr = Pred;
      int64_t Lane = -1;
      for (uint64_t L = 0; L != NumLanes; ++L) {
        Lane += getDelta(MemLaneIdx, MemLanePos) + 1;
        unsigned Thread = unsigned(int64_t(Ctx.WarpInCta * 32 + Lane) +
                                   getDelta(MemThread, MemThreadPos));
        Addr += uint64_t(getDelta(MemAddr, MemAddrPos));
        MemScratch.push_back({unsigned(Lane), Thread, Addr});
      }
      if (NumLanes)
        Pred = Addr;
      Sink.onMemAccess(Ctx, SiteId, Op, Bits, Line, Col, MemScratch);
      break;
    }
    case Kind::Block: {
      uint32_t SiteId = uint32_t(getVarint(Head, HPos));
      Sink.onBlockEntry(Ctx, SiteId,
                        uint32_t(getVarint(Head, HPos)) ^ Ctx.ValidMask);
      break;
    }
    case Kind::Call: {
      uint32_t FuncId = uint32_t(getVarint(Head, HPos));
      uint32_t SiteId = uint32_t(getVarint(Head, HPos));
      Sink.onCallSite(Ctx, FuncId, SiteId,
                      uint32_t(getVarint(Head, HPos)) ^ Ctx.ValidMask);
      break;
    }
    case Kind::Ret: {
      uint32_t FuncId = uint32_t(getVarint(Head, HPos));
      Sink.onCallReturn(Ctx, FuncId,
                        uint32_t(getVarint(Head, HPos)) ^ Ctx.ValidMask);
      break;
    }
    case Kind::Arith: {
      uint32_t SiteId = uint32_t(getVarint(Head, HPos));
      uint64_t NumLanes = getVarint(Head, HPos);
      ArithScratch.clear();
      ArithScratch.reserve(NumLanes);
      int64_t Lane = -1;
      for (uint64_t L = 0; L != NumLanes; ++L) {
        Lane += getDelta(ArithLaneIdx, ArithLanePos) + 1;
        double LHS = getDoubleBits(ArithVals, ArithValPos);
        double RHS = getDoubleBits(ArithVals, ArithValPos);
        ArithScratch.push_back({unsigned(Lane), LHS, RHS});
      }
      Sink.onArith(Ctx, SiteId, Op, ArithScratch);
      break;
    }
    }
  }
}
