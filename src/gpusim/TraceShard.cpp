//===- gpusim/TraceShard.cpp - Per-SM hook-event shard ------------------------===//

#include "gpusim/TraceShard.h"

#include "support/Error.h"

using namespace cuadv;
using namespace cuadv::gpusim;

void TraceShard::onMemAccess(const WarpContext &Ctx, uint32_t SiteId,
                             uint8_t OpKind, uint32_t Bits, uint32_t Line,
                             uint32_t Col,
                             const std::vector<MemLaneRecord> &Lanes) {
  if (!admit())
    return;
  Record R;
  R.K = Kind::Mem;
  R.Op = OpKind;
  R.Ctx = Ctx;
  R.A = SiteId;
  R.B = Bits;
  R.C = Line;
  R.D = Col;
  R.LaneBegin = static_cast<uint32_t>(MemLanes.size());
  R.LaneCount = static_cast<uint32_t>(Lanes.size());
  MemLanes.insert(MemLanes.end(), Lanes.begin(), Lanes.end());
  Events.push_back(R);
}

void TraceShard::onBlockEntry(const WarpContext &Ctx, uint32_t SiteId,
                              uint32_t ActiveMask) {
  if (!admit())
    return;
  Record R;
  R.K = Kind::Block;
  R.Ctx = Ctx;
  R.A = SiteId;
  R.B = ActiveMask;
  Events.push_back(R);
}

void TraceShard::onCallSite(const WarpContext &Ctx, uint32_t FuncId,
                            uint32_t SiteId, uint32_t ActiveMask) {
  if (!admit())
    return;
  Record R;
  R.K = Kind::Call;
  R.Ctx = Ctx;
  R.A = FuncId;
  R.B = SiteId;
  R.C = ActiveMask;
  Events.push_back(R);
}

void TraceShard::onCallReturn(const WarpContext &Ctx, uint32_t FuncId,
                              uint32_t ActiveMask) {
  if (!admit())
    return;
  Record R;
  R.K = Kind::Ret;
  R.Ctx = Ctx;
  R.A = FuncId;
  R.B = ActiveMask;
  Events.push_back(R);
}

void TraceShard::onArith(const WarpContext &Ctx, uint32_t SiteId,
                         uint8_t OpKind,
                         const std::vector<ArithLaneRecord> &Lanes) {
  if (!admit())
    return;
  Record R;
  R.K = Kind::Arith;
  R.Op = OpKind;
  R.Ctx = Ctx;
  R.A = SiteId;
  R.LaneBegin = static_cast<uint32_t>(ArithLanes.size());
  R.LaneCount = static_cast<uint32_t>(Lanes.size());
  ArithLanes.insert(ArithLanes.end(), Lanes.begin(), Lanes.end());
  Events.push_back(R);
}

void TraceShard::replayInto(HookSink &Sink, uint64_t &Seq) const {
  std::vector<MemLaneRecord> MemScratch;
  std::vector<ArithLaneRecord> ArithScratch;
  for (const Record &R : Events) {
    WarpContext Ctx = R.Ctx;
    Ctx.Seq = Seq++;
    switch (R.K) {
    case Kind::Mem:
      MemScratch.assign(MemLanes.begin() + R.LaneBegin,
                        MemLanes.begin() + R.LaneBegin + R.LaneCount);
      Sink.onMemAccess(Ctx, R.A, R.Op, R.B, R.C, R.D, MemScratch);
      break;
    case Kind::Block:
      Sink.onBlockEntry(Ctx, R.A, R.B);
      break;
    case Kind::Call:
      Sink.onCallSite(Ctx, R.A, R.B, R.C);
      break;
    case Kind::Ret:
      Sink.onCallReturn(Ctx, R.A, R.B);
      break;
    case Kind::Arith:
      ArithScratch.assign(ArithLanes.begin() + R.LaneBegin,
                          ArithLanes.begin() + R.LaneBegin + R.LaneCount);
      Sink.onArith(Ctx, R.A, R.Op, ArithScratch);
      break;
    }
  }
}
