//===- gpusim/DeviceSpec.cpp - GPU architecture parameters -----------------===//

#include "gpusim/DeviceSpec.h"

#include <cstdlib>

using namespace cuadv;
using namespace cuadv::gpusim;

unsigned DeviceSpec::resolveJobs() const {
  if (Jobs)
    return Jobs;
  if (const char *Env = std::getenv("CUADV_JOBS")) {
    char *End = nullptr;
    long V = std::strtol(Env, &End, 10);
    if (End != Env && *End == '\0' && V > 0)
      return static_cast<unsigned>(V);
  }
  return 1;
}

DeviceSpec DeviceSpec::keplerK40c(uint64_t L1KiB) {
  DeviceSpec Spec;
  Spec.Name = "Tesla K40c (Kepler, CC 3.5, " + std::to_string(L1KiB) +
              "KB L1)";
  Spec.NumSMs = 15;
  Spec.MaxCTAsPerSM = 16;
  Spec.MaxWarpsPerSM = 64;
  Spec.L1SizeBytes = L1KiB * 1024;
  Spec.L1LineBytes = 128;
  Spec.L1Assoc = 4;
  Spec.MSHREntries = 32;
  Spec.L1HitLatency = 32;
  Spec.L1MissLatency = 280;
  Spec.BypassLatency = 290;
  // ~288 GB/s GDDR5 over 15 SMs at ~745 MHz: a 128B line every ~5 cycles
  // per SM.
  Spec.DramCyclesPerTransaction = 5;
  return Spec;
}

DeviceSpec DeviceSpec::pascalP100() {
  DeviceSpec Spec;
  Spec.Name = "Tesla P100 (Pascal, CC 6.0, 24KB unified L1/Tex)";
  Spec.NumSMs = 56;
  Spec.MaxCTAsPerSM = 32;
  Spec.MaxWarpsPerSM = 64;
  Spec.L1SizeBytes = 24 * 1024;
  Spec.L1LineBytes = 32;
  Spec.L1Assoc = 8;
  Spec.MSHREntries = 64;
  Spec.L1HitLatency = 28;
  // Pascal's unified cache sits in the TPC between SM and NoC; misses and
  // bypasses are a little cheaper relative to hits than on Kepler, which
  // is one reason the paper sees bypassing help more on Pascal.
  Spec.L1MissLatency = 240;
  Spec.BypassLatency = 244;
  // ~732 GB/s HBM2 over 56 SMs at ~1.3 GHz: a 32B sector every ~3 cycles
  // per SM.
  Spec.DramCyclesPerTransaction = 3;
  return Spec;
}

bool DeviceSpec::benchPreset(const std::string &Name, DeviceSpec &Out) {
  if (Name == "kepler16")
    Out = keplerK40c(16);
  else if (Name == "kepler48")
    Out = keplerK40c(48);
  else if (Name == "pascal")
    Out = pascalP100();
  else
    return false;
  // Scale SMs with the reduced workload sizes so per-SM occupancy (and
  // thus cache contention) matches the paper's regime.
  Out.NumSMs = Name == "pascal" ? 6 : 4;
  return true;
}
