//===- gpusim/StallAccounting.cpp - Cycle accounting of stalled slots --------===//

#include "gpusim/StallAccounting.h"

using namespace cuadv;
using namespace cuadv::gpusim;

const char *gpusim::stallReasonName(StallReason R) {
  switch (R) {
  case StallReason::MemDependency:
    return "mem_dependency";
  case StallReason::MshrFull:
    return "mshr_full";
  case StallReason::Barrier:
    return "barrier";
  case StallReason::ExecDependency:
    return "exec_dependency";
  case StallReason::Reconvergence:
    return "reconvergence";
  case StallReason::IssueContention:
    return "issue_contention";
  case StallReason::Drain:
    return "drain";
  }
  return "unknown";
}

const std::vector<uint64_t> &LaunchStallProfile::gapBounds() {
  // Powers of two up to 8192 cycles; the overflow slot catches longer
  // gaps. NumStallGapBuckets == Bounds.size() + 1.
  static const std::vector<uint64_t> Bounds = {
      1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024, 2048, 4096, 8192};
  return Bounds;
}
