//===- gpusim/Trap.h - Recoverable guest-fault records ------------*- C++ -*-===//
//
// Part of the CUDAAdvisor reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The simulator's recoverable fault model. A guest fault (out-of-bounds
/// access, division by zero, divergent barrier, SM deadlock, watchdog
/// expiry) terminates only the faulting launch: the executor materializes
/// one TrapRecord carrying the trap kind, the faulting warp's identity,
/// the effective address and the instruction's source location, then
/// unwinds. Device memory, allocation maps and any trace data collected
/// before the fault stay intact, so the profiler can keep its partial
/// profile and the host runtime can keep launching — the behaviour of
/// cuda-memcheck/compute-sanitizer rather than of a crashing process.
///
//===----------------------------------------------------------------------===//

#ifndef CUADV_GPUSIM_TRAP_H
#define CUADV_GPUSIM_TRAP_H

#include <cstdint>
#include <string>
#include <vector>

namespace cuadv {
namespace support {
class JsonValue;
} // namespace support
namespace gpusim {

/// Everything that can terminate a launch short of host-process bugs.
enum class TrapKind : uint8_t {
  None = 0,
  OutOfBoundsGlobal,  ///< Global load/store outside any live allocation.
  OutOfBoundsShared,  ///< Shared access past the CTA's shared segment.
  OutOfBoundsLocal,   ///< Local access past the lane's local arena.
  MisalignedAccess,   ///< Address not naturally aligned for the access.
  DivisionByZero,     ///< Integer sdiv/srem with a zero divisor.
  DivergentBarrier,   ///< __syncthreads() under warp divergence.
  BarrierDeadlock,    ///< No runnable warp while warps wait at a barrier.
  WatchdogTimeout,    ///< Cycle budget exhausted (runaway kernel).
  InvalidLaunch,      ///< Host-side launch validation failed.
  InvalidProgram,     ///< Structurally invalid code reached execution.
  Canceled,           ///< Host asked the launch to stop (wall-clock
                      ///< timeout or interactive interrupt); partial
                      ///< profile data is kept like any other trap.
};

/// Stable lowercase identifier ("oob-global", "watchdog", ...), used in
/// reports, JSON and tests.
const char *trapKindName(TrapKind Kind);

/// One warp parked at (or absent from) a barrier when an SM deadlocked;
/// the payload of the BarrierDeadlock diagnostic.
struct BarrierWait {
  unsigned CtaLinear = 0;
  unsigned Warp = 0;
  bool AtBarrier = false; ///< Parked at the barrier vs. still live elsewhere.
  bool Done = false;      ///< Warp already retired.
};

/// The record of one guest fault. At most one per launch: the first
/// fault wins and the launch unwinds.
struct TrapRecord {
  TrapKind Kind = TrapKind::None;

  /// \name Faulting-warp identity (meaningless for host-side traps).
  /// @{
  unsigned SmId = 0;
  unsigned CtaLinear = 0;
  unsigned CtaX = 0;
  unsigned CtaY = 0;
  unsigned WarpInCta = 0;
  uint32_t LaneMask = 0; ///< Lanes active when the trap was raised.
  unsigned FaultingLane = 0;
  /// @}

  /// Effective (tagged) address and width for memory traps.
  uint64_t Address = 0;
  unsigned AccessBytes = 0;

  /// \name Source attribution.
  /// @{
  std::string Kernel;
  std::string File;
  unsigned Line = 0;
  unsigned Col = 0;
  /// @}

  uint64_t Cycle = 0; ///< SM-local cycle at which the trap was raised.

  std::string Message; ///< One-line human-readable summary.
  std::string Detail;  ///< Optional multi-line diagnostic (deadlocks).

  bool valid() const { return Kind != TrapKind::None; }

  /// "oob-global: out-of-bounds global store of 4 bytes at ... (kernel
  /// 'k', bfs.cu:12:7, sm 0 cta 3 warp 1 lane 0)" — the memcheck report
  /// line.
  std::string render() const;

  /// JSON object with kind/location/warp identity, the shape embedded in
  /// the metrics document's "faults" section.
  support::JsonValue toJson() const;
};

/// Formats the per-CTA barrier occupancy of a deadlocked SM: which warps
/// are parked at a barrier with how many arrivals, and which warps the
/// barrier is still waiting for. One line per CTA.
std::string formatDeadlockReport(const std::vector<BarrierWait> &Waits);

} // namespace gpusim
} // namespace cuadv

#endif // CUADV_GPUSIM_TRAP_H
