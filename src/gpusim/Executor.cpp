//===- gpusim/Executor.cpp - SIMT execution engine ---------------------------===//
//
// Part of the CUDAAdvisor reproduction project.
//
//===----------------------------------------------------------------------===//
//
// Implements Device::launch: CTAs are distributed round-robin over SMs;
// each SM interleaves the warps of its resident CTAs with an event-driven
// greedy-then-oldest scheduler. Warps execute in lock-step over their
// active lanes with an IPDOM reconvergence stack (one stack per call
// frame). Global memory traffic is coalesced into cache-line transactions
// that probe a per-SM write-evict L1 backed by an MSHR file; horizontal
// cache bypassing routes the trailing warps of each CTA around L1.
// Profiler hooks (cuadv.record.*) are dispatched to the attached HookSink
// and charged an atomic-serialization cost, the paper's dominant
// instrumentation overhead.
//
//===----------------------------------------------------------------------===//

#include "gpusim/Device.h"

#include "gpusim/Coalescer.h"
#include "gpusim/MSHR.h"
#include "gpusim/TraceShard.h"
#include "ir/Casting.h"
#include "support/Error.h"
#include "support/Format.h"

#include <algorithm>
#include <array>
#include <atomic>
#include <bit>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstring>
#include <deque>
#include <map>
#include <thread>
#include <tuple>

using namespace cuadv;
using namespace cuadv::gpusim;

HookSink::~HookSink() = default;

namespace {

/// One entry of a warp's SIMT reconvergence stack.
struct SimtEntry {
  int32_t Block;
  uint32_t Inst;
  uint32_t Mask;
  int32_t Reconv; ///< Pop when reaching this block; -1 for frame base.
};

/// One call frame of a warp.
struct Frame {
  const DFunction *Fn;
  /// Registers, laid out Slot-major: Regs[Slot * WarpSize + Lane].
  std::vector<RtValue> Regs;
  std::vector<SimtEntry> Simt;
  int32_t RetSlot = -1;       ///< Caller slot receiving the return value.
  uint32_t LocalBase = 0;     ///< Per-lane local-stack byte base.
  /// This frame's node in the SM's stall-accounting calling-context
  /// table (0 = kernel root). Interned at call time; popping the frame
  /// restores the caller's context for free.
  int32_t PathNode = 0;
};

enum class WarpState : uint8_t { Ready, AtBarrier, Done };

struct CTAState;

/// A resident warp.
struct WarpExec {
  CTAState *Cta = nullptr;
  unsigned WarpInCta = 0;
  uint32_t ValidMask = 0;
  uint64_t ReadyAt = 0;
  WarpState State = WarpState::Ready;
  std::vector<Frame> Frames;
  /// Per-lane local-memory stacks.
  std::vector<std::vector<uint8_t>> LaneLocal;
  uint32_t LocalTop = 0;
  bool UsesL1 = true;
  /// Warp-mode sampling decision (DeviceSpec::Sampling): a pure function
  /// of the CTA's linear index (warp mode samples whole CTAs), computed
  /// at CTA admission. Always true in exact and period modes.
  bool Sampled = true;
  /// Sampling builds only: records staged in the warp-local collector
  /// buffer since the last bulk flush (DeviceSpec::HookFlushBatch).
  /// Advances with the warp's own deterministic execution, so flush
  /// points are identical at any --jobs count.
  uint32_t StagedRecords = 0;
  /// \name Stall accounting: why this warp's ReadyAt is in the future.
  /// Set by step() when the latency is charged; consumed by the
  /// scheduler when an idle issue slot is attributed to this warp
  /// (next-to-issue attribution — the gap belongs to whatever the
  /// earliest-ready warp was waiting on).
  /// @{
  StallReason WaitReason = StallReason::ExecDependency;
  const DInst *WaitInst = nullptr;
  /// Representative address of the outstanding global load (lowest
  /// active lane), resolved to a data object only when a stall is
  /// actually recorded.
  uint64_t WaitAddr = 0;
  /// @}
};

/// A resident CTA.
struct CTAState {
  unsigned CtaX = 0;
  unsigned CtaY = 0;
  unsigned Linear = 0;
  std::vector<uint8_t> Shared;
  std::vector<WarpExec> Warps;
  unsigned LiveWarps = 0;
  unsigned WarpsAtBarrier = 0;
  uint64_t AdmitCycle = 0; ///< For the launch timeline.
};

/// Launch state shared by the SMs: an explicitly concurrent contract.
/// Everything here is either immutable for the whole launch (references
/// and flags) or a lock-free atomic (the trap arbitration slot). All
/// mutable simulation state — stats, timeline, trap records, hook
/// sequence numbers — lives per-SM inside SMSim and is merged in SM-id
/// order after the SMs finish, which is what makes the parallel
/// schedule's output byte-identical to the serial one.
struct LaunchShared {
  const Program &Prog;
  const DFunction &Kernel;
  const LaunchConfig &Cfg;
  const DeviceSpec &Spec;
  GlobalMemory &Mem;
  /// True when SMs record launch timelines (per-SM, merged afterwards).
  bool RecordTimeline = false;
  /// Parallel mode: guest global-memory scalars go through relaxed host
  /// atomics so concurrent SM workers never race on the arena. Serial
  /// mode keeps the historical plain-memcpy path bit-for-bit.
  bool AtomicGuestMem = false;
  /// Warp-mode sampling input (gpusim/Sampling.h): the device's
  /// deterministic launch number, which the CTA-selection hash covers
  /// so repeated launches sample different CTAs.
  uint64_t LaunchSeq = 0;
  /// First-trap-wins arbitration: the lowest SM id that trapped, or
  /// ~0u. The serial schedule runs SMs to completion in id order and
  /// stops at the first trap, so the serial winner is always the lowest
  /// trapping id — an atomic minimum reproduces it under concurrency,
  /// and shards above the winner are discarded entirely (those SMs
  /// never ran in the serial schedule).
  std::atomic<unsigned> TrapSm{~0u};

  /// Records this SM's trap id; keeps the minimum.
  void arbitrateTrap(unsigned SmId) {
    unsigned Cur = TrapSm.load(std::memory_order_relaxed);
    while (SmId < Cur &&
           !TrapSm.compare_exchange_weak(Cur, SmId,
                                         std::memory_order_release,
                                         std::memory_order_relaxed)) {
    }
  }
};

/// Per-SM cycle-accounting tables. Sites and calling-context nodes are
/// keyed by decoded-instruction pointers while the SM runs (cheap, no
/// string work on the hot path); Device::launch resolves them to source
/// locations and merges the tables SM-id-major into the launch's
/// LaunchStallProfile after the SMs finish.
struct SmStallTable {
  /// One guest calling-context node; [0] is the kernel root.
  struct PathRec {
    int32_t Parent = -1;
    const DInst *CallSite = nullptr;   ///< Null at the root.
    const DFunction *Callee = nullptr; ///< The kernel at the root.
  };
  /// Stall cycles of one (instruction, context, object) bucket.
  struct SiteRec {
    const DInst *I = nullptr;
    int32_t Path = 0;
    uint64_t ObjectAddr = 0;
    uint64_t Reasons[NumStallReasons] = {};
  };

  std::vector<PathRec> Paths{PathRec{}};
  std::vector<SiteRec> Sites;
  uint64_t ReasonCycles[NumStallReasons] = {};
  uint64_t Issued = 0;
  uint64_t GapBuckets[NumStallReasons][NumStallGapBuckets] = {};

  int32_t internPath(int32_t Parent, const DInst *CallSite,
                     const DFunction *Callee) {
    auto Key = std::make_pair(Parent, CallSite);
    auto It = PathIndex.find(Key);
    if (It != PathIndex.end())
      return It->second;
    int32_t Id = static_cast<int32_t>(Paths.size());
    Paths.push_back({Parent, CallSite, Callee});
    PathIndex.emplace(Key, Id);
    return Id;
  }

  SiteRec &site(const DInst *I, int32_t Path, uint64_t ObjectAddr) {
    auto Key = std::make_tuple(I, Path, ObjectAddr);
    auto It = SiteIndex.find(Key);
    if (It != SiteIndex.end())
      return Sites[It->second];
    SiteIndex.emplace(Key, Sites.size());
    Sites.push_back({I, Path, ObjectAddr, {}});
    return Sites.back();
  }

  /// Charges one idle-slot gap to \p R's launch totals and gap
  /// histogram (site attribution is the caller's job).
  void addGap(StallReason R, uint64_t Gap) {
    const unsigned Idx = static_cast<unsigned>(R);
    ReasonCycles[Idx] += Gap;
    const std::vector<uint64_t> &Bounds = LaunchStallProfile::gapBounds();
    unsigned B = 0;
    while (B < Bounds.size() && Gap > Bounds[B])
      ++B;
    ++GapBuckets[Idx][B];
  }

private:
  std::map<std::pair<int32_t, const DInst *>, int32_t> PathIndex;
  std::map<std::tuple<const DInst *, int32_t, uint64_t>, size_t> SiteIndex;
};

/// Simulation of one SM.
class SMSim {
public:
  SMSim(unsigned SmId, LaunchShared &Shared)
      : SmId(SmId), Shared(Shared), Spec(Shared.Spec),
        L1(Spec.L1SizeBytes, Spec.L1LineBytes, Spec.L1Assoc),
        Mshr(Spec.MSHREntries), L2Window(4 * Spec.MSHREntries) {
    ST.Paths[0].Callee = &Shared.Kernel;
  }

  void addPendingCTA(unsigned Linear) { Pending.push_back(Linear); }

  uint64_t run(unsigned ResidentLimit) {
    const uint64_t Watchdog = Spec.WatchdogCycleBudget;
    while (!Pending.empty() && Resident.size() < ResidentLimit)
      admitCTA();
    while (!Resident.empty() && !LocalTrap) {
      // A lower-id SM already trapped: in the serial schedule this SM
      // would never have run and its results are discarded, so stop.
      if (Shared.TrapSm.load(std::memory_order_relaxed) < SmId)
        break;
      if (Watchdog && Cycle > Watchdog) {
        raiseWatchdogTrap(Watchdog);
        break;
      }
      if (Spec.CancelFlag &&
          Spec.CancelFlag->load(std::memory_order_relaxed)) {
        raiseCancelTrap();
        break;
      }
      WarpExec *W = pickWarp();
      if (!W) {
        raiseDeadlockTrap();
        break;
      }
      if (W->ReadyAt > Cycle) {
        const uint64_t Gap = W->ReadyAt - Cycle;
        Stat.SchedulerStallCycles += Gap;
        recordStall(*W, Gap);
      }
      Cycle = std::max(Cycle, W->ReadyAt);
      step(*W);
      if (W->State == WarpState::Done)
        onWarpDone(*W);
      maybeSampleStalls();
    }
    if (Shared.RecordTimeline && Spec.StallSampleStrideCycles && Cycle)
      pushStallSample(); // Final snapshot at this SM's end cycle.
    // Merge L1 stats into this SM's aggregate.
    Stat.L1.LoadHits += L1.stats().LoadHits;
    Stat.L1.LoadMisses += L1.stats().LoadMisses;
    Stat.L1.StoreEvictions += L1.stats().StoreEvictions;
    Stat.L1.Stores += L1.stats().Stores;
    Stat.MshrMerges += Mshr.mergeCount();
    Stat.MshrStalls += Mshr.stallCount();
    return Cycle;
  }

private:
  //===--------------------------------------------------------------------===//
  // CTA lifecycle and scheduling
  //===--------------------------------------------------------------------===//

  void admitCTA() {
    unsigned Linear = Pending.front();
    Pending.pop_front();
    auto Cta = std::make_unique<CTAState>();
    unsigned GridX = Shared.Cfg.Grid.X;
    Cta->Linear = Linear;
    Cta->CtaX = Linear % GridX;
    Cta->CtaY = Linear / GridX;
    Cta->AdmitCycle = Cycle;
    Cta->Shared.assign(Shared.Kernel.SharedBytes, 0);

    unsigned BlockThreads = Shared.Cfg.Block.count();
    unsigned WarpSize = Spec.WarpSize;
    unsigned NumWarps = (BlockThreads + WarpSize - 1) / WarpSize;
    Cta->Warps.resize(NumWarps);
    Cta->LiveWarps = NumWarps;
    bool CtaSampled = true;
    if (Spec.Sampling.M == SamplingSpec::Mode::Warp) {
      // Whole-CTA sampling decision; a pure function of the launch
      // geometry and the device's launch order, so jobs=1 and jobs=N
      // sample the same CTAs. The count feeds the estimators' exact
      // scale-up denominator.
      CtaSampled = Spec.Sampling.sampleCta(Shared.LaunchSeq, Linear,
                                           Shared.Cfg.Grid.count());
      if (CtaSampled)
        ++Stat.SampledCtas;
    }
    for (unsigned WI = 0; WI != NumWarps; ++WI) {
      WarpExec &W = Cta->Warps[WI];
      W.Cta = Cta.get();
      W.WarpInCta = WI;
      unsigned FirstThread = WI * WarpSize;
      unsigned Threads = std::min(WarpSize, BlockThreads - FirstThread);
      W.ValidMask = Threads == 32 ? 0xffffffffu : ((1u << Threads) - 1);
      W.ReadyAt = Cycle;
      W.UsesL1 = Shared.Cfg.WarpsUsingL1 < 0 ||
                 WI < static_cast<unsigned>(Shared.Cfg.WarpsUsingL1);
      W.Sampled = CtaSampled;
      W.LaneLocal.resize(WarpSize);

      Frame F;
      F.Fn = &Shared.Kernel;
      F.Regs.assign(size_t(Shared.Kernel.NumSlots) * WarpSize, RtValue());
      for (unsigned A = 0; A != KernelArgs->size(); ++A)
        for (unsigned Lane = 0; Lane != WarpSize; ++Lane)
          F.Regs[size_t(A) * WarpSize + Lane] = (*KernelArgs)[A];
      F.Simt.push_back({0, 0, W.ValidMask, -1});
      F.LocalBase = 0;
      W.LocalTop = Shared.Kernel.LocalBytes;
      for (auto &Arena : W.LaneLocal)
        Arena.assign(W.LocalTop, 0);
      W.Frames.push_back(std::move(F));
    }
    Resident.push_back(std::move(Cta));
  }

  WarpExec *pickWarp() {
    WarpExec *Best = nullptr;
    for (auto &Cta : Resident)
      for (WarpExec &W : Cta->Warps)
        if (W.State == WarpState::Ready &&
            (!Best || W.ReadyAt < Best->ReadyAt))
          Best = &W;
    return Best;
  }

  void onWarpDone(WarpExec &W) {
    CTAState *Cta = W.Cta;
    --Cta->LiveWarps;
    maybeReleaseBarrier(*Cta);
    if (Cta->LiveWarps != 0)
      return;
    if (Shared.RecordTimeline)
      TL.Ctas.push_back({SmId, Cta->Linear, Cta->AdmitCycle, Cycle});
    // Retire the CTA and admit the next pending one.
    auto It = std::find_if(Resident.begin(), Resident.end(),
                           [Cta](const std::unique_ptr<CTAState> &P) {
                             return P.get() == Cta;
                           });
    assert(It != Resident.end() && "retiring unknown CTA");
    Resident.erase(It);
    if (!Pending.empty())
      admitCTA();
  }

  void maybeReleaseBarrier(CTAState &Cta) {
    if (Cta.LiveWarps == 0 || Cta.WarpsAtBarrier < Cta.LiveWarps)
      return;
    Cta.WarpsAtBarrier = 0;
    ++Stat.Barriers;
    if (Shared.RecordTimeline)
      TL.Barriers.push_back({SmId, Cta.Linear, Cycle});
    for (WarpExec &W : Cta.Warps)
      if (W.State == WarpState::AtBarrier) {
        W.State = WarpState::Ready;
        W.ReadyAt = std::max(W.ReadyAt, Cycle) + 8;
        // The resume pipeline bubble is a barrier stall, attributed to
        // the __syncthreads() site the warp was parked on (WaitInst).
        W.WaitReason = StallReason::Barrier;
      }
  }

  //===--------------------------------------------------------------------===//
  // Cycle accounting
  //===--------------------------------------------------------------------===//

  /// Attributes one idle issue-slot gap to the reason, source site,
  /// calling context and (for memory stalls) data object the picked
  /// warp was waiting on.
  void recordStall(WarpExec &W, uint64_t Gap) {
    const StallReason R = W.WaitReason;
    ST.addGap(R, Gap);
    uint64_t Obj = 0;
    if ((R == StallReason::MemDependency || R == StallReason::MshrFull) &&
        W.WaitAddr)
      Obj = Shared.Mem.allocationBase(W.WaitAddr);
    const int32_t Path = W.Frames.empty() ? 0 : W.Frames.back().PathNode;
    ST.site(W.WaitInst, Path, Obj)
        .Reasons[static_cast<unsigned>(R)] += Gap;
  }

  /// Emits a cumulative stall-counter snapshot into the launch timeline
  /// every StallSampleStrideCycles simulated cycles. Stride comparisons
  /// are in simulated time, so the series is jobs-invariant.
  void maybeSampleStalls() {
    const uint64_t Stride = Spec.StallSampleStrideCycles;
    if (!Shared.RecordTimeline || !Stride || Cycle < NextStallSample)
      return;
    pushStallSample();
    NextStallSample = Cycle + Stride;
  }

  void pushStallSample() {
    LaunchTimeline::StallSample S;
    S.Sm = SmId;
    S.Cycle = Cycle;
    S.Issued = ST.Issued;
    for (unsigned R = 0; R != NumStallReasons; ++R)
      S.Reasons[R] = ST.ReasonCycles[R];
    TL.StallSamples.push_back(S);
  }

  //===--------------------------------------------------------------------===//
  // Value plumbing
  //===--------------------------------------------------------------------===//

  static RtValue operandValue(const Frame &F, const DOperand &Op,
                              unsigned Lane, unsigned WarpSize) {
    switch (Op.K) {
    case DOperand::Kind::Slot:
      return F.Regs[size_t(Op.Slot) * WarpSize + Lane];
    case DOperand::Kind::ImmInt:
      return RtValue::fromInt(Op.ImmInt);
    case DOperand::Kind::ImmFP:
      return RtValue::fromFloat(Op.ImmFP);
    case DOperand::Kind::None:
      break;
    }
    cuadv_unreachable("bad operand kind");
  }

  static void setResult(Frame &F, const DInst &I, unsigned Lane,
                        unsigned WarpSize, RtValue V) {
    assert(I.Result >= 0 && "instruction has no result slot");
    F.Regs[size_t(I.Result) * WarpSize + Lane] = V;
  }

  //===--------------------------------------------------------------------===//
  // Guest-fault traps
  //===--------------------------------------------------------------------===//

  /// Records this SM's first guest fault (later ones are dropped) and
  /// arms the unwind: the SM stops at its next instruction boundary and
  /// enters the launch-wide first-trap-wins arbitration.
  void raiseTrap(TrapKind Kind, const DInst *I, std::string Message,
                 uint64_t Address = 0, unsigned Bytes = 0,
                 unsigned Lane = 0) {
    if (LocalTrap)
      return;
    auto T = std::make_shared<TrapRecord>();
    T->Kind = Kind;
    T->SmId = SmId;
    T->Cycle = Cycle;
    if (Shared.Kernel.Src)
      T->Kernel = Shared.Kernel.Src->getName();
    if (CurWarp) {
      T->CtaLinear = CurWarp->Cta->Linear;
      T->CtaX = CurWarp->Cta->CtaX;
      T->CtaY = CurWarp->Cta->CtaY;
      T->WarpInCta = CurWarp->WarpInCta;
      T->LaneMask = CurMask;
    }
    T->FaultingLane = Lane;
    T->Address = Address;
    T->AccessBytes = Bytes;
    if (I && I->Src && I->Src->getDebugLoc().isValid()) {
      const ir::DebugLoc &Loc = I->Src->getDebugLoc();
      T->File =
          Shared.Prog.sourceModule().getContext().fileName(Loc.FileId);
      T->Line = Loc.Line;
      T->Col = Loc.Col;
    }
    T->Message = std::move(Message);
    LocalTrap = std::move(T);
    Shared.arbitrateTrap(SmId);
  }

  void raiseWatchdogTrap(uint64_t Budget) {
    CurWarp = nullptr;
    raiseTrap(TrapKind::WatchdogTimeout, nullptr,
              formatString("kernel exceeded the watchdog cycle budget "
                           "(%llu cycles, budget %llu); runaway launch "
                           "terminated",
                           static_cast<unsigned long long>(Cycle),
                           static_cast<unsigned long long>(Budget)));
  }

  void raiseCancelTrap() {
    CurWarp = nullptr;
    raiseTrap(TrapKind::Canceled, nullptr,
              formatString("launch canceled by the host at cycle %llu "
                           "(wall-clock budget exceeded or interrupt); "
                           "partial profile retained",
                           static_cast<unsigned long long>(Cycle)));
  }

  /// No runnable warp but CTAs still resident: every live warp is parked
  /// at a barrier that can never release. Enumerates per-CTA barrier
  /// occupancy so the report names the warps the barrier is waiting for.
  void raiseDeadlockTrap() {
    if (LocalTrap)
      return;
    std::vector<BarrierWait> Waits;
    for (const auto &Cta : Resident)
      for (const WarpExec &W : Cta->Warps) {
        BarrierWait BW;
        BW.CtaLinear = Cta->Linear;
        BW.Warp = W.WarpInCta;
        BW.AtBarrier = W.State == WarpState::AtBarrier;
        BW.Done = W.State == WarpState::Done;
        Waits.push_back(BW);
      }
    CurWarp = nullptr;
    raiseTrap(TrapKind::BarrierDeadlock, nullptr,
              formatString("SM %u deadlock: no runnable warp (%zu resident "
                           "CTA(s) wait at a barrier that cannot release)",
                           SmId, Resident.size()));
    if (LocalTrap)
      LocalTrap->Detail = formatDeadlockReport(Waits);
  }

  //===--------------------------------------------------------------------===//
  // One warp instruction
  //===--------------------------------------------------------------------===//

  void step(WarpExec &W) {
    Frame &F = W.Frames.back();
    SimtEntry &E = F.Simt.back();
    const DBlock &B = F.Fn->Blocks[E.Block];
    assert(E.Inst < B.Insts.size() && "PC past end of block");
    const DInst &I = B.Insts[E.Inst];
    const unsigned WarpSize = Spec.WarpSize;
    uint32_t Mask = E.Mask;
    CurWarp = &W;
    CurMask = Mask;

    uint64_t Issue = Spec.IssueCycles;
    uint64_t DoneAt = 0; // Absolute completion cycle if nonzero.
    uint64_t Lat = Spec.IntLatency;

    ++Stat.WarpInstructions;

    // Default stall classification for the latency charged below:
    // scoreboard dependency on this instruction's result. Refined by
    // the memory/barrier/hook/divergence paths.
    W.WaitReason = StallReason::ExecDependency;
    W.WaitInst = &I;
    W.WaitAddr = 0;

    switch (I.Op) {
    case DOp::Alloca: {
      MemSpace Space = static_cast<MemSpace>(I.Space);
      for (unsigned Lane = 0; Lane != WarpSize; ++Lane) {
        if (!(Mask & (1u << Lane)))
          continue;
        uint64_t Offset = Space == MemSpace::Local
                              ? F.LocalBase + I.AllocaOffset
                              : I.AllocaOffset;
        setResult(F, I, Lane, WarpSize,
                  RtValue::fromPtr(addr::make(Space, Offset)));
      }
      ++E.Inst;
      break;
    }
    case DOp::Load:
      Lat = execLoad(W, F, E, I, DoneAt, Issue);
      ++E.Inst;
      break;
    case DOp::Store:
      Lat = execStore(W, F, E, I, Issue);
      ++E.Inst;
      break;
    case DOp::GEP: {
      for (unsigned Lane = 0; Lane != WarpSize; ++Lane) {
        if (!(Mask & (1u << Lane)))
          continue;
        uint64_t Base = operandValue(F, I.A, Lane, WarpSize).P;
        int64_t Index = operandValue(F, I.B, Lane, WarpSize).I;
        setResult(F, I, Lane, WarpSize,
                  RtValue::fromPtr(Base + uint64_t(Index) * I.ElemBytes));
      }
      ++E.Inst;
      break;
    }
    case DOp::Binary:
      Lat = execBinary(F, E, I);
      ++E.Inst;
      break;
    case DOp::Cmp:
      execCmp(F, E, I);
      ++E.Inst;
      break;
    case DOp::Cast:
      execCast(F, E, I);
      ++E.Inst;
      break;
    case DOp::Select: {
      for (unsigned Lane = 0; Lane != WarpSize; ++Lane) {
        if (!(Mask & (1u << Lane)))
          continue;
        bool C = operandValue(F, I.A, Lane, WarpSize).I != 0;
        setResult(F, I, Lane, WarpSize,
                  operandValue(F, C ? I.B : I.C, Lane, WarpSize));
      }
      ++E.Inst;
      break;
    }
    case DOp::Call:
      execCall(W, F, E, I);
      Lat = 24;
      break;
    case DOp::Intrin:
      Lat = execIntrinsic(W, F, E, I, Issue, DoneAt);
      break;
    case DOp::Br:
      moveTo(F, I.Succ0);
      break;
    case DOp::CondBr:
      execCondBr(F, E, B, I);
      break;
    case DOp::Ret:
      execRet(W, I);
      Lat = 24;
      break;
    }

    Cycle += Issue;
    ST.Issued += Issue; // Issue-slot occupancy, conserved per SM:
                        // EndCycle == Issued + classified gaps.
    if (W.State == WarpState::Ready)
      W.ReadyAt = std::max(Cycle + Lat, DoneAt);
  }

  //===--------------------------------------------------------------------===//
  // Control flow
  //===--------------------------------------------------------------------===//

  void moveTo(Frame &F, int32_t Block) {
    SimtEntry &E = F.Simt.back();
    E.Block = Block;
    E.Inst = 0;
    // Reconvergence: pop entries that have arrived at their IPDOM.
    while (F.Simt.size() > 1) {
      SimtEntry &Top = F.Simt.back();
      if (Top.Inst == 0 && Top.Block == Top.Reconv)
        F.Simt.pop_back();
      else
        break;
    }
  }

  void execCondBr(Frame &F, SimtEntry &E, const DBlock &B, const DInst &I) {
    const unsigned WarpSize = Spec.WarpSize;
    uint32_t TakenMask = 0;
    for (unsigned Lane = 0; Lane != WarpSize; ++Lane)
      if ((E.Mask & (1u << Lane)) &&
          operandValue(F, I.A, Lane, WarpSize).I != 0)
        TakenMask |= 1u << Lane;
    uint32_t NotTaken = E.Mask & ~TakenMask;

    if (NotTaken == 0) {
      moveTo(F, I.Succ0);
      return;
    }
    if (TakenMask == 0) {
      moveTo(F, I.Succ1);
      return;
    }
    // Divergence: current entry waits at the reconvergence point; the two
    // sides execute from a fresh stack top (taken path first).
    int32_t Reconv = B.Reconv;
    if (Reconv < 0) {
      raiseTrap(TrapKind::InvalidProgram, &I,
                "divergent branch without a reconvergence point");
      moveTo(F, I.Succ0);
      return;
    }
    E.Block = Reconv;
    E.Inst = 0;
    F.Simt.push_back({I.Succ1, 0, NotTaken, Reconv});
    F.Simt.push_back({I.Succ0, 0, TakenMask, Reconv});
    // The pipeline bubble after a divergent branch is reconvergence
    // overhead, not a plain scoreboard dependency.
    if (CurWarp)
      CurWarp->WaitReason = StallReason::Reconvergence;
    // Entries pushed directly onto their reconvergence point pop at once.
    while (F.Simt.size() > 1) {
      SimtEntry &Top = F.Simt.back();
      if (Top.Inst == 0 && Top.Block == Top.Reconv)
        F.Simt.pop_back();
      else
        break;
    }
  }

  void execCall(WarpExec &W, Frame &F, SimtEntry &E, const DInst &I) {
    const unsigned WarpSize = Spec.WarpSize;
    const DFunction &Callee = Shared.Prog.function(I.Callee);
    Frame NF = acquireFrame();
    NF.Fn = &Callee;
    NF.Regs.assign(size_t(Callee.NumSlots) * WarpSize, RtValue());
    for (unsigned A = 0; A != I.Args.size(); ++A)
      for (unsigned Lane = 0; Lane != WarpSize; ++Lane)
        if (E.Mask & (1u << Lane))
          NF.Regs[size_t(A) * WarpSize + Lane] =
              operandValue(F, I.Args[A], Lane, WarpSize);
    NF.Simt.push_back({0, 0, E.Mask, -1});
    NF.RetSlot = I.Result;
    NF.PathNode = ST.internPath(F.PathNode, &I, &Callee);
    NF.LocalBase = W.LocalTop;
    W.LocalTop += Callee.LocalBytes;
    for (auto &Arena : W.LaneLocal)
      if (Arena.size() < W.LocalTop)
        Arena.resize(W.LocalTop, 0);
    ++E.Inst; // Resume past the call after return.
    W.Frames.push_back(std::move(NF));
  }

  void execRet(WarpExec &W, const DInst &I) {
    Frame &F = W.Frames.back();
    SimtEntry &E = F.Simt.back();
    const unsigned WarpSize = Spec.WarpSize;
    assert(F.Simt.size() == 1 &&
           "return with unresolved divergence (verifier guarantees a "
           "single reconverged exit)");

    if (W.Frames.size() == 1) {
      W.State = WarpState::Done;
      return;
    }
    Frame &Caller = W.Frames[W.Frames.size() - 2];
    if (F.RetSlot >= 0)
      for (unsigned Lane = 0; Lane != WarpSize; ++Lane)
        if (E.Mask & (1u << Lane))
          Caller.Regs[size_t(F.RetSlot) * WarpSize + Lane] =
              operandValue(F, I.A, Lane, WarpSize);
    W.LocalTop = F.LocalBase;
    recycleFrame(std::move(W.Frames.back()));
    W.Frames.pop_back();
  }

  /// Call frames churn on every guest call; recycling their register and
  /// SIMT-stack storage through a small per-SM pool keeps the hot path
  /// free of per-call heap allocations.
  Frame acquireFrame() {
    if (FramePool.empty())
      return Frame();
    Frame F = std::move(FramePool.back());
    FramePool.pop_back();
    F.Fn = nullptr;
    F.Regs.clear();
    F.Simt.clear();
    F.RetSlot = -1;
    F.LocalBase = 0;
    F.PathNode = 0;
    return F;
  }

  void recycleFrame(Frame &&F) {
    if (FramePool.size() < 32)
      FramePool.push_back(std::move(F));
  }

  //===--------------------------------------------------------------------===//
  // Arithmetic
  //===--------------------------------------------------------------------===//

  uint64_t execBinary(Frame &F, SimtEntry &E, const DInst &I) {
    using Op = ir::BinaryInst::Op;
    const unsigned WarpSize = Spec.WarpSize;
    Op TheOp = static_cast<Op>(I.Sub);
    bool IsF32 = I.Ty->getKind() == ir::Type::Kind::F32;
    bool IsI32 = I.Ty->getKind() == ir::Type::Kind::I32;

    for (unsigned Lane = 0; Lane != WarpSize; ++Lane) {
      if (!(E.Mask & (1u << Lane)))
        continue;
      RtValue A = operandValue(F, I.A, Lane, WarpSize);
      RtValue B = operandValue(F, I.B, Lane, WarpSize);
      RtValue R;
      if (TheOp >= Op::FAdd) {
        double X = A.F, Y = B.F, Z;
        if (IsF32) {
          float Fx = float(X), Fy = float(Y), Fz = 0;
          switch (TheOp) {
          case Op::FAdd:
            Fz = Fx + Fy;
            break;
          case Op::FSub:
            Fz = Fx - Fy;
            break;
          case Op::FMul:
            Fz = Fx * Fy;
            break;
          case Op::FDiv:
            Fz = Fx / Fy;
            break;
          default:
            cuadv_unreachable("bad float op");
          }
          Z = double(Fz);
        } else {
          switch (TheOp) {
          case Op::FAdd:
            Z = X + Y;
            break;
          case Op::FSub:
            Z = X - Y;
            break;
          case Op::FMul:
            Z = X * Y;
            break;
          case Op::FDiv:
            Z = X / Y;
            break;
          default:
            cuadv_unreachable("bad float op");
          }
        }
        R = RtValue::fromFloat(Z);
      } else {
        int64_t X = A.I, Y = B.I, Z = 0;
        switch (TheOp) {
        case Op::Add:
          Z = X + Y;
          break;
        case Op::Sub:
          Z = X - Y;
          break;
        case Op::Mul:
          Z = X * Y;
          break;
        case Op::SDiv:
          if (Y == 0)
            raiseTrap(TrapKind::DivisionByZero, &I,
                      "integer division by zero", 0, 0, Lane);
          else if (Y == -1 && X == INT64_MIN)
            Z = X; // Wraps on real hardware; UB for host int64 division.
          else
            Z = X / Y;
          break;
        case Op::SRem:
          if (Y == 0)
            raiseTrap(TrapKind::DivisionByZero, &I,
                      "integer remainder by zero", 0, 0, Lane);
          else if (Y == -1 && X == INT64_MIN)
            Z = 0;
          else
            Z = X % Y;
          break;
        case Op::And:
          Z = X & Y;
          break;
        case Op::Or:
          Z = X | Y;
          break;
        case Op::Xor:
          Z = X ^ Y;
          break;
        case Op::Shl:
          Z = X << (Y & 63);
          break;
        case Op::AShr:
          Z = X >> (Y & 63);
          break;
        default:
          cuadv_unreachable("bad int op");
        }
        if (IsI32)
          Z = int32_t(Z);
        R = RtValue::fromInt(Z);
      }
      setResult(F, I, Lane, WarpSize, R);
    }
    return TheOp >= Op::FAdd ? Spec.FpLatency : Spec.IntLatency;
  }

  void execCmp(Frame &F, SimtEntry &E, const DInst &I) {
    using Pred = ir::CmpInst::Pred;
    const unsigned WarpSize = Spec.WarpSize;
    Pred ThePred = static_cast<Pred>(I.Sub);
    bool IsFloat = ThePred >= Pred::OEQ;

    for (unsigned Lane = 0; Lane != WarpSize; ++Lane) {
      if (!(E.Mask & (1u << Lane)))
        continue;
      RtValue A = operandValue(F, I.A, Lane, WarpSize);
      RtValue B = operandValue(F, I.B, Lane, WarpSize);
      bool R = false;
      if (IsFloat) {
        double X = A.F, Y = B.F;
        switch (ThePred) {
        case Pred::OEQ:
          R = X == Y;
          break;
        case Pred::ONE:
          R = X != Y;
          break;
        case Pred::OLT:
          R = X < Y;
          break;
        case Pred::OLE:
          R = X <= Y;
          break;
        case Pred::OGT:
          R = X > Y;
          break;
        case Pred::OGE:
          R = X >= Y;
          break;
        default:
          cuadv_unreachable("bad float pred");
        }
      } else {
        bool IsPtr = I.Ty->isPointer();
        int64_t X = IsPtr ? int64_t(A.P) : A.I;
        int64_t Y = IsPtr ? int64_t(B.P) : B.I;
        switch (ThePred) {
        case Pred::EQ:
          R = X == Y;
          break;
        case Pred::NE:
          R = X != Y;
          break;
        case Pred::SLT:
          R = X < Y;
          break;
        case Pred::SLE:
          R = X <= Y;
          break;
        case Pred::SGT:
          R = X > Y;
          break;
        case Pred::SGE:
          R = X >= Y;
          break;
        default:
          cuadv_unreachable("bad int pred");
        }
      }
      setResult(F, I, Lane, WarpSize, RtValue::fromInt(R ? 1 : 0));
    }
  }

  void execCast(Frame &F, SimtEntry &E, const DInst &I) {
    using Op = ir::CastInst::Op;
    const unsigned WarpSize = Spec.WarpSize;
    Op TheOp = static_cast<Op>(I.Sub);
    bool DstIsF32 = I.Ty->getKind() == ir::Type::Kind::F32;

    for (unsigned Lane = 0; Lane != WarpSize; ++Lane) {
      if (!(E.Mask & (1u << Lane)))
        continue;
      RtValue A = operandValue(F, I.A, Lane, WarpSize);
      RtValue R;
      switch (TheOp) {
      case Op::SIToFP:
        R = RtValue::fromFloat(DstIsF32 ? double(float(A.I))
                                        : double(A.I));
        break;
      case Op::FPToSI: {
        int64_t V = int64_t(A.F);
        if (I.Ty->getKind() == ir::Type::Kind::I32)
          V = int32_t(V);
        R = RtValue::fromInt(V);
        break;
      }
      case Op::SExt:
        R = RtValue::fromInt(A.I);
        break;
      case Op::Trunc:
        R = RtValue::fromInt(int32_t(A.I));
        break;
      case Op::ZExt:
        R = RtValue::fromInt(A.I & 1);
        break;
      case Op::FPExt:
        R = RtValue::fromFloat(A.F);
        break;
      case Op::FPTrunc:
        R = RtValue::fromFloat(double(float(A.F)));
        break;
      case Op::PtrCast:
        R = A;
        break;
      case Op::PtrToInt:
        R = RtValue::fromInt(int64_t(A.P));
        break;
      }
      setResult(F, I, Lane, WarpSize, R);
    }
  }

  //===--------------------------------------------------------------------===//
  // Memory
  //===--------------------------------------------------------------------===//

  /// Computes timing for the coalesced global transactions of a warp
  /// load; returns the absolute completion cycle.
  /// A transaction going past L1 (miss or bypass) occupies this SM's
  /// DRAM-bandwidth share; returns its service-start cycle.
  uint64_t occupyDram() {
    uint64_t Start = std::max(Cycle, DramFreeAt);
    DramFreeAt = Start + Spec.DramCyclesPerTransaction;
    return Start;
  }

  uint64_t globalLoadTiming(bool UsesL1,
                            const std::vector<LaneAccess> &Accesses,
                            uint64_t &Issue) {
    std::vector<uint64_t> &Lines = LineScratch;
    coalesce(Accesses, Spec.L1LineBytes, Lines);
    Stat.GlobalLoadTransactions += Lines.size();
    Issue += Lines.size() * Spec.LsuCyclesPerTransaction;
    LastLoadMshrStalled = false;
    uint64_t Done = Cycle;
    for (uint64_t Line : Lines) {
      uint64_t ByteAddr = Line * Spec.L1LineBytes;
      uint64_t Ready;
      if (UsesL1) {
        if (L1.accessLoad(ByteAddr)) {
          Ready = Cycle + Spec.L1HitLatency;
        } else {
          MSHRFile::Result R = Mshr.registerMiss(
              Line, Cycle, Spec.L1MissLatency, Spec.MshrFullPenalty);
          if (R.Stalled) {
            Issue += Spec.MshrFullPenalty; // LSU replays SM-wide.
            LastLoadMshrStalled = true;
          }
          if (!R.Merged)
            Ready = std::max(R.ReadyCycle,
                             occupyDram() + Spec.L1MissLatency);
          else
            Ready = R.ReadyCycle;
        }
      } else {
        ++Stat.BypassedTransactions;
        // Bypassed requests still merge at L2: a line already in flight
        // is not fetched (or charged) twice.
        MSHRFile::Result R = L2Window.registerMiss(
            Line, Cycle, Spec.BypassLatency, /*FullPenalty=*/0);
        Ready = R.Merged ? R.ReadyCycle
                         : std::max(R.ReadyCycle,
                                    occupyDram() + Spec.BypassLatency);
      }
      Done = std::max(Done, Ready);
    }
    return Done;
  }

  uint64_t execLoad(WarpExec &W, Frame &F, SimtEntry &E, const DInst &I,
                    uint64_t &DoneAt, uint64_t &Issue) {
    const unsigned WarpSize = Spec.WarpSize;
    MemSpace Space = static_cast<MemSpace>(I.Space);
    std::vector<LaneAccess> &Accesses = AccessScratch;
    Accesses.clear();

    for (unsigned Lane = 0; Lane != WarpSize; ++Lane) {
      if (!(E.Mask & (1u << Lane)))
        continue;
      uint64_t Address = operandValue(F, I.A, Lane, WarpSize).P;
      // The pointer's runtime tag decides where data lives (it matches
      // the static address space for well-typed programs).
      setResult(F, I, Lane, WarpSize, loadScalar(W, Lane, Address, I));
      if (addr::space(Address) == MemSpace::Global)
        Accesses.push_back({Lane, Address, I.ElemBytes});
    }

    switch (Space) {
    case MemSpace::Global:
      if (!Accesses.empty()) {
        DoneAt = globalLoadTiming(W.UsesL1 && !I.BypassL1, Accesses, Issue);
        W.WaitReason = LastLoadMshrStalled ? StallReason::MshrFull
                                           : StallReason::MemDependency;
        W.WaitAddr = Accesses.front().Address;
        return 0;
      }
      return Spec.LocalLatency;
    case MemSpace::Shared:
      ++Stat.SharedAccesses;
      return Spec.SharedLatency;
    case MemSpace::Local:
      return Spec.LocalLatency;
    }
    cuadv_unreachable("bad memory space");
  }

  uint64_t execStore(WarpExec &W, Frame &F, SimtEntry &E, const DInst &I,
                     uint64_t &Issue) {
    const unsigned WarpSize = Spec.WarpSize;
    std::vector<LaneAccess> &Accesses = AccessScratch;
    Accesses.clear();
    for (unsigned Lane = 0; Lane != WarpSize; ++Lane) {
      if (!(E.Mask & (1u << Lane)))
        continue;
      RtValue V = operandValue(F, I.A, Lane, WarpSize);
      uint64_t Address = operandValue(F, I.B, Lane, WarpSize).P;
      storeScalar(W, Lane, Address, I, V);
      if (addr::space(Address) == MemSpace::Global)
        Accesses.push_back({Lane, Address, I.ElemBytes});
    }
    if (!Accesses.empty()) {
      std::vector<uint64_t> &Lines = LineScratch;
      coalesce(Accesses, Spec.L1LineBytes, Lines);
      Stat.GlobalStoreTransactions += Lines.size();
      Issue += Lines.size() * Spec.LsuCyclesPerTransaction;
      for (uint64_t Line : Lines) {
        if (W.UsesL1)
          L1.accessStore(Line * Spec.L1LineBytes);
        occupyDram(); // Write-through traffic consumes bandwidth.
      }
    } else if (static_cast<MemSpace>(I.Space) == MemSpace::Shared) {
      ++Stat.SharedAccesses;
    }
    return Spec.StoreLatency;
  }

  /// Loads a \p U from \p Bytes, atomically (relaxed) when \p Atomic.
  /// resolve() guarantees natural alignment (misalignment traps into the
  /// aligned scratch line), so the atomic builtin is always well-formed.
  template <typename U>
  static U loadHost(const uint8_t *Bytes, bool Atomic) {
    if (Atomic)
      return __atomic_load_n(reinterpret_cast<const U *>(Bytes),
                             __ATOMIC_RELAXED);
    U V;
    std::memcpy(&V, Bytes, sizeof(U));
    return V;
  }

  template <typename U>
  static void storeHost(uint8_t *Bytes, U V, bool Atomic) {
    if (Atomic)
      __atomic_store_n(reinterpret_cast<U *>(Bytes), V, __ATOMIC_RELAXED);
    else
      std::memcpy(Bytes, &V, sizeof(U));
  }

  /// Parallel mode routes guest global-memory scalars through relaxed
  /// host atomics so concurrent SM workers never race on the arena;
  /// per-CTA (shared) and per-lane (local) spaces are SM-private and
  /// keep the plain path. Serial mode is the historical memcpy path
  /// bit-for-bit. Relaxed is sufficient: warps never synchronize across
  /// SMs within a launch (there is no guest atomic/fence ISA), so any
  /// concurrently written location is a guest data race whose value the
  /// serial schedule does not define more strongly either.
  bool atomicAccess(uint64_t Address) const {
    return Shared.AtomicGuestMem &&
           addr::space(Address) == MemSpace::Global;
  }

  RtValue loadScalar(WarpExec &W, unsigned Lane, uint64_t Address,
                     const DInst &I) {
    uint8_t *Bytes = resolve(W, Lane, Address, I.ElemBytes, I);
    const bool Atomic = atomicAccess(Address);
    RtValue R;
    switch (I.Ty->getKind()) {
    case ir::Type::Kind::I1:
      R = RtValue::fromInt(loadHost<uint8_t>(Bytes, Atomic) != 0);
      break;
    case ir::Type::Kind::I32:
      R = RtValue::fromInt(loadHost<int32_t>(Bytes, Atomic));
      break;
    case ir::Type::Kind::I64:
      R = RtValue::fromInt(loadHost<int64_t>(Bytes, Atomic));
      break;
    case ir::Type::Kind::F32:
      R = RtValue::fromFloat(
          std::bit_cast<float>(loadHost<uint32_t>(Bytes, Atomic)));
      break;
    case ir::Type::Kind::F64:
      R = RtValue::fromFloat(
          std::bit_cast<double>(loadHost<uint64_t>(Bytes, Atomic)));
      break;
    case ir::Type::Kind::Pointer:
      R = RtValue::fromPtr(loadHost<uint64_t>(Bytes, Atomic));
      break;
    case ir::Type::Kind::Void:
      cuadv_unreachable("load of void");
    }
    return R;
  }

  void storeScalar(WarpExec &W, unsigned Lane, uint64_t Address,
                   const DInst &I, RtValue V) {
    uint8_t *Bytes = resolve(W, Lane, Address, I.ElemBytes, I);
    const bool Atomic = atomicAccess(Address);
    switch (I.Ty->getKind()) {
    case ir::Type::Kind::I1:
      storeHost<uint8_t>(Bytes, V.I != 0, Atomic);
      break;
    case ir::Type::Kind::I32:
      storeHost<int32_t>(Bytes, int32_t(V.I), Atomic);
      break;
    case ir::Type::Kind::I64:
      storeHost<int64_t>(Bytes, V.I, Atomic);
      break;
    case ir::Type::Kind::F32:
      storeHost<uint32_t>(Bytes, std::bit_cast<uint32_t>(float(V.F)),
                          Atomic);
      break;
    case ir::Type::Kind::F64:
      storeHost<uint64_t>(Bytes, std::bit_cast<uint64_t>(V.F), Atomic);
      break;
    case ir::Type::Kind::Pointer:
      storeHost<uint64_t>(Bytes, V.P, Atomic);
      break;
    case ir::Type::Kind::Void:
      cuadv_unreachable("store of void");
    }
  }

  /// Trap fallback storage: a faulting lane loads zeros from (or stores
  /// into) this scratch line so the instruction completes without
  /// touching guest state while the launch unwinds.
  uint8_t *faultScratch() {
    std::memset(Scratch, 0, sizeof(Scratch));
    return Scratch;
  }

  const char *opName(const DInst &I) const {
    return I.Op == DOp::Store ? "store" : "load";
  }

  /// Resolves a tagged address to host storage for \p Bytes bytes. On an
  /// out-of-bounds or misaligned access the fault is recorded as a trap
  /// and a scratch line is returned, so the caller never dereferences
  /// guest memory out of range.
  uint8_t *resolve(WarpExec &W, unsigned Lane, uint64_t Address,
                   unsigned Bytes, const DInst &I) {
    uint64_t Offset = addr::offset(Address);
    // Natural alignment, like the hardware requires; Bytes is a power of
    // two for every scalar type.
    if (Bytes && (Offset & uint64_t(Bytes - 1)) != 0) {
      raiseTrap(TrapKind::MisalignedAccess, &I,
                formatString("misaligned %u-byte %s at address 0x%llx",
                             Bytes, opName(I),
                             static_cast<unsigned long long>(Address)),
                Address, Bytes, Lane);
      return faultScratch();
    }
    switch (addr::space(Address)) {
    case MemSpace::Global: {
      if (!Shared.Mem.isValidRange(Address, Bytes)) {
        raiseTrap(TrapKind::OutOfBoundsGlobal, &I,
                  formatString("out-of-bounds global %s of %u byte(s) at "
                               "offset 0x%llx",
                               opName(I), Bytes,
                               static_cast<unsigned long long>(Offset)),
                  Address, Bytes, Lane);
        return faultScratch();
      }
      // GlobalMemory's arena is stable during a launch.
      return const_cast<uint8_t *>(globalArenaAt(Offset));
    }
    case MemSpace::Shared: {
      CTAState *Cta = W.Cta;
      if (Offset + Bytes > Cta->Shared.size()) {
        raiseTrap(TrapKind::OutOfBoundsShared, &I,
                  formatString("out-of-bounds shared %s of %u byte(s) at "
                               "offset 0x%llx (CTA shared segment is %zu "
                               "bytes)",
                               opName(I), Bytes,
                               static_cast<unsigned long long>(Offset),
                               Cta->Shared.size()),
                  Address, Bytes, Lane);
        return faultScratch();
      }
      return Cta->Shared.data() + Offset;
    }
    case MemSpace::Local: {
      auto &Arena = W.LaneLocal[Lane];
      if (Offset + Bytes > Arena.size()) {
        raiseTrap(TrapKind::OutOfBoundsLocal, &I,
                  formatString("out-of-bounds local %s of %u byte(s) at "
                               "offset 0x%llx (lane arena is %zu bytes)",
                               opName(I), Bytes,
                               static_cast<unsigned long long>(Offset),
                               Arena.size()),
                  Address, Bytes, Lane);
        return faultScratch();
      }
      return Arena.data() + Offset;
    }
    }
    cuadv_unreachable("bad address space tag");
  }

  const uint8_t *globalArenaAt(uint64_t Offset) {
    // Use the checked scalar path once, then direct pointer access.
    // GlobalMemory validated the range already via isValidRange.
    return GlobalArenaBase + Offset;
  }

public:
  /// Set once per launch before run().
  const std::vector<RtValue> *KernelArgs = nullptr;
  const uint8_t *GlobalArenaBase = nullptr;

  /// Hook delivery for this SM: the sink events go to while running
  /// (serial: the device's profiler sink; parallel: this SM's private
  /// TraceShard) and the counter stamped into WarpContext::Seq (serial:
  /// one launch-wide counter; parallel: a per-SM counter whose values
  /// are rewritten during SM-major replay).
  void setHookDelivery(HookSink *S, uint64_t *SeqCounter) {
    Sink = S;
    Seq = SeqCounter;
  }

  /// \name Per-SM launch results, merged in id order by Device::launch.
  /// @{
  const KernelStats &stats() const { return Stat; }
  const LaunchTimeline &timeline() const { return TL; }
  const SmStallTable &stalls() const { return ST; }
  const std::shared_ptr<TrapRecord> &trap() const { return LocalTrap; }
  /// Events this SM delivered to its sink (== a shard's offered count
  /// when the sink is an unbounded TraceShard).
  uint64_t delivered() const { return Delivered; }
  /// @}

private:
  //===--------------------------------------------------------------------===//
  // Intrinsics and profiler hooks
  //===--------------------------------------------------------------------===//

  WarpContext hookContext(WarpExec &W) {
    WarpContext Ctx;
    Ctx.SmId = SmId;
    Ctx.CtaLinear = W.Cta->Linear;
    Ctx.CtaX = W.Cta->CtaX;
    Ctx.CtaY = W.Cta->CtaY;
    Ctx.WarpInCta = W.WarpInCta;
    Ctx.ValidMask = W.ValidMask;
    Ctx.Seq = (*Seq)++;
    return Ctx;
  }

  uint64_t execIntrinsic(WarpExec &W, Frame &F, SimtEntry &E,
                         const DInst &I, uint64_t &Issue,
                         uint64_t &DoneAt) {
    const unsigned WarpSize = Spec.WarpSize;
    uint32_t Mask = E.Mask;
    const Dim3 &Grid = Shared.Cfg.Grid;
    const Dim3 &Block = Shared.Cfg.Block;

    auto PerLaneInt = [&](auto Fn) {
      for (unsigned Lane = 0; Lane != WarpSize; ++Lane)
        if (Mask & (1u << Lane))
          setResult(F, I, Lane, WarpSize, RtValue::fromInt(Fn(Lane)));
    };
    auto PerLaneMathF32 = [&](auto Fn) {
      for (unsigned Lane = 0; Lane != WarpSize; ++Lane) {
        if (!(Mask & (1u << Lane)))
          continue;
        float A = float(operandValue(F, I.Args[0], Lane, WarpSize).F);
        float B = I.Args.size() > 1
                      ? float(operandValue(F, I.Args[1], Lane, WarpSize).F)
                      : 0.0f;
        setResult(F, I, Lane, WarpSize,
                  RtValue::fromFloat(double(Fn(A, B))));
      }
    };
    auto ThreadLinear = [&](unsigned Lane) {
      return W.WarpInCta * WarpSize + Lane;
    };

    switch (I.Intr) {
    case Intrinsic::TidX:
      PerLaneInt([&](unsigned Lane) { return ThreadLinear(Lane) % Block.X; });
      break;
    case Intrinsic::TidY:
      PerLaneInt([&](unsigned Lane) { return ThreadLinear(Lane) / Block.X; });
      break;
    case Intrinsic::CtaIdX:
      PerLaneInt([&](unsigned) { return W.Cta->CtaX; });
      break;
    case Intrinsic::CtaIdY:
      PerLaneInt([&](unsigned) { return W.Cta->CtaY; });
      break;
    case Intrinsic::NTidX:
      PerLaneInt([&](unsigned) { return Block.X; });
      break;
    case Intrinsic::NTidY:
      PerLaneInt([&](unsigned) { return Block.Y; });
      break;
    case Intrinsic::NCtaIdX:
      PerLaneInt([&](unsigned) { return Grid.X; });
      break;
    case Intrinsic::NCtaIdY:
      PerLaneInt([&](unsigned) { return Grid.Y; });
      break;
    case Intrinsic::SyncThreads: {
      if (E.Mask != W.ValidMask) {
        raiseTrap(TrapKind::DivergentBarrier, &I,
                  formatString("__syncthreads() under warp divergence "
                               "(active mask 0x%08x of 0x%08x)",
                               E.Mask, W.ValidMask));
        return 0;
      }
      ++E.Inst;
      W.State = WarpState::AtBarrier;
      ++W.Cta->WarpsAtBarrier;
      maybeReleaseBarrier(*W.Cta);
      return 0;
    }
    case Intrinsic::Sqrtf:
      PerLaneMathF32([](float A, float) { return std::sqrt(A); });
      ++E.Inst;
      return Spec.SfuLatency;
    case Intrinsic::Expf:
      PerLaneMathF32([](float A, float) { return std::exp(A); });
      ++E.Inst;
      return Spec.SfuLatency;
    case Intrinsic::Logf:
      PerLaneMathF32([](float A, float) { return std::log(A); });
      ++E.Inst;
      return Spec.SfuLatency;
    case Intrinsic::Fabsf:
      PerLaneMathF32([](float A, float) { return std::fabs(A); });
      ++E.Inst;
      return Spec.FpLatency;
    case Intrinsic::Fminf:
      PerLaneMathF32([](float A, float B) { return std::fmin(A, B); });
      ++E.Inst;
      return Spec.FpLatency;
    case Intrinsic::Fmaxf:
      PerLaneMathF32([](float A, float B) { return std::fmax(A, B); });
      ++E.Inst;
      return Spec.FpLatency;
    case Intrinsic::Powf:
      PerLaneMathF32([](float A, float B) { return std::pow(A, B); });
      ++E.Inst;
      return Spec.SfuLatency;

    case Intrinsic::RecordMem:
    case Intrinsic::RecordBlock:
    case Intrinsic::RecordCall:
    case Intrinsic::RecordRet:
    case Intrinsic::RecordArith: {
      if (Spec.Sampling.enabled() && samplerDecides(I.Intr)) {
        if (!hookSampled(W)) {
          // Sampled out: no event, no trace-buffer atomic. The hook
          // degenerates to the inlined check-and-branch, which is plain
          // (hideable) latency — this is the whole speedup of sampling.
          ++Stat.HookSampledOut;
          ++E.Inst;
          (void)Issue;
          return Spec.HookSkipCost;
        }
        ++Stat.HookSampledIn;
        // Sampled in: the sampling build's staged collector. The event
        // is delivered in full, but the warp only writes it to its
        // warp-local staging buffer (plain latency); every
        // HookFlushBatch-th record pays the serialized trace-buffer
        // reservation + bulk copy, amortizing the atomic round-trip.
        uint64_t Cost = dispatchHook(W, F, E, I);
        ++E.Inst;
        (void)Issue;
        if (++W.StagedRecords % std::max(1u, Spec.HookFlushBatch) != 0)
          return Spec.HookStageCost;
        uint64_t Start = std::max(Cycle, AtomicFreeAt);
        AtomicFreeAt = Start + Cost;
        DoneAt = AtomicFreeAt;
        W.WaitReason = StallReason::IssueContention;
        return 0;
      }
      // Exact profiling: the paper's reference hook. Trace-buffer
      // atomics serialize on the (per-SM share of the) atomic unit;
      // unlike plain latency this cannot be hidden by other warps,
      // which is what produces the paper's 10x-120x overheads.
      uint64_t Cost = dispatchHook(W, F, E, I);
      uint64_t Start = std::max(Cycle, AtomicFreeAt);
      AtomicFreeAt = Start + Cost;
      DoneAt = AtomicFreeAt;
      // Waiting on the serialized atomic unit is issue contention, not
      // a data dependency.
      W.WaitReason = StallReason::IssueContention;
      ++E.Inst;
      (void)Issue;
      return 0;
    }

    case Intrinsic::None:
      break;
    }
    if (I.Intr == Intrinsic::None)
      raiseTrap(TrapKind::InvalidProgram, &I,
                "call to non-intrinsic declaration");
    ++E.Inst;
    return Spec.IntLatency;
  }

  /// Whether the sampler decides this hook kind's fate. Warp mode
  /// decides every kind (a non-sampled warp contributes no events at
  /// all, so dropping its call/ret hooks is safe and maximizes the
  /// speedup); period mode decides only the optional kinds — call/ret
  /// always fire so every recorded event's call path is intact.
  bool samplerDecides(Intrinsic Intr) const {
    if (Spec.Sampling.M == SamplingSpec::Mode::Warp)
      return true;
    return Intr != Intrinsic::RecordCall && Intr != Intrinsic::RecordRet;
  }

  /// One sampling decision. Period mode consumes one tick of the per-SM
  /// counter per decision; the counter advances with the SM's own
  /// deterministic execution, never with host scheduling, so jobs=1 and
  /// jobs=N sample the same events.
  bool hookSampled(const WarpExec &W) {
    if (Spec.Sampling.M == SamplingSpec::Mode::Warp)
      return W.Sampled;
    return Spec.Sampling.samplePeriod(SampleCounter++);
  }

  /// Executes a cuadv.record.* hook: delivers the event to the sink and
  /// returns its simulated cost (trace-buffer atomics serialize).
  uint64_t dispatchHook(WarpExec &W, Frame &F, SimtEntry &E,
                        const DInst &I) {
    const unsigned WarpSize = Spec.WarpSize;
    uint32_t Mask = E.Mask;
    unsigned Lanes = std::popcount(Mask);
    ++Stat.HookInvocations;

    auto UniformInt = [&](unsigned ArgIdx) -> int64_t {
      unsigned Lane = std::countr_zero(Mask);
      return operandValue(F, I.Args[ArgIdx], Lane, WarpSize).I;
    };

    if (Sink) {
      ++Delivered;
      WarpContext Ctx = hookContext(W);
      switch (I.Intr) {
      case Intrinsic::RecordMem: {
        // (addr i64, bits i32, line i32, col i32, op i32, site i32)
        std::vector<MemLaneRecord> &LaneRecords = MemLaneScratch;
        LaneRecords.clear();
        LaneRecords.reserve(Lanes);
        for (unsigned Lane = 0; Lane != WarpSize; ++Lane)
          if (Mask & (1u << Lane))
            LaneRecords.push_back(
                {Lane, W.WarpInCta * WarpSize + Lane,
                 uint64_t(operandValue(F, I.Args[0], Lane, WarpSize).I)});
        Sink->onMemAccess(
            Ctx, uint32_t(UniformInt(5)), uint8_t(UniformInt(4)),
            uint32_t(UniformInt(1)), uint32_t(UniformInt(2)),
            uint32_t(UniformInt(3)), LaneRecords);
        break;
      }
      case Intrinsic::RecordBlock:
        Sink->onBlockEntry(Ctx, uint32_t(UniformInt(0)), Mask);
        break;
      case Intrinsic::RecordCall:
        Sink->onCallSite(Ctx, uint32_t(UniformInt(0)),
                         uint32_t(UniformInt(1)), Mask);
        break;
      case Intrinsic::RecordRet:
        Sink->onCallReturn(Ctx, uint32_t(UniformInt(0)), Mask);
        break;
      case Intrinsic::RecordArith: {
        std::vector<ArithLaneRecord> &LaneRecords = ArithLaneScratch;
        LaneRecords.clear();
        LaneRecords.reserve(Lanes);
        for (unsigned Lane = 0; Lane != WarpSize; ++Lane)
          if (Mask & (1u << Lane))
            LaneRecords.push_back(
                {Lane, operandValue(F, I.Args[2], Lane, WarpSize).F,
                 operandValue(F, I.Args[3], Lane, WarpSize).F});
        Sink->onArith(Ctx, uint32_t(UniformInt(0)),
                      uint8_t(UniformInt(1)), LaneRecords);
        break;
      }
      default:
        cuadv_unreachable("not a hook intrinsic");
      }
    }

    // Cost model: one trace-buffer atomic per active lane, serialized
    // device-wide (modelled as a contention multiplier).
    return Spec.HookBaseCost +
           uint64_t(Lanes) * Spec.HookAtomicCost * Spec.HookContentionFactor;
  }

  unsigned SmId;
  LaunchShared &Shared;
  const DeviceSpec &Spec;
  CacheModel L1;
  MSHRFile Mshr;
  /// In-flight line tracker for the bypass path (L2-level merging).
  MSHRFile L2Window;
  uint64_t Cycle = 0;
  uint64_t DramFreeAt = 0;
  uint64_t AtomicFreeAt = 0;
  std::vector<std::unique_ptr<CTAState>> Resident;
  std::deque<unsigned> Pending;
  /// Warp/mask being stepped, for trap attribution.
  WarpExec *CurWarp = nullptr;
  uint32_t CurMask = 0;
  /// This SM's share of the launch results. Nothing here is touched by
  /// another thread; Device::launch merges the shares in SM-id order
  /// after all SMs finish.
  KernelStats Stat;
  LaunchTimeline TL;
  SmStallTable ST;
  /// Next simulated cycle at which maybeSampleStalls() snapshots the
  /// cumulative counters into the timeline.
  uint64_t NextStallSample = 0;
  /// Whether the most recent globalLoadTiming() replayed on a full
  /// MSHR file (refines MemDependency into MshrFull).
  bool LastLoadMshrStalled = false;
  std::shared_ptr<TrapRecord> LocalTrap;
  /// Hook delivery target and sequence counter (see setHookDelivery).
  HookSink *Sink = nullptr;
  uint64_t *Seq = nullptr;
  uint64_t Delivered = 0;
  /// Period-mode sampling decisions made on this SM (see hookSampled).
  uint64_t SampleCounter = 0;
  /// Hot-path scratch storage, reused across instructions so the
  /// steady-state simulation loop performs no heap allocation.
  std::vector<LaneAccess> AccessScratch;
  std::vector<uint64_t> LineScratch;
  std::vector<MemLaneRecord> MemLaneScratch;
  std::vector<ArithLaneRecord> ArithLaneScratch;
  /// Recycled call frames (see acquireFrame/recycleFrame).
  std::vector<Frame> FramePool;
  /// Fault fallback line (see faultScratch); 8-aligned so the atomic
  /// guest-memory path can treat it like any naturally aligned address.
  alignas(8) uint8_t Scratch[16] = {};
};

/// Merges the per-SM stall tables of SMs [0, LastSm] SM-id-major into
/// one LaunchStallProfile, resolving instruction pointers to source
/// locations and interning calling-context nodes across SMs. Ordered
/// maps keyed by resolved locations make the output independent of the
/// jobs count and canonical (sites sorted by file/line/col/path/object).
void mergeStallTables(LaunchStallProfile &Out, const Program &P,
                      const std::vector<std::unique_ptr<SMSim>> &SMs,
                      unsigned NumSMs, unsigned LastSm,
                      const std::vector<uint64_t> &EndCycles,
                      uint64_t MaxCycle) {
  const ir::Context &Ctx = P.sourceModule().getContext();
  auto LocOf = [&Ctx](const DInst *I, std::string &File, uint32_t &Line,
                      uint32_t &Col) {
    File.clear();
    Line = Col = 0;
    if (I && I->Src && I->Src->getDebugLoc().isValid()) {
      const ir::DebugLoc &L = I->Src->getDebugLoc();
      File = Ctx.fileName(L.FileId);
      Line = L.Line;
      Col = L.Col;
    }
  };

  // Node 0: the kernel root (same for every SM).
  {
    LaunchStallProfile::PathNode Root;
    const SmStallTable::PathRec &R = SMs.empty()
                                         ? SmStallTable::PathRec{}
                                         : SMs[0]->stalls().Paths[0];
    if (R.Callee && R.Callee->Src)
      Root.Callee = R.Callee->Src->getName();
    Out.Paths.push_back(std::move(Root));
  }

  // (parent, callee, call-site file/line/col) -> merged node id.
  std::map<std::tuple<int32_t, std::string, std::string, uint32_t, uint32_t>,
           int32_t>
      PathIndex;
  // (file, line, col, path, object) -> per-reason cycles. An ordered
  // map, so flattening yields the canonical sorted site order.
  std::map<std::tuple<std::string, uint32_t, uint32_t, int32_t, uint64_t>,
           std::array<uint64_t, NumStallReasons>>
      SiteIndex;

  const unsigned Drain = static_cast<unsigned>(StallReason::Drain);
  for (unsigned S = 0; NumSMs && S <= LastSm; ++S) {
    const SmStallTable &T = SMs[S]->stalls();
    Out.IssuedCycles += T.Issued;
    for (unsigned R = 0; R != NumStallReasons; ++R) {
      Out.ReasonCycles[R] += T.ReasonCycles[R];
      for (unsigned B = 0; B != NumStallGapBuckets; ++B)
        Out.GapBuckets[R][B] += T.GapBuckets[R][B];
    }
    // Launch-tail drain: slots between this SM's end and the
    // launch-critical SM's end (the whole launch for a no-CTA SM).
    Out.ReasonCycles[Drain] += MaxCycle - EndCycles[S];

    // Re-intern this SM's calling-context nodes.
    std::vector<int32_t> Map(T.Paths.size(), 0);
    for (size_t I = 1; I < T.Paths.size(); ++I) {
      const SmStallTable::PathRec &PR = T.Paths[I];
      const int32_t Parent = Map[PR.Parent];
      std::string File;
      uint32_t Line, Col;
      LocOf(PR.CallSite, File, Line, Col);
      std::string Callee =
          PR.Callee && PR.Callee->Src ? PR.Callee->Src->getName() : "";
      auto Key = std::make_tuple(Parent, Callee, File, Line, Col);
      auto It = PathIndex.find(Key);
      if (It == PathIndex.end()) {
        LaunchStallProfile::PathNode N;
        N.Parent = Parent;
        N.Callee = std::move(Callee);
        N.File = File;
        N.Line = Line;
        N.Col = Col;
        It = PathIndex
                 .emplace(std::move(Key),
                          static_cast<int32_t>(Out.Paths.size()))
                 .first;
        Out.Paths.push_back(std::move(N));
      }
      Map[I] = It->second;
    }

    for (const SmStallTable::SiteRec &SR : T.Sites) {
      std::string File;
      uint32_t Line, Col;
      LocOf(SR.I, File, Line, Col);
      std::array<uint64_t, NumStallReasons> &Cells = SiteIndex[std::make_tuple(
          std::move(File), Line, Col, Map[SR.Path], SR.ObjectAddr)];
      for (unsigned R = 0; R != NumStallReasons; ++R)
        Cells[R] += SR.Reasons[R];
    }
  }

  Out.SmsExecuted = NumSMs ? LastSm + 1 : 0;
  Out.TotalSlots = static_cast<uint64_t>(Out.SmsExecuted) * MaxCycle;

  Out.Sites.reserve(SiteIndex.size());
  for (const auto &[Key, Cells] : SiteIndex) {
    LaunchStallProfile::SiteStall SS;
    SS.File = std::get<0>(Key);
    SS.Line = std::get<1>(Key);
    SS.Col = std::get<2>(Key);
    SS.Path = std::get<3>(Key);
    SS.ObjectAddr = std::get<4>(Key);
    for (unsigned R = 0; R != NumStallReasons; ++R)
      SS.Reasons[R] = Cells[R];
    Out.Sites.push_back(std::move(SS));
  }
}

} // namespace

/// Builds the KernelStats of a launch rejected before execution began.
static KernelStats invalidLaunch(const std::string &KernelName,
                                 std::string Message) {
  auto T = std::make_shared<TrapRecord>();
  T->Kind = TrapKind::InvalidLaunch;
  T->Kernel = KernelName;
  T->Message = std::move(Message);
  KernelStats Stats;
  Stats.Trap = std::move(T);
  return Stats;
}

KernelStats Device::launch(const Program &P, const std::string &KernelName,
                           const LaunchConfig &Cfg,
                           const std::vector<RtValue> &Args) {
  const DFunction *Kernel = P.findKernel(KernelName);
  if (!Kernel)
    return invalidLaunch(KernelName,
                         "launch of unknown kernel '" + KernelName + "'");
  if (Args.size() != Kernel->NumArgs)
    return invalidLaunch(
        KernelName,
        formatString("kernel '%s' expects %u arguments, got %zu",
                     KernelName.c_str(), Kernel->NumArgs, Args.size()));
  if (Cfg.Block.count() == 0 || Cfg.Grid.count() == 0)
    return invalidLaunch(KernelName, "empty launch configuration");
  if (Spec.WarpSize != 32)
    return invalidLaunch(
        KernelName,
        "the simulator requires WarpSize == 32 (activity masks are 32-bit "
        "and the profiler's thread numbering assumes NVIDIA warps)");
  if (Cfg.Block.count() > Spec.WarpSize * Spec.MaxWarpsPerSM)
    return invalidLaunch(KernelName, "CTA larger than an SM's warp capacity");

  LaunchShared Shared{P, *Kernel, Cfg, Spec, Memory};
  Shared.RecordTimeline = RecordTimeline;
  // Warp-mode sampling input: the deterministic launch number, assigned
  // on the single host thread in program order, before any SM worker
  // starts.
  Shared.LaunchSeq = LaunchSeq++;

  unsigned WarpsPerCTA =
      (Cfg.Block.count() + Spec.WarpSize - 1) / Spec.WarpSize;
  unsigned ResidentLimit =
      std::min(Spec.MaxCTAsPerSM,
               std::max(1u, Spec.MaxWarpsPerSM / std::max(1u, WarpsPerCTA)));

  // Static round-robin CTA assignment to SMs.
  std::vector<std::unique_ptr<SMSim>> SMs;
  unsigned NumSMs = Spec.NumSMs;
  for (unsigned S = 0; S != NumSMs; ++S)
    SMs.push_back(std::make_unique<SMSim>(S, Shared));
  unsigned TotalCTAs = Cfg.Grid.count();
  for (unsigned C = 0; C != TotalCTAs; ++C)
    SMs[C % NumSMs]->addPendingCTA(C);

  // The arena pointer is stable for the whole launch: the synchronous
  // runtime cannot call cudaMalloc while a kernel is in flight.
  const uint8_t *ArenaBase = Memory.arenaBase();
  for (auto &SM : SMs) {
    SM->KernelArgs = &Args;
    SM->GlobalArenaBase = ArenaBase;
  }

  const unsigned Jobs = std::min(Spec.resolveJobs(), NumSMs);
  std::vector<uint64_t> EndCycles(NumSMs, 0);
  std::vector<std::unique_ptr<TraceShard>> Shards;
  std::vector<LaunchTimeline::WorkerSpan> WorkerSpans;

  if (Jobs <= 1) {
    // Serial schedule — the historical code path bit-for-bit: SMs run to
    // completion in id order, hook events flow straight to the profiler
    // sink stamped from one launch-wide sequence counter, and a guest
    // fault stops the loop so later SMs never run.
    uint64_t SerialSeq = 0;
    for (auto &SM : SMs)
      SM->setHookDelivery(Hooks, &SerialSeq);
    for (unsigned S = 0; S != NumSMs; ++S) {
      EndCycles[S] = SMs[S]->run(ResidentLimit);
      if (SMs[S]->trap())
        break;
    }
  } else {
    // Parallel schedule: a pool of host workers pulls SM ids from an
    // atomic counter. Each SM records hook events into a private
    // TraceShard with a private sequence counter; guest global memory
    // goes through relaxed host atomics; traps enter lowest-id-wins
    // arbitration. After the join everything is merged in SM-id order,
    // which reproduces the serial schedule's output exactly.
    Shared.AtomicGuestMem = true;
    std::vector<uint64_t> SmSeq(NumSMs, 0);
    Shards.resize(NumSMs);
    for (unsigned S = 0; S != NumSMs; ++S) {
      if (Hooks)
        Shards[S] =
            std::make_unique<TraceShard>(S, Spec.ShardCapacityEvents);
      SMs[S]->setHookDelivery(Shards[S].get(), &SmSeq[S]);
    }
    if (RecordTimeline)
      WorkerSpans.resize(NumSMs);
    const auto Epoch = std::chrono::steady_clock::now();
    std::atomic<unsigned> NextSm{0};
    std::vector<std::thread> Pool;
    Pool.reserve(Jobs);
    for (unsigned WI = 0; WI != Jobs; ++WI)
      Pool.emplace_back([&, WI] {
        for (unsigned S = NextSm.fetch_add(1, std::memory_order_relaxed);
             S < NumSMs;
             S = NextSm.fetch_add(1, std::memory_order_relaxed)) {
          const auto T0 = std::chrono::steady_clock::now();
          EndCycles[S] = SMs[S]->run(ResidentLimit);
          if (RecordTimeline) {
            const auto T1 = std::chrono::steady_clock::now();
            using std::chrono::duration_cast;
            using std::chrono::microseconds;
            WorkerSpans[S] = {
                WI, S,
                uint64_t(duration_cast<microseconds>(T0 - Epoch).count()),
                uint64_t(duration_cast<microseconds>(T1 - Epoch).count())};
          }
        }
      });
    for (std::thread &T : Pool)
      T.join();
  }

  // First-trap-wins: results of SMs above the winning (lowest) trapping
  // id are discarded — the serial schedule never runs them. Workers may
  // have partially simulated them before noticing the trap; that work is
  // thrown away, not merged.
  const unsigned TrapSm = Shared.TrapSm.load(std::memory_order_acquire);
  const unsigned LastSm =
      std::min(TrapSm, NumSMs ? NumSMs - 1 : 0); // Inclusive merge bound.

  KernelStats Stats;
  Stats.ResidentCTAsPerSM = ResidentLimit;
  std::shared_ptr<LaunchTimeline> Timeline;
  if (RecordTimeline)
    Timeline = std::make_shared<LaunchTimeline>();

  // SM-major merge: summing counters and concatenating timelines in id
  // order reproduces the serial schedule's incremental accumulation.
  uint64_t MaxCycle = 0;
  for (unsigned S = 0; NumSMs && S <= LastSm; ++S) {
    const KernelStats &SS = SMs[S]->stats();
    Stats.WarpInstructions += SS.WarpInstructions;
    Stats.GlobalLoadTransactions += SS.GlobalLoadTransactions;
    Stats.GlobalStoreTransactions += SS.GlobalStoreTransactions;
    Stats.SharedAccesses += SS.SharedAccesses;
    Stats.BypassedTransactions += SS.BypassedTransactions;
    Stats.HookInvocations += SS.HookInvocations;
    Stats.HookSampledIn += SS.HookSampledIn;
    Stats.HookSampledOut += SS.HookSampledOut;
    Stats.SampledCtas += SS.SampledCtas;
    Stats.MshrMerges += SS.MshrMerges;
    Stats.MshrStalls += SS.MshrStalls;
    Stats.Barriers += SS.Barriers;
    Stats.SchedulerStallCycles += SS.SchedulerStallCycles;
    Stats.L1.LoadHits += SS.L1.LoadHits;
    Stats.L1.LoadMisses += SS.L1.LoadMisses;
    Stats.L1.StoreEvictions += SS.L1.StoreEvictions;
    Stats.L1.Stores += SS.L1.Stores;
    MaxCycle = std::max(MaxCycle, EndCycles[S]);

    ShardSummary Sum;
    Sum.SmId = S;
    Sum.EndCycle = EndCycles[S];
    if (S < Shards.size() && Shards[S]) {
      Sum.HookEventsOffered = Shards[S]->offered();
      Sum.HookEventsRetained = Shards[S]->retained();
      Sum.HookEventsDropped = Shards[S]->dropped();
    } else {
      // Serial (or hook-less) run: every delivered event was retained,
      // matching an unbounded shard's accounting exactly.
      Sum.HookEventsOffered = SMs[S]->delivered();
      Sum.HookEventsRetained = SMs[S]->delivered();
    }
    Stats.Shards.push_back(Sum);

    if (Timeline) {
      const LaunchTimeline &TL = SMs[S]->timeline();
      Timeline->Ctas.insert(Timeline->Ctas.end(), TL.Ctas.begin(),
                            TL.Ctas.end());
      Timeline->Barriers.insert(Timeline->Barriers.end(),
                                TL.Barriers.begin(), TL.Barriers.end());
      Timeline->SmEndCycles.push_back(EndCycles[S]);
      Timeline->StallSamples.insert(Timeline->StallSamples.end(),
                                    TL.StallSamples.begin(),
                                    TL.StallSamples.end());
    }
  }
  if (Timeline)
    for (unsigned S = 0; S < WorkerSpans.size(); ++S)
      Timeline->Workers.push_back(WorkerSpans[S]);

  // Replay the surviving shards into the real profiler sink in SM-id
  // order, rewriting sequence numbers from a fresh launch-wide counter:
  // the delivery stream (and thus every report and metric downstream) is
  // byte-identical to the serial schedule's.
  if (Hooks && !Shards.empty()) {
    uint64_t ReplaySeq = 0;
    for (unsigned S = 0; NumSMs && S <= LastSm; ++S)
      if (Shards[S])
        Shards[S]->replayInto(*Hooks, ReplaySeq);
  }

  Stats.Cycles = MaxCycle;
  // Cycle accounting: merge the per-SM stall tables SM-id-major into
  // the launch profile, closing the conservation identity
  // Issued + sum(Reasons) == SmsExecuted * Cycles via the drain term.
  {
    auto Stalls = std::make_shared<LaunchStallProfile>();
    mergeStallTables(*Stalls, P, SMs, NumSMs, LastSm, EndCycles, MaxCycle);
    Stats.Stalls = std::move(Stalls);
  }
  Stats.Timeline = std::move(Timeline);
  if (TrapSm != ~0u)
    Stats.Trap = SMs[TrapSm]->trap();
  return Stats;
}
