//===- gpusim/Program.cpp - Decoded device programs ---------------------------===//

#include "gpusim/Program.h"

#include "gpusim/Address.h"
#include "ir/CFG.h"
#include "ir/Casting.h"
#include "ir/Dominators.h"
#include "ir/Verifier.h"
#include "support/Error.h"

#include <unordered_map>

using namespace cuadv;
using namespace cuadv::gpusim;
using namespace cuadv::ir;

Intrinsic gpusim::intrinsicByName(const std::string &Name) {
  static const std::pair<const char *, Intrinsic> Table[] = {
      {"cuadv.tid.x", Intrinsic::TidX},
      {"cuadv.tid.y", Intrinsic::TidY},
      {"cuadv.ctaid.x", Intrinsic::CtaIdX},
      {"cuadv.ctaid.y", Intrinsic::CtaIdY},
      {"cuadv.ntid.x", Intrinsic::NTidX},
      {"cuadv.ntid.y", Intrinsic::NTidY},
      {"cuadv.nctaid.x", Intrinsic::NCtaIdX},
      {"cuadv.nctaid.y", Intrinsic::NCtaIdY},
      {"cuadv.syncthreads", Intrinsic::SyncThreads},
      {"cuadv.sqrtf", Intrinsic::Sqrtf},
      {"cuadv.expf", Intrinsic::Expf},
      {"cuadv.logf", Intrinsic::Logf},
      {"cuadv.fabsf", Intrinsic::Fabsf},
      {"cuadv.fminf", Intrinsic::Fminf},
      {"cuadv.fmaxf", Intrinsic::Fmaxf},
      {"cuadv.powf", Intrinsic::Powf},
      {"cuadv.record.mem", Intrinsic::RecordMem},
      {"cuadv.record.bb", Intrinsic::RecordBlock},
      {"cuadv.record.call", Intrinsic::RecordCall},
      {"cuadv.record.ret", Intrinsic::RecordRet},
      {"cuadv.record.arith", Intrinsic::RecordArith},
  };
  for (const auto &[Spelling, Intr] : Table)
    if (Name == Spelling)
      return Intr;
  return Intrinsic::None;
}

const char *gpusim::intrinsicName(Intrinsic Intr) {
  switch (Intr) {
  case Intrinsic::None:
    return "<none>";
  case Intrinsic::TidX:
    return "cuadv.tid.x";
  case Intrinsic::TidY:
    return "cuadv.tid.y";
  case Intrinsic::CtaIdX:
    return "cuadv.ctaid.x";
  case Intrinsic::CtaIdY:
    return "cuadv.ctaid.y";
  case Intrinsic::NTidX:
    return "cuadv.ntid.x";
  case Intrinsic::NTidY:
    return "cuadv.ntid.y";
  case Intrinsic::NCtaIdX:
    return "cuadv.nctaid.x";
  case Intrinsic::NCtaIdY:
    return "cuadv.nctaid.y";
  case Intrinsic::SyncThreads:
    return "cuadv.syncthreads";
  case Intrinsic::Sqrtf:
    return "cuadv.sqrtf";
  case Intrinsic::Expf:
    return "cuadv.expf";
  case Intrinsic::Logf:
    return "cuadv.logf";
  case Intrinsic::Fabsf:
    return "cuadv.fabsf";
  case Intrinsic::Fminf:
    return "cuadv.fminf";
  case Intrinsic::Fmaxf:
    return "cuadv.fmaxf";
  case Intrinsic::Powf:
    return "cuadv.powf";
  case Intrinsic::RecordMem:
    return "cuadv.record.mem";
  case Intrinsic::RecordBlock:
    return "cuadv.record.bb";
  case Intrinsic::RecordCall:
    return "cuadv.record.call";
  case Intrinsic::RecordRet:
    return "cuadv.record.ret";
  case Intrinsic::RecordArith:
    return "cuadv.record.arith";
  }
  cuadv_unreachable("invalid intrinsic");
}

bool gpusim::isHookIntrinsic(Intrinsic Intr) {
  switch (Intr) {
  case Intrinsic::RecordMem:
  case Intrinsic::RecordBlock:
  case Intrinsic::RecordCall:
  case Intrinsic::RecordRet:
  case Intrinsic::RecordArith:
    return true;
  default:
    return false;
  }
}

namespace {

/// Decodes one function definition.
class FunctionDecoder {
public:
  FunctionDecoder(const Function &F, const VerticalBypassPlan &Bypass,
                  const std::unordered_map<const ir::Function *, int32_t>
                      &IndexByFunction)
      : F(F), Bypass(Bypass), IndexByFunction(IndexByFunction) {}

  std::unique_ptr<DFunction> run() {
    auto D = std::make_unique<DFunction>();
    D->Src = &F;
    D->IsKernel = F.isKernel();
    D->NumArgs = F.getNumArgs();

    // Slot numbering: arguments first, then value-producing instructions.
    for (unsigned I = 0, E = F.getNumArgs(); I != E; ++I)
      Slots[F.getArg(I)] = static_cast<int32_t>(I);
    int32_t Next = static_cast<int32_t>(F.getNumArgs());
    for (BasicBlock *BB : F) {
      BlockIndex[BB] = static_cast<int32_t>(BlockIndex.size());
      for (Instruction *Inst : *BB)
        if (!Inst->getType()->isVoid())
          Slots[Inst] = Next++;
    }
    D->NumSlots = static_cast<uint32_t>(Next);

    // Static frame layout for allocas (entry block only, verified).
    layoutAllocas(*D);

    // Reconvergence points from the post-dominator tree.
    CFGInfo CFG(F);
    DominatorTree PDT(F, CFG, /*Post=*/true);

    for (BasicBlock *BB : F) {
      DBlock DB;
      DB.Src = BB;
      if (BasicBlock *IPDom = PDT.getIDom(BB))
        DB.Reconv = BlockIndex.at(IPDom);
      for (Instruction *Inst : *BB)
        DB.Insts.push_back(decodeInst(*Inst));
      D->Blocks.push_back(std::move(DB));
    }
    return D;
  }

private:
  void layoutAllocas(DFunction &D) {
    BasicBlock *Entry = F.getEntryBlock();
    if (!Entry)
      return;
    uint32_t LocalOffset = 0;
    uint32_t SharedOffset = 0;
    for (Instruction *Inst : *Entry) {
      auto *AI = dyn_cast<AllocaInst>(Inst);
      if (!AI)
        continue;
      uint32_t Bytes = static_cast<uint32_t>(AI->allocationBytes());
      uint32_t Align = AI->getAllocatedType()->sizeInBytes();
      uint32_t &Offset = AI->getAddrSpace() == AddrSpace::Shared
                             ? SharedOffset
                             : LocalOffset;
      Offset = (Offset + Align - 1) / Align * Align;
      AllocaOffsets[AI] = Offset;
      Offset += Bytes;
    }
    D.LocalBytes = (LocalOffset + 7) & ~uint32_t(7);
    D.SharedBytes = (SharedOffset + 7) & ~uint32_t(7);
  }

  DOperand operand(const Value *V) const {
    DOperand Op;
    if (const auto *CI = dyn_cast<ConstantInt>(V)) {
      Op.K = DOperand::Kind::ImmInt;
      Op.ImmInt = CI->getValue();
      return Op;
    }
    if (const auto *CF = dyn_cast<ConstantFP>(V)) {
      Op.K = DOperand::Kind::ImmFP;
      Op.ImmFP = CF->getValue();
      return Op;
    }
    auto It = Slots.find(V);
    if (It == Slots.end())
      reportFatalError("decoder: operand without a slot in @" + F.getName());
    Op.K = DOperand::Kind::Slot;
    Op.Slot = It->second;
    return Op;
  }

  DInst decodeInst(const Instruction &Inst) {
    DInst D;
    D.Src = &Inst;
    if (!Inst.getType()->isVoid())
      D.Result = Slots.at(&Inst);

    switch (Inst.getKind()) {
    case ValueKind::Alloca: {
      const auto &AI = cast<AllocaInst>(Inst);
      D.Op = DOp::Alloca;
      D.Space = static_cast<uint8_t>(AI.getAddrSpace() == AddrSpace::Shared
                                         ? MemSpace::Shared
                                         : MemSpace::Local);
      D.AllocaOffset = AllocaOffsets.at(&AI);
      break;
    }
    case ValueKind::Load: {
      const auto &LI = cast<LoadInst>(Inst);
      D.Op = DOp::Load;
      D.A = operand(LI.getPointerOperand());
      D.Ty = LI.getType();
      D.ElemBytes = LI.getType()->sizeInBytes();
      D.Space = spaceOf(LI.getAddrSpace());
      D.BypassL1 = !Bypass.empty() && LI.getDebugLoc().isValid() &&
                   Bypass.matches(LI.getDebugLoc());
      break;
    }
    case ValueKind::Store: {
      const auto &SI = cast<StoreInst>(Inst);
      D.Op = DOp::Store;
      D.A = operand(SI.getValueOperand());
      D.B = operand(SI.getPointerOperand());
      D.Ty = SI.getValueOperand()->getType();
      D.ElemBytes = D.Ty->sizeInBytes();
      D.Space = spaceOf(SI.getAddrSpace());
      break;
    }
    case ValueKind::GEP: {
      const auto &G = cast<GEPInst>(Inst);
      D.Op = DOp::GEP;
      D.A = operand(G.getPointerOperand());
      D.B = operand(G.getIndexOperand());
      D.ElemBytes = G.getType()->getPointee()->sizeInBytes();
      break;
    }
    case ValueKind::Binary: {
      const auto &BI = cast<BinaryInst>(Inst);
      D.Op = DOp::Binary;
      D.Sub = static_cast<uint8_t>(BI.getOp());
      D.A = operand(BI.getLHS());
      D.B = operand(BI.getRHS());
      D.Ty = BI.getType();
      break;
    }
    case ValueKind::Cmp: {
      const auto &CI = cast<CmpInst>(Inst);
      D.Op = DOp::Cmp;
      D.Sub = static_cast<uint8_t>(CI.getPred());
      D.A = operand(CI.getLHS());
      D.B = operand(CI.getRHS());
      D.Ty = CI.getLHS()->getType();
      break;
    }
    case ValueKind::Cast: {
      const auto &CI = cast<CastInst>(Inst);
      D.Op = DOp::Cast;
      D.Sub = static_cast<uint8_t>(CI.getOp());
      D.A = operand(CI.getOperand(0));
      D.Ty = CI.getType();
      break;
    }
    case ValueKind::Call: {
      const auto &CI = cast<CallInst>(Inst);
      for (unsigned I = 0, E = CI.getNumArgs(); I != E; ++I)
        D.Args.push_back(operand(CI.getArg(I)));
      D.Ty = CI.getType();
      const Function *Callee = CI.getCallee();
      if (Callee->isDeclaration()) {
        Intrinsic Intr = intrinsicByName(Callee->getName());
        if (Intr == Intrinsic::None)
          reportFatalError("call to unknown declaration @" +
                           Callee->getName() +
                           " (not an intrinsic, has no body)");
        D.Op = DOp::Intrin;
        D.Intr = Intr;
      } else {
        D.Op = DOp::Call;
        auto It = IndexByFunction.find(Callee);
        if (It == IndexByFunction.end())
          reportFatalError("decoder: callee @" + Callee->getName() +
                           " not decoded");
        D.Callee = It->second;
      }
      break;
    }
    case ValueKind::Select: {
      const auto &SI = cast<SelectInst>(Inst);
      D.Op = DOp::Select;
      D.A = operand(SI.getCond());
      D.B = operand(SI.getTrueValue());
      D.C = operand(SI.getFalseValue());
      D.Ty = SI.getType();
      break;
    }
    case ValueKind::Branch: {
      const auto &BI = cast<BranchInst>(Inst);
      if (BI.isConditional()) {
        D.Op = DOp::CondBr;
        D.A = operand(BI.getCondition());
        D.Succ0 = BlockIndex.at(BI.getSuccessor(0));
        D.Succ1 = BlockIndex.at(BI.getSuccessor(1));
      } else {
        D.Op = DOp::Br;
        D.Succ0 = BlockIndex.at(BI.getSuccessor(0));
      }
      break;
    }
    case ValueKind::Return: {
      const auto &RI = cast<ReturnInst>(Inst);
      D.Op = DOp::Ret;
      if (RI.hasReturnValue()) {
        D.A = operand(RI.getReturnValue());
        D.Ty = RI.getReturnValue()->getType();
      }
      break;
    }
    default:
      cuadv_unreachable("unknown instruction kind in decoder");
    }
    return D;
  }

  static uint8_t spaceOf(AddrSpace AS) {
    switch (AS) {
    case AddrSpace::Global:
    case AddrSpace::Generic:
      return static_cast<uint8_t>(MemSpace::Global);
    case AddrSpace::Shared:
      return static_cast<uint8_t>(MemSpace::Shared);
    case AddrSpace::Local:
      return static_cast<uint8_t>(MemSpace::Local);
    }
    cuadv_unreachable("invalid address space");
  }

  const Function &F;
  const VerticalBypassPlan &Bypass;
  const std::unordered_map<const ir::Function *, int32_t> &IndexByFunction;
  std::unordered_map<const Value *, int32_t> Slots;
  std::unordered_map<const BasicBlock *, int32_t> BlockIndex;
  std::unordered_map<const AllocaInst *, uint32_t> AllocaOffsets;
};

} // namespace

std::unique_ptr<Program> Program::compile(const ir::Module &M,
                                          const VerticalBypassPlan &Bypass) {
  std::vector<std::string> Errors;
  if (!verifyModule(M, Errors))
    reportFatalError("cannot decode malformed module: " + Errors.front());

  std::unique_ptr<Program> P(new Program());
  P->M = &M;

  // Index all definitions first so calls can be forward references.
  for (Function *F : M)
    if (!F->isDeclaration()) {
      P->IndexByFunction[F] = static_cast<int32_t>(P->Functions.size());
      P->Functions.push_back(nullptr);
    }

  for (Function *F : M)
    if (!F->isDeclaration()) {
      FunctionDecoder Decoder(*F, Bypass, P->IndexByFunction);
      P->Functions[P->IndexByFunction[F]] = Decoder.run();
    }
  return P;
}

const DFunction *Program::findKernel(const std::string &Name) const {
  const ir::Function *F = M->getFunction(Name);
  if (!F || F->isDeclaration() || !F->isKernel())
    return nullptr;
  auto It = IndexByFunction.find(F);
  return It == IndexByFunction.end() ? nullptr
                                     : Functions[It->second].get();
}

int32_t Program::indexOf(const ir::Function *F) const {
  auto It = IndexByFunction.find(F);
  return It == IndexByFunction.end() ? -1 : It->second;
}
