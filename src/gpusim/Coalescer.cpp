//===- gpusim/Coalescer.cpp - Memory coalescing unit -------------------------===//

#include "gpusim/Coalescer.h"

#include <algorithm>

using namespace cuadv;
using namespace cuadv::gpusim;

void gpusim::coalesce(const std::vector<LaneAccess> &Accesses,
                      unsigned LineBytes, std::vector<uint64_t> &Lines) {
  Lines.clear();
  for (const LaneAccess &A : Accesses) {
    uint64_t First = A.Address / LineBytes;
    uint64_t Last = (A.Address + std::max(1u, A.Bytes) - 1) / LineBytes;
    for (uint64_t Line = First; Line <= Last; ++Line)
      if (std::find(Lines.begin(), Lines.end(), Line) == Lines.end())
        Lines.push_back(Line);
  }
}

std::vector<uint64_t> gpusim::coalesce(const std::vector<LaneAccess> &Accesses,
                                       unsigned LineBytes) {
  std::vector<uint64_t> Lines;
  coalesce(Accesses, LineBytes, Lines);
  return Lines;
}
