//===- gpusim/MSHR.cpp - Miss-status holding registers ----------------------===//

#include "gpusim/MSHR.h"

#include <algorithm>

using namespace cuadv;
using namespace cuadv::gpusim;

void MSHRFile::expire(uint64_t NowCycle) {
  Pending.erase(std::remove_if(Pending.begin(), Pending.end(),
                               [NowCycle](const Entry &E) {
                                 return E.ReadyCycle <= NowCycle;
                               }),
                Pending.end());
}

unsigned MSHRFile::entriesInUse(uint64_t NowCycle) const {
  unsigned Count = 0;
  for (const Entry &E : Pending)
    if (E.ReadyCycle > NowCycle)
      ++Count;
  return Count;
}

MSHRFile::Result MSHRFile::registerMiss(uint64_t LineAddr, uint64_t NowCycle,
                                        uint64_t MissLatency,
                                        uint64_t FullPenalty) {
  expire(NowCycle);

  // Merge into a pending entry for the same line.
  for (const Entry &E : Pending)
    if (E.LineAddr == LineAddr) {
      ++Merges;
      return {E.ReadyCycle, /*Merged=*/true, /*Stalled=*/false};
    }

  bool Stalled = false;
  uint64_t IssueCycle = NowCycle;
  if (Pending.size() >= NumEntries) {
    // Wait until the earliest entry frees, plus an arbitration penalty.
    ++Stalls;
    Stalled = true;
    auto Earliest = std::min_element(Pending.begin(), Pending.end(),
                                     [](const Entry &A, const Entry &B) {
                                       return A.ReadyCycle < B.ReadyCycle;
                                     });
    IssueCycle = Earliest->ReadyCycle + FullPenalty;
    Pending.erase(Earliest);
  }

  uint64_t Ready = IssueCycle + MissLatency;
  Pending.push_back({LineAddr, Ready});
  return {Ready, /*Merged=*/false, Stalled};
}
