//===- gpusim/Hooks.h - Profiler hook sink interface ----------------*- C++ -*-===//
//
// Part of the CUDAAdvisor reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The device-side hook interface: when instrumented code calls a
/// cuadv.record.* intrinsic, the interpreter packages the per-warp event
/// and delivers it to the attached HookSink (the profiler). This is the
/// analogue of the paper's device-resident Record() function appending to
/// a global-memory trace buffer; the simulator separately charges the
/// atomic/serialization cost in its timing model.
///
//===----------------------------------------------------------------------===//

#ifndef CUADV_GPUSIM_HOOKS_H
#define CUADV_GPUSIM_HOOKS_H

#include <cstdint>
#include <vector>

namespace cuadv {
namespace gpusim {

/// Identity of the warp delivering a hook event.
struct WarpContext {
  unsigned SmId = 0;
  unsigned CtaLinear = 0; ///< Flattened CTA index (CtaY * GridX + CtaX).
  unsigned CtaX = 0;
  unsigned CtaY = 0;
  unsigned WarpInCta = 0;
  /// Lanes holding live threads (partial last warp has fewer).
  uint32_t ValidMask = 0;
  /// Monotonic per-launch event sequence number.
  uint64_t Seq = 0;
};

/// Per-lane payload of a memory-access record.
struct MemLaneRecord {
  unsigned Lane;
  unsigned ThreadLinear; ///< Thread index within the CTA.
  uint64_t Address;      ///< Tagged simulated address.
};

/// Per-lane payload of an arithmetic record (operand values as f64).
struct ArithLaneRecord {
  unsigned Lane;
  double LHS;
  double RHS;
};

/// Receives profiler-hook events from the interpreter. Implemented by the
/// CUDAAdvisor profiler; a null sink means hooks are executed for cost
/// only.
class HookSink {
public:
  virtual ~HookSink();

  /// cuadv.record.mem(addr, bits, line, col, op, site) under \p Active.
  /// \p OpKind is 1 for loads, 2 for stores (paper Listing 1 passes 1).
  virtual void onMemAccess(const WarpContext &Ctx, uint32_t SiteId,
                           uint8_t OpKind, uint32_t Bits, uint32_t Line,
                           uint32_t Col,
                           const std::vector<MemLaneRecord> &Lanes) = 0;

  /// cuadv.record.bb(site): basic-block entry under \p ActiveMask.
  virtual void onBlockEntry(const WarpContext &Ctx, uint32_t SiteId,
                            uint32_t ActiveMask) = 0;

  /// cuadv.record.call(funcId, site): call-site push (caller side).
  virtual void onCallSite(const WarpContext &Ctx, uint32_t FuncId,
                          uint32_t SiteId, uint32_t ActiveMask) = 0;

  /// cuadv.record.ret(funcId): call-site pop (caller side).
  virtual void onCallReturn(const WarpContext &Ctx, uint32_t FuncId,
                            uint32_t ActiveMask) = 0;

  /// cuadv.record.arith(site, op): arithmetic operation with operand
  /// values per lane.
  virtual void onArith(const WarpContext &Ctx, uint32_t SiteId,
                       uint8_t OpKind,
                       const std::vector<ArithLaneRecord> &Lanes) = 0;
};

} // namespace gpusim
} // namespace cuadv

#endif // CUADV_GPUSIM_HOOKS_H
