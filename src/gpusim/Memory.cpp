//===- gpusim/Memory.cpp - Device global memory -----------------------------===//

#include "gpusim/Memory.h"

#include "support/Error.h"
#include "support/Format.h"

#include <algorithm>

using namespace cuadv;
using namespace cuadv::gpusim;

uint64_t GlobalMemory::allocate(uint64_t Bytes) {
  if (Bytes == 0)
    Bytes = 1;
  uint64_t Start = NextOffset;
  uint64_t End = Start + Bytes;
  NextOffset = (End + 255) & ~uint64_t(255);
  if (Arena.size() < NextOffset)
    Arena.resize(NextOffset, 0);
  Allocations.push_back({Start, End, /*Live=*/true});
  ++LiveAllocations;
  return addr::make(MemSpace::Global, Start);
}

bool GlobalMemory::free(uint64_t Address) {
  uint64_t Offset = addr::offset(Address);
  for (Allocation &A : Allocations)
    if (A.Start == Offset && A.Live) {
      A.Live = false;
      --LiveAllocations;
      return true;
    }
  return false;
}

const GlobalMemory::Allocation *
GlobalMemory::findAllocation(uint64_t Offset) const {
  // Allocations is sorted by Start (bump allocation order).
  auto It = std::upper_bound(
      Allocations.begin(), Allocations.end(), Offset,
      [](uint64_t Off, const Allocation &A) { return Off < A.Start; });
  if (It == Allocations.begin())
    return nullptr;
  --It;
  if (Offset >= It->Start && Offset < It->End)
    return &*It;
  return nullptr;
}

bool GlobalMemory::isValidRange(uint64_t Address, uint64_t Bytes) const {
  if (!addr::isGlobal(Address) || Bytes == 0)
    return false;
  uint64_t Offset = addr::offset(Address);
  const Allocation *A = findAllocation(Offset);
  return A && A->Live && Offset + Bytes <= A->End;
}

void GlobalMemory::checkRange(uint64_t Address, uint64_t Bytes,
                              bool IsWrite) const {
  if (isValidRange(Address, Bytes))
    return;
  reportFatalError(formatString(
      "invalid device %s of %llu byte(s) at global offset 0x%llx "
      "(allocated arena: %llu bytes, %zu live allocations)",
      IsWrite ? "write" : "read", static_cast<unsigned long long>(Bytes),
      static_cast<unsigned long long>(addr::offset(Address)),
      static_cast<unsigned long long>(NextOffset), LiveAllocations));
}

void GlobalMemory::write(uint64_t Address, const void *Src, uint64_t Bytes) {
  if (Bytes == 0)
    return;
  checkRange(Address, Bytes, /*IsWrite=*/true);
  std::memcpy(Arena.data() + addr::offset(Address), Src, Bytes);
}

void GlobalMemory::read(uint64_t Address, void *Dst, uint64_t Bytes) const {
  if (Bytes == 0)
    return;
  checkRange(Address, Bytes, /*IsWrite=*/false);
  std::memcpy(Dst, Arena.data() + addr::offset(Address), Bytes);
}
