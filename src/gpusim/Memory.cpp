//===- gpusim/Memory.cpp - Device global memory -----------------------------===//

#include "gpusim/Memory.h"

#include "support/Error.h"
#include "support/Format.h"

#include <algorithm>

using namespace cuadv;
using namespace cuadv::gpusim;

uint64_t GlobalMemory::allocate(uint64_t Bytes) {
  if (Bytes == 0)
    Bytes = 1;
  uint64_t Start = NextOffset;
  uint64_t End = Start + Bytes;
  if (End < Start) // Offset overflow: unsatisfiable request.
    return 0;
  uint64_t NewNext = (End + 255) & ~uint64_t(255);
  if (CapacityBytes && NewNext > CapacityBytes)
    return 0; // Device OOM; the runtime maps this to an error code.
  NextOffset = NewNext;
  if (Arena.size() < NextOffset)
    Arena.resize(NextOffset, 0);
  Allocations.push_back({Start, End, /*Live=*/true});
  ++LiveAllocations;
  return addr::make(MemSpace::Global, Start);
}

bool GlobalMemory::free(uint64_t Address) {
  uint64_t Offset = addr::offset(Address);
  for (Allocation &A : Allocations)
    if (A.Start == Offset && A.Live) {
      A.Live = false;
      --LiveAllocations;
      return true;
    }
  return false;
}

const GlobalMemory::Allocation *
GlobalMemory::findAllocation(uint64_t Offset) const {
  // Allocations is sorted by Start (bump allocation order).
  auto It = std::upper_bound(
      Allocations.begin(), Allocations.end(), Offset,
      [](uint64_t Off, const Allocation &A) { return Off < A.Start; });
  if (It == Allocations.begin())
    return nullptr;
  --It;
  if (Offset >= It->Start && Offset < It->End)
    return &*It;
  return nullptr;
}

uint64_t GlobalMemory::allocationBase(uint64_t Address) const {
  if (!addr::isGlobal(Address))
    return 0;
  const Allocation *A = findAllocation(addr::offset(Address));
  return A ? addr::make(MemSpace::Global, A->Start) : 0;
}

bool GlobalMemory::isValidRange(uint64_t Address, uint64_t Bytes) const {
  if (!addr::isGlobal(Address) || Bytes == 0)
    return false;
  uint64_t Offset = addr::offset(Address);
  const Allocation *A = findAllocation(Offset);
  return A && A->Live && Offset + Bytes <= A->End;
}

std::string GlobalMemory::describeRange(uint64_t Address, uint64_t Bytes,
                                        bool IsWrite) const {
  return formatString(
      "invalid device %s of %llu byte(s) at global offset 0x%llx "
      "(allocated arena: %llu bytes, %zu live allocations)",
      IsWrite ? "write" : "read", static_cast<unsigned long long>(Bytes),
      static_cast<unsigned long long>(addr::offset(Address)),
      static_cast<unsigned long long>(NextOffset), LiveAllocations);
}

void GlobalMemory::checkRange(uint64_t Address, uint64_t Bytes,
                              bool IsWrite) const {
  if (isValidRange(Address, Bytes))
    return;
  reportFatalError(describeRange(Address, Bytes, IsWrite));
}

bool GlobalMemory::write(uint64_t Address, const void *Src, uint64_t Bytes) {
  if (Bytes == 0)
    return true;
  if (!isValidRange(Address, Bytes))
    return false;
  std::memcpy(Arena.data() + addr::offset(Address), Src, Bytes);
  return true;
}

bool GlobalMemory::read(uint64_t Address, void *Dst, uint64_t Bytes) const {
  if (Bytes == 0)
    return true;
  if (!isValidRange(Address, Bytes))
    return false;
  std::memcpy(Dst, Arena.data() + addr::offset(Address), Bytes);
  return true;
}
