//===- gpusim/Program.h - Decoded device programs -------------------*- C++ -*-===//
//
// Part of the CUDAAdvisor reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The simulator's pre-decoded form of an IR module: values are numbered
/// into register slots, operands are resolved, allocas get static frame
/// offsets, intrinsics are identified, and each block carries its IPDOM
/// reconvergence point for the SIMT stack. Decoding happens once per
/// module (the analogue of ptxas consuming PTX).
///
//===----------------------------------------------------------------------===//

#ifndef CUADV_GPUSIM_PROGRAM_H
#define CUADV_GPUSIM_PROGRAM_H

#include "ir/Module.h"

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

namespace cuadv {
namespace gpusim {

/// Device-side intrinsics the interpreter dispatches by name (thread
/// geometry reads, barrier, math, and the CUDAAdvisor profiler hooks).
enum class Intrinsic : uint8_t {
  None,
  TidX,
  TidY,
  CtaIdX,
  CtaIdY,
  NTidX,
  NTidY,
  NCtaIdX,
  NCtaIdY,
  SyncThreads,
  Sqrtf,
  Expf,
  Logf,
  Fabsf,
  Fminf,
  Fmaxf,
  Powf,
  // Profiler hooks inserted by the instrumentation engine.
  RecordMem,
  RecordBlock,
  RecordCall,
  RecordRet,
  RecordArith,
};

/// Returns the intrinsic for a declaration name ("cuadv.tid.x", ...), or
/// Intrinsic::None.
Intrinsic intrinsicByName(const std::string &Name);
/// Returns the declaration name for \p Intr.
const char *intrinsicName(Intrinsic Intr);
/// True for the profiler-hook intrinsics.
bool isHookIntrinsic(Intrinsic Intr);

/// A decoded operand: a register slot or an immediate.
struct DOperand {
  enum class Kind : uint8_t { None, Slot, ImmInt, ImmFP };
  Kind K = Kind::None;
  int32_t Slot = -1;
  int64_t ImmInt = 0;
  double ImmFP = 0.0;
};

/// Decoded opcode.
enum class DOp : uint8_t {
  Alloca,
  Load,
  Store,
  GEP,
  Binary,
  Cmp,
  Cast,
  Call,     ///< Call to a decoded (defined) function.
  Intrin,   ///< Call to an intrinsic declaration.
  Select,
  Br,
  CondBr,
  Ret,
};

/// One decoded instruction.
struct DInst {
  DOp Op;
  int32_t Result = -1; ///< Destination slot, or -1.
  DOperand A, B, C;
  std::vector<DOperand> Args; ///< Call/intrinsic arguments.
  uint8_t Sub = 0;            ///< BinaryInst::Op / CmpInst::Pred / CastInst::Op.
  const ir::Type *Ty = nullptr; ///< Operation type (value type).
  uint8_t Space = 0;            ///< MemSpace for memory ops.
  /// Vertical bypassing: this load skips L1 (ld.cg-style, see
  /// VerticalBypassPlan).
  bool BypassL1 = false;
  uint32_t ElemBytes = 0;       ///< GEP element size; load/store width.
  uint32_t AllocaOffset = 0;    ///< Frame/shared-segment byte offset.
  int32_t Callee = -1;          ///< Decoded function index for DOp::Call.
  Intrinsic Intr = Intrinsic::None;
  int32_t Succ0 = -1;
  int32_t Succ1 = -1;
  const ir::Instruction *Src = nullptr; ///< Originating IR instruction.
};

/// One decoded basic block.
struct DBlock {
  std::vector<DInst> Insts;
  /// IPDOM reconvergence block index for divergent branches out of this
  /// block; -1 if none (uniform control flow only).
  int32_t Reconv = -1;
  const ir::BasicBlock *Src = nullptr;
};

/// One decoded function definition.
struct DFunction {
  const ir::Function *Src = nullptr;
  std::vector<DBlock> Blocks;
  uint32_t NumSlots = 0;   ///< Register-file size per lane.
  uint32_t NumArgs = 0;    ///< Arguments occupy slots [0, NumArgs).
  uint32_t LocalBytes = 0; ///< Per-thread frame size for local allocas.
  uint32_t SharedBytes = 0; ///< Per-CTA scratchpad (kernels only).
  bool IsKernel = false;
};

/// Vertical (per-instruction) cache bypassing plan: global loads whose
/// source location appears here are compiled as cache-bypassing
/// (ld.cg-style) accesses — the software scheme of Xie et al. [55] the
/// paper contrasts with horizontal bypassing. Locations are matched by
/// (file id, line, column), so plans derived from a profiled build apply
/// to a clean build of the same source.
class VerticalBypassPlan {
public:
  void addLoad(const ir::DebugLoc &Loc) { Locs.push_back(Loc); }
  bool matches(const ir::DebugLoc &Loc) const {
    for (const ir::DebugLoc &L : Locs)
      if (L == Loc)
        return true;
    return false;
  }
  size_t size() const { return Locs.size(); }
  bool empty() const { return Locs.empty(); }

private:
  std::vector<ir::DebugLoc> Locs;
};

/// A decoded module, ready to launch.
class Program {
public:
  /// Decodes every definition in \p M. The module must verify; decoding
  /// a malformed module is a fatal error. With \p Bypass, global loads
  /// at the plan's source locations skip L1.
  static std::unique_ptr<Program>
  compile(const ir::Module &M, const VerticalBypassPlan &Bypass = {});

  const DFunction *findKernel(const std::string &Name) const;
  const DFunction &function(size_t Index) const { return *Functions[Index]; }
  size_t numFunctions() const { return Functions.size(); }
  /// Index of a decoded function, or -1.
  int32_t indexOf(const ir::Function *F) const;

  const ir::Module &sourceModule() const { return *M; }

private:
  Program() = default;

  const ir::Module *M = nullptr;
  std::vector<std::unique_ptr<DFunction>> Functions;
  std::unordered_map<const ir::Function *, int32_t> IndexByFunction;
};

} // namespace gpusim
} // namespace cuadv

#endif // CUADV_GPUSIM_PROGRAM_H
