//===- gpusim/StatsExport.cpp - KernelStats -> metrics registry ---------------===//
//
// Part of the CUDAAdvisor reproduction project.
//
// Publishes the simulator's per-launch counters — previously dead
// private struct fields — into a telemetry MetricsRegistry: L1 cache
// behaviour, MSHR merges/stalls, coalescer transaction counts,
// scheduler idle cycles, barrier releases and instrumentation-hook
// invocations.
//
//===----------------------------------------------------------------------===//

#include "gpusim/Device.h"
#include "support/telemetry/Metrics.h"

using namespace cuadv;
using namespace cuadv::gpusim;

void gpusim::addLaunchMetrics(telemetry::MetricsRegistry &R,
                              const KernelStats &Stats) {
  R.counter("gpusim.launches", "kernel launches recorded").increment();
  R.counter("gpusim.cycles", "simulated cycles summed over launches",
            "cycles")
      .add(Stats.Cycles);
  R.counter("gpusim.warp_instructions", "warp instructions executed")
      .add(Stats.WarpInstructions);

  R.counter("gpusim.cache.l1_load_hits", "L1 load hits")
      .add(Stats.L1.LoadHits);
  R.counter("gpusim.cache.l1_load_misses", "L1 load misses")
      .add(Stats.L1.LoadMisses);
  R.counter("gpusim.cache.l1_store_evictions",
            "write-evict store hits that invalidated a line")
      .add(Stats.L1.StoreEvictions);
  R.counter("gpusim.cache.l1_stores", "stores observed by L1")
      .add(Stats.L1.Stores);

  R.counter("gpusim.mshr.merges",
            "misses merged onto an in-flight MSHR entry")
      .add(Stats.MshrMerges);
  R.counter("gpusim.mshr.stalls", "misses replayed because the MSHR file "
                                  "was full")
      .add(Stats.MshrStalls);

  R.counter("gpusim.coalescer.load_transactions",
            "global load cache-line transactions after coalescing")
      .add(Stats.GlobalLoadTransactions);
  R.counter("gpusim.coalescer.store_transactions",
            "global store cache-line transactions after coalescing")
      .add(Stats.GlobalStoreTransactions);
  R.counter("gpusim.coalescer.bypassed_transactions",
            "transactions routed around L1 by horizontal bypassing")
      .add(Stats.BypassedTransactions);

  R.counter("gpusim.scheduler.stall_cycles",
            "issue-slot cycles with no ready warp", "cycles")
      .add(Stats.SchedulerStallCycles);
  R.counter("gpusim.shared_accesses", "shared-memory warp accesses")
      .add(Stats.SharedAccesses);
  R.counter("gpusim.barriers", "CTA-wide barrier releases")
      .add(Stats.Barriers);
  R.counter("gpusim.hook_invocations",
            "cuadv.record.* hook executions charged by the cost model")
      .add(Stats.HookInvocations);
  R.counter("gpusim.hook_sampled_in",
            "hook executions the sampler decided to record")
      .add(Stats.HookSampledIn);
  R.counter("gpusim.hook_sampled_out",
            "hook executions sampled out (charged HookSkipCost only)")
      .add(Stats.HookSampledOut);

  // The artifact-namespace mirror: the same coarse counters under the
  // exact metric names the profile artifact's "metrics" section uses
  // (sim.*), so --metrics output, the cycle-accounting hotspot report
  // and the profile artifact agree on totals by name.
  R.counter("sim.cycles", "simulated cycles (artifact namespace)", "cycles")
      .add(Stats.Cycles);
  R.counter("sim.warp_instructions",
            "warp instructions executed (artifact namespace)")
      .add(Stats.WarpInstructions);
  R.counter("sim.global_load_transactions",
            "coalesced global-load transactions (artifact namespace)")
      .add(Stats.GlobalLoadTransactions);
  R.counter("sim.global_store_transactions",
            "coalesced global-store transactions (artifact namespace)")
      .add(Stats.GlobalStoreTransactions);
  R.counter("sim.shared_accesses",
            "shared-memory warp accesses (artifact namespace)")
      .add(Stats.SharedAccesses);
  R.counter("sim.bypassed_transactions",
            "loads routed around L1 (artifact namespace)")
      .add(Stats.BypassedTransactions);
  R.counter("sim.mshr_merges",
            "misses merged onto an in-flight MSHR entry (artifact namespace)")
      .add(Stats.MshrMerges);
  R.counter("sim.mshr_stalls",
            "misses replayed on a full MSHR file (artifact namespace)")
      .add(Stats.MshrStalls);
  R.counter("sim.barriers",
            "CTA-wide barrier releases (artifact namespace)")
      .add(Stats.Barriers);
  R.counter("sim.scheduler_stall_cycles",
            "issue-slot cycles with no ready warp (artifact namespace)",
            "cycles")
      .add(Stats.SchedulerStallCycles);

  // Cycle accounting: issued/stalled slot classification and the
  // stall-gap length distribution (the hotspot report's p50/p95/p99
  // stall-latency summaries read the exported percentiles).
  if (Stats.Stalls) {
    const LaunchStallProfile &SP = *Stats.Stalls;
    R.counter("sim.issued_cycles", "issue slots that issued a warp "
                                   "instruction",
              "cycles")
        .add(SP.IssuedCycles);
    R.counter("sim.total_slots",
              "issue slots of the launch (SMs executed x cycles)",
              "cycles")
        .add(SP.TotalSlots);
    for (unsigned I = 0; I != NumStallReasons; ++I) {
      const StallReason Reason = static_cast<StallReason>(I);
      R.counter(std::string("sim.stall.") + stallReasonName(Reason),
                "issue slots stalled on this reason", "cycles")
          .add(SP.ReasonCycles[I]);
    }
    Histogram &H = R.histogram(
        "sim.stall_gap_cycles", LaunchStallProfile::gapBounds(),
        "scheduler stall-gap lengths over all reasons", "cycles");
    std::vector<uint64_t> Counts(NumStallGapBuckets, 0);
    for (unsigned I = 0; I != NumStallReasons; ++I)
      for (unsigned B = 0; B != NumStallGapBuckets; ++B)
        Counts[B] += SP.GapBuckets[I][B];
    H.merge(Histogram::fromCounts(LaunchStallProfile::gapBounds(),
                                  std::move(Counts), 0));
  }

  // Per-SM shard accounting. ShardSummary is filled identically by the
  // serial and parallel schedules, so these values never depend on the
  // jobs setting (a jobs-dependent metric would break the byte-identity
  // guarantee between --jobs 1 and --jobs N output).
  uint64_t Offered = 0, Retained = 0, Dropped = 0;
  for (const ShardSummary &S : Stats.Shards) {
    Offered += S.HookEventsOffered;
    Retained += S.HookEventsRetained;
    Dropped += S.HookEventsDropped;
  }
  R.counter("gpusim.shards.count", "per-SM execution shards merged")
      .add(Stats.Shards.size());
  R.counter("gpusim.shards.hook_events_offered",
            "hook events offered to per-SM shards")
      .add(Offered);
  R.counter("gpusim.shards.hook_events_retained",
            "hook events retained by per-SM shards")
      .add(Retained);
  R.counter("gpusim.shards.hook_events_dropped",
            "hook events dropped by bounded per-SM shards")
      .add(Dropped);
}
