//===- gpusim/TraceShard.h - Per-SM hook-event shard -----------------*- C++ -*-===//
//
// Part of the CUDAAdvisor reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A per-SM recording sink for parallel launch execution: each SM worker
/// appends its cuadv.record.* events into a private shard, and after all
/// workers join the shards are replayed into the real profiler sink in
/// SM-id order with freshly assigned sequence numbers. Because the
/// serial scheduler runs SMs to completion in id order, SM-major replay
/// reproduces the serial hook-delivery stream exactly — which is what
/// makes jobs=N reports byte-identical to jobs=1.
///
/// Storage is delta/varint-encoded SoA arenas rather than flat record
/// structs: one byte stream of record headers (kind/op packed into a
/// byte; CTA coordinates, warp id, masks and site fields as varints,
/// delta- or XOR-predicted against their near-constant expectations)
/// plus columnar lane arenas (lane indices and thread ids as near-zero
/// deltas, memory addresses delta-encoded against the same warp's
/// previous access, arithmetic operands as raw 8-byte doubles). A
/// typical memory event costs ~8 header bytes plus ~2 bytes per lane
/// against ~96 + 16 per lane for the old arrays, cutting the shard
/// memory bandwidth of the fully-instrumented parallel path by an order
/// of magnitude. Sequence numbers are not stored at all: replayInto()
/// rewrites them from the launch-wide counter anyway.
///
//===----------------------------------------------------------------------===//

#ifndef CUADV_GPUSIM_TRACESHARD_H
#define CUADV_GPUSIM_TRACESHARD_H

#include "gpusim/Hooks.h"

#include <cstdint>
#include <unordered_map>
#include <vector>

namespace cuadv {
namespace gpusim {

/// Records hook events for one SM during a parallel launch.
class TraceShard : public HookSink {
public:
  /// \p CapacityEvents 0 = unbounded (the determinism-preserving
  /// default); otherwise events past the capacity are dropped and
  /// counted, keeping offered() == dropped() + retained().
  explicit TraceShard(unsigned SmId, uint64_t CapacityEvents = 0)
      : SmId(SmId), Capacity(CapacityEvents) {
    Head.reserve(1024);
  }

  void onMemAccess(const WarpContext &Ctx, uint32_t SiteId, uint8_t OpKind,
                   uint32_t Bits, uint32_t Line, uint32_t Col,
                   const std::vector<MemLaneRecord> &Lanes) override;
  void onBlockEntry(const WarpContext &Ctx, uint32_t SiteId,
                    uint32_t ActiveMask) override;
  void onCallSite(const WarpContext &Ctx, uint32_t FuncId, uint32_t SiteId,
                  uint32_t ActiveMask) override;
  void onCallReturn(const WarpContext &Ctx, uint32_t FuncId,
                    uint32_t ActiveMask) override;
  void onArith(const WarpContext &Ctx, uint32_t SiteId, uint8_t OpKind,
               const std::vector<ArithLaneRecord> &Lanes) override;

  /// Delivers every retained event to \p Sink in record order, rewriting
  /// each context's Seq from \p Seq (incremented per event). Passing the
  /// same counter across shards 0..N in id order reproduces the serial
  /// launch's global sequence numbering. Every other field round-trips
  /// bit-exactly through the delta encoding.
  void replayInto(HookSink &Sink, uint64_t &Seq) const;

  /// \name Per-shard backpressure accounting
  /// (offered() == dropped() + retained() always holds).
  /// @{
  uint64_t offered() const { return Offered; }
  uint64_t dropped() const { return Dropped; }
  uint64_t retained() const { return NumEvents; }
  /// @}

  /// Encoded bytes across all arenas (the bandwidth the SoA encoding is
  /// minimizing; exposed for tests and benches).
  uint64_t encodedBytes() const {
    return Head.size() + MemLaneIdx.size() + MemThread.size() +
           MemAddr.size() + ArithLaneIdx.size() + ArithVals.size();
  }

  unsigned smId() const { return SmId; }

private:
  enum class Kind : uint8_t { Mem, Block, Call, Ret, Arith };

  /// True when the shard has room for one more event; counts the offer
  /// and, at capacity, the drop.
  bool admit() {
    ++Offered;
    if (Capacity && NumEvents >= Capacity) {
      ++Dropped;
      return false;
    }
    return true;
  }

  /// Appends the record header shared by every kind (kind/op byte, CTA
  /// coordinates, warp, masks) and updates the encoder prediction state.
  void putHeader(Kind K, uint8_t Op, const WarpContext &Ctx);

  /// Per-warp address-prediction key (CTA index and warp id; warps per
  /// CTA are bounded at 64 by DeviceSpec::MaxWarpsPerSM).
  static uint64_t warpKey(const WarpContext &Ctx) {
    return (uint64_t(Ctx.CtaLinear) << 8) | Ctx.WarpInCta;
  }

  unsigned SmId;
  uint64_t Capacity;
  uint64_t Offered = 0;
  uint64_t Dropped = 0;
  uint64_t NumEvents = 0;

  /// \name Encoder prediction state (mirrored by the replay decoder).
  /// @{
  uint32_t PrevCtaLinear = 0;
  uint32_t PrevCtaX = 0;
  uint32_t PrevCtaY = 0;
  std::unordered_map<uint64_t, uint64_t> LastWarpAddr;
  /// @}

  /// \name SoA arenas.
  /// @{
  std::vector<uint8_t> Head;        ///< Record headers (varint stream).
  std::vector<uint8_t> MemLaneIdx;  ///< Mem lane-index gaps.
  std::vector<uint8_t> MemThread;   ///< Mem thread-id deltas.
  std::vector<uint8_t> MemAddr;     ///< Mem address deltas.
  std::vector<uint8_t> ArithLaneIdx; ///< Arith lane-index gaps.
  std::vector<uint8_t> ArithVals;   ///< Arith operands, raw 8-byte LE.
  /// @}
};

} // namespace gpusim
} // namespace cuadv

#endif // CUADV_GPUSIM_TRACESHARD_H
