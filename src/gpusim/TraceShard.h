//===- gpusim/TraceShard.h - Per-SM hook-event shard -----------------*- C++ -*-===//
//
// Part of the CUDAAdvisor reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A per-SM recording sink for parallel launch execution: each SM worker
/// appends its cuadv.record.* events into a private shard (flat record
/// and lane arenas, no cross-thread atomics), and after all workers join
/// the shards are replayed into the real profiler sink in SM-id order
/// with freshly assigned sequence numbers. Because the serial scheduler
/// runs SMs to completion in id order, SM-major replay reproduces the
/// serial hook-delivery stream exactly — which is what makes jobs=N
/// reports byte-identical to jobs=1.
///
//===----------------------------------------------------------------------===//

#ifndef CUADV_GPUSIM_TRACESHARD_H
#define CUADV_GPUSIM_TRACESHARD_H

#include "gpusim/Hooks.h"

#include <cstdint>
#include <vector>

namespace cuadv {
namespace gpusim {

/// Records hook events for one SM during a parallel launch.
class TraceShard : public HookSink {
public:
  /// \p CapacityEvents 0 = unbounded (the determinism-preserving
  /// default); otherwise events past the capacity are dropped and
  /// counted, keeping offered() == dropped() + retained().
  explicit TraceShard(unsigned SmId, uint64_t CapacityEvents = 0)
      : SmId(SmId), Capacity(CapacityEvents) {
    Events.reserve(256);
  }

  void onMemAccess(const WarpContext &Ctx, uint32_t SiteId, uint8_t OpKind,
                   uint32_t Bits, uint32_t Line, uint32_t Col,
                   const std::vector<MemLaneRecord> &Lanes) override;
  void onBlockEntry(const WarpContext &Ctx, uint32_t SiteId,
                    uint32_t ActiveMask) override;
  void onCallSite(const WarpContext &Ctx, uint32_t FuncId, uint32_t SiteId,
                  uint32_t ActiveMask) override;
  void onCallReturn(const WarpContext &Ctx, uint32_t FuncId,
                    uint32_t ActiveMask) override;
  void onArith(const WarpContext &Ctx, uint32_t SiteId, uint8_t OpKind,
               const std::vector<ArithLaneRecord> &Lanes) override;

  /// Delivers every retained event to \p Sink in record order, rewriting
  /// each context's Seq from \p Seq (incremented per event). Passing the
  /// same counter across shards 0..N in id order reproduces the serial
  /// launch's global sequence numbering.
  void replayInto(HookSink &Sink, uint64_t &Seq) const;

  /// \name Per-shard backpressure accounting
  /// (offered() == dropped() + retained() always holds).
  /// @{
  uint64_t offered() const { return Offered; }
  uint64_t dropped() const { return Dropped; }
  uint64_t retained() const { return Events.size(); }
  /// @}

  unsigned smId() const { return SmId; }

private:
  enum class Kind : uint8_t { Mem, Block, Call, Ret, Arith };

  struct Record {
    Kind K;
    uint8_t Op = 0;
    WarpContext Ctx;
    uint32_t A = 0; ///< SiteId (Mem/Block/Arith) or FuncId (Call/Ret).
    uint32_t B = 0; ///< Bits (Mem), ActiveMask (Block/Ret), SiteId (Call).
    uint32_t C = 0; ///< Line (Mem), ActiveMask (Call).
    uint32_t D = 0; ///< Col (Mem).
    uint32_t LaneBegin = 0; ///< Offset into the matching lane arena.
    uint32_t LaneCount = 0;
  };

  /// True when the shard has room for one more event; counts the offer
  /// and, at capacity, the drop.
  bool admit() {
    ++Offered;
    if (Capacity && Events.size() >= Capacity) {
      ++Dropped;
      return false;
    }
    return true;
  }

  unsigned SmId;
  uint64_t Capacity;
  uint64_t Offered = 0;
  uint64_t Dropped = 0;
  std::vector<Record> Events;
  std::vector<MemLaneRecord> MemLanes;
  std::vector<ArithLaneRecord> ArithLanes;
};

} // namespace gpusim
} // namespace cuadv

#endif // CUADV_GPUSIM_TRACESHARD_H
