//===- gpusim/Sampling.cpp - Deterministic hook sampling ----------------------===//

#include "gpusim/Sampling.h"

#include <cstdlib>

using namespace cuadv;
using namespace cuadv::gpusim;

std::string SamplingSpec::str() const {
  std::string S;
  switch (M) {
  case Mode::Off:
    return "off";
  case Mode::Warp:
    S = "warp:" + std::to_string(Param);
    break;
  case Mode::Period:
    S = "period:" + std::to_string(Param);
    break;
  }
  if (Seed)
    S += "@" + std::to_string(Seed);
  return S;
}

/// Parses a decimal uint64 covering the whole of \p Text.
static bool parseU64(const std::string &Text, uint64_t &Out) {
  if (Text.empty() || Text[0] == '-' || Text[0] == '+')
    return false;
  char *End = nullptr;
  unsigned long long V = std::strtoull(Text.c_str(), &End, 10);
  if (End != Text.c_str() + Text.size())
    return false;
  Out = V;
  return true;
}

bool SamplingSpec::parse(const std::string &Text, SamplingSpec &Out,
                         std::string &Error) {
  Out = SamplingSpec();
  if (Text == "off")
    return true;

  std::string Body = Text;
  size_t At = Body.find('@');
  if (At != std::string::npos) {
    if (!parseU64(Body.substr(At + 1), Out.Seed)) {
      Error = "invalid sampling seed in '" + Text + "' (expected @<integer>)";
      return false;
    }
    Body = Body.substr(0, At);
  }

  size_t Colon = Body.find(':');
  std::string ModeName = Body.substr(0, Colon);
  if (ModeName == "warp")
    Out.M = Mode::Warp;
  else if (ModeName == "period")
    Out.M = Mode::Period;
  else {
    Error = "unknown sampling mode '" + Text +
            "' (expected off, warp:N or period:C, optionally @SEED)";
    return false;
  }
  if (Colon == std::string::npos ||
      !parseU64(Body.substr(Colon + 1), Out.Param) || Out.Param < 2) {
    Error = "sampling interval in '" + Text +
            "' must be an integer >= 2 (use 'off' for exact profiling)";
    return false;
  }
  return true;
}
