//===- gpusim/Address.h - Simulated address encoding --------------*- C++ -*-===//
//
// Part of the CUDAAdvisor reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Simulated 64-bit device addresses carry their memory space in the top
/// bits: global addresses index the device DRAM arena, shared addresses
/// are CTA-relative scratchpad offsets, and local addresses are per-thread
/// stack offsets. Profiler records keep the tagged form so analyses can
/// filter global traffic (only global accesses traverse the L1 model).
///
//===----------------------------------------------------------------------===//

#ifndef CUADV_GPUSIM_ADDRESS_H
#define CUADV_GPUSIM_ADDRESS_H

#include <cstdint>

namespace cuadv {
namespace gpusim {

/// Memory space of a simulated address.
enum class MemSpace : uint8_t {
  Global = 0,
  Shared = 1,
  Local = 2,
};

namespace addr {

constexpr unsigned TagShift = 62;
constexpr uint64_t OffsetMask = (uint64_t(1) << TagShift) - 1;

constexpr uint64_t make(MemSpace Space, uint64_t Offset) {
  return (uint64_t(Space) << TagShift) | (Offset & OffsetMask);
}

constexpr MemSpace space(uint64_t Address) {
  return MemSpace(Address >> TagShift);
}

constexpr uint64_t offset(uint64_t Address) { return Address & OffsetMask; }

constexpr bool isGlobal(uint64_t Address) {
  return space(Address) == MemSpace::Global;
}

} // namespace addr

} // namespace gpusim
} // namespace cuadv

#endif // CUADV_GPUSIM_ADDRESS_H
