//===- gpusim/Device.h - Simulated GPU device -----------------------*- C++ -*-===//
//
// Part of the CUDAAdvisor reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The simulated GPU: device memory plus the SIMT execution engine. A
/// launch runs a decoded kernel over a grid of CTAs distributed across
/// SMs, with lock-step warps, IPDOM reconvergence, a per-SM L1/MSHR model,
/// and a first-order cycle count. Optional horizontal cache bypassing
/// restricts which warps of each CTA may access L1 (paper Section 4.2-D).
///
//===----------------------------------------------------------------------===//

#ifndef CUADV_GPUSIM_DEVICE_H
#define CUADV_GPUSIM_DEVICE_H

#include "gpusim/Cache.h"
#include "gpusim/DeviceSpec.h"
#include "gpusim/Hooks.h"
#include "gpusim/Memory.h"
#include "gpusim/Program.h"
#include "gpusim/StallAccounting.h"
#include "gpusim/Trap.h"

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace cuadv {
namespace telemetry {
class MetricsRegistry;
} // namespace telemetry
} // namespace cuadv

namespace cuadv {
namespace gpusim {

/// 2-D launch dimension (the paper's benchmarks use 1-D and 2-D grids).
struct Dim3 {
  unsigned X = 1;
  unsigned Y = 1;

  unsigned count() const { return X * Y; }
};

/// A kernel launch configuration.
struct LaunchConfig {
  Dim3 Grid;
  Dim3 Block;
  /// Horizontal cache bypassing: number of warps per CTA allowed to access
  /// L1 (warps with in-CTA id >= this bypass). Negative disables
  /// bypassing (all warps use L1).
  int WarpsUsingL1 = -1;
};

/// A runtime scalar value (argument or register).
union RtValue {
  int64_t I;
  double F;
  uint64_t P;

  RtValue() : I(0) {}
  static RtValue fromInt(int64_t V) {
    RtValue R;
    R.I = V;
    return R;
  }
  static RtValue fromFloat(double V) {
    RtValue R;
    R.F = V;
    return R;
  }
  static RtValue fromPtr(uint64_t V) {
    RtValue R;
    R.P = V;
    return R;
  }
};

/// Simulated-time timeline of one launch, collected only when the
/// device has timeline recording enabled (--trace): per-SM CTA
/// residency spans and barrier-release instants, in cycles. Rendered as
/// the per-SM device tracks of the Chrome trace export.
struct LaunchTimeline {
  struct CtaSpan {
    unsigned Sm = 0;
    unsigned CtaLinear = 0;
    uint64_t StartCycle = 0;
    uint64_t EndCycle = 0;
  };
  struct BarrierRelease {
    unsigned Sm = 0;
    unsigned CtaLinear = 0;
    uint64_t Cycle = 0;
  };
  /// Wall-clock span of one SM's simulation on a host worker thread
  /// (parallel execution only; empty for jobs=1 so serial traces are
  /// unchanged). Micros are relative to the launch start.
  struct WorkerSpan {
    unsigned Worker = 0;
    unsigned Sm = 0;
    uint64_t StartMicros = 0;
    uint64_t EndMicros = 0;
  };
  /// Periodic snapshot of one SM's cumulative issue/stall accounting,
  /// sampled every DeviceSpec::StallSampleStrideCycles simulated cycles
  /// (plus one final sample when the SM finishes). Rendered as per-SM
  /// stall-reason counter tracks in the Chrome trace export.
  struct StallSample {
    unsigned Sm = 0;
    uint64_t Cycle = 0;
    uint64_t Issued = 0; ///< Cumulative issued slot cycles.
    uint64_t Reasons[NumStallReasons] = {}; ///< Cumulative stall cycles.
  };
  std::vector<CtaSpan> Ctas;
  std::vector<BarrierRelease> Barriers;
  /// Final cycle of each SM, indexed by SM id.
  std::vector<uint64_t> SmEndCycles;
  std::vector<WorkerSpan> Workers;
  std::vector<StallSample> StallSamples;
};

/// Per-SM execution summary of a launch. Filled identically by the
/// serial and parallel schedules (for a trapped launch, only the SMs a
/// serial run would have executed appear), so publishing it into the
/// metrics registry cannot make jobs=N output differ from jobs=1.
struct ShardSummary {
  unsigned SmId = 0;
  uint64_t EndCycle = 0;
  /// Hook events this SM offered to its sink (serial: delivered
  /// directly to the profiler; parallel: appended to its trace shard).
  uint64_t HookEventsOffered = 0;
  uint64_t HookEventsRetained = 0;
  /// Events dropped by a bounded shard (DeviceSpec::ShardCapacityEvents;
  /// always 0 in the default unbounded configuration and in serial
  /// runs). Offered == Retained + Dropped.
  uint64_t HookEventsDropped = 0;
};

/// Aggregate statistics of one kernel launch.
struct KernelStats {
  uint64_t Cycles = 0;          ///< Max cycle over all SMs.
  uint64_t WarpInstructions = 0;
  uint64_t GlobalLoadTransactions = 0;
  uint64_t GlobalStoreTransactions = 0;
  uint64_t SharedAccesses = 0;
  uint64_t BypassedTransactions = 0;
  uint64_t HookInvocations = 0;
  /// \name Hook sampling accounting (DeviceSpec::Sampling).
  /// Sampler decisions, split by outcome; both are 0 in exact mode. In
  /// warp mode the sampler decides for every hook execution of every
  /// kind (a non-sampled warp's call/ret hooks are skipped too — none
  /// of its events are recorded, so its call paths are never
  /// consulted). In period mode it decides only for the optional kinds
  /// (mem/block/arith); call/ret always fire to keep recorded events'
  /// call paths intact, and the scale-up estimators divide
  /// (In + Out) by In.
  /// @{
  uint64_t HookSampledIn = 0;
  uint64_t HookSampledOut = 0;
  /// Warp mode only: CTAs of this launch whose warps recorded (hash
  /// selection plus the anchor, gpusim/Sampling.h). The scale-up
  /// estimators divide the kernel's total CTA count by this — it is
  /// the exact selection count, not an expectation. 0 in exact and
  /// period modes.
  uint64_t SampledCtas = 0;
  /// @}
  uint64_t MshrMerges = 0;
  uint64_t MshrStalls = 0;
  uint64_t Barriers = 0;
  /// Cycles an SM's issue slot idled because no warp was ready (the
  /// scheduler skipped forward to the earliest ReadyAt).
  uint64_t SchedulerStallCycles = 0;
  CacheStats L1;
  /// CTAs resident per SM during the launch (input to paper Eq. 1).
  unsigned ResidentCTAsPerSM = 0;
  /// Per-SM summaries in id order, covering the SMs that executed
  /// (identical between serial and parallel schedules).
  std::vector<ShardSummary> Shards;
  /// Cycle accounting of the launch: every issue slot classified as
  /// issued or stalled-with-reason and attributed to source location,
  /// calling context and data object. Always collected (null only for
  /// launches rejected before execution began); identical between the
  /// serial and parallel schedules.
  std::shared_ptr<const LaunchStallProfile> Stalls;
  /// Present only when timeline recording was enabled for the launch.
  std::shared_ptr<const LaunchTimeline> Timeline;
  /// Non-null when the launch was terminated by a guest fault. All other
  /// counters cover the work completed before the trap (partial profile).
  std::shared_ptr<const TrapRecord> Trap;

  bool faulted() const { return Trap && Trap->valid(); }
};

/// Publishes the counters of \p Stats into \p R under the "gpusim."
/// namespace (cache, MSHR, coalescer, scheduler and hook-cost
/// instruments). Safe to call once per launch; counters accumulate.
void addLaunchMetrics(telemetry::MetricsRegistry &R, const KernelStats &Stats);

/// A simulated GPU device.
class Device {
public:
  explicit Device(DeviceSpec Spec) : Spec(std::move(Spec)) {}

  const DeviceSpec &spec() const { return Spec; }
  GlobalMemory &memory() { return Memory; }
  const GlobalMemory &memory() const { return Memory; }

  /// Attaches/detaches the profiler hook sink for subsequent launches.
  void setHookSink(HookSink *Sink) { Hooks = Sink; }
  HookSink *hookSink() const { return Hooks; }

  /// Enables per-launch timeline collection (KernelStats::Timeline).
  /// Off by default; the recording-disabled path does no extra work.
  void setTimelineRecording(bool Enabled) { RecordTimeline = Enabled; }
  bool timelineRecording() const { return RecordTimeline; }

  /// Runs \p KernelName from \p P over the given grid. \p Args must match
  /// the kernel signature (pointers as tagged addresses from memory()).
  /// Never aborts: a missing kernel, malformed arguments or any guest
  /// fault terminates only this launch and is reported through
  /// KernelStats::Trap, with device memory and prior trace data intact.
  KernelStats launch(const Program &P, const std::string &KernelName,
                     const LaunchConfig &Cfg,
                     const std::vector<RtValue> &Args);

private:
  DeviceSpec Spec;
  GlobalMemory Memory;
  HookSink *Hooks = nullptr;
  bool RecordTimeline = false;
  /// Deterministic launch counter feeding warp-mode CTA sampling
  /// (gpusim/Sampling.h). Launches are issued in program order by the
  /// single-threaded runtime, so the sequence — and with it every
  /// sampling decision — is identical at any Jobs count.
  uint64_t LaunchSeq = 0;
};

} // namespace gpusim
} // namespace cuadv

#endif // CUADV_GPUSIM_DEVICE_H
