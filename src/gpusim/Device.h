//===- gpusim/Device.h - Simulated GPU device -----------------------*- C++ -*-===//
//
// Part of the CUDAAdvisor reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The simulated GPU: device memory plus the SIMT execution engine. A
/// launch runs a decoded kernel over a grid of CTAs distributed across
/// SMs, with lock-step warps, IPDOM reconvergence, a per-SM L1/MSHR model,
/// and a first-order cycle count. Optional horizontal cache bypassing
/// restricts which warps of each CTA may access L1 (paper Section 4.2-D).
///
//===----------------------------------------------------------------------===//

#ifndef CUADV_GPUSIM_DEVICE_H
#define CUADV_GPUSIM_DEVICE_H

#include "gpusim/Cache.h"
#include "gpusim/DeviceSpec.h"
#include "gpusim/Hooks.h"
#include "gpusim/Memory.h"
#include "gpusim/Program.h"

#include <cstdint>
#include <string>
#include <vector>

namespace cuadv {
namespace gpusim {

/// 2-D launch dimension (the paper's benchmarks use 1-D and 2-D grids).
struct Dim3 {
  unsigned X = 1;
  unsigned Y = 1;

  unsigned count() const { return X * Y; }
};

/// A kernel launch configuration.
struct LaunchConfig {
  Dim3 Grid;
  Dim3 Block;
  /// Horizontal cache bypassing: number of warps per CTA allowed to access
  /// L1 (warps with in-CTA id >= this bypass). Negative disables
  /// bypassing (all warps use L1).
  int WarpsUsingL1 = -1;
};

/// A runtime scalar value (argument or register).
union RtValue {
  int64_t I;
  double F;
  uint64_t P;

  RtValue() : I(0) {}
  static RtValue fromInt(int64_t V) {
    RtValue R;
    R.I = V;
    return R;
  }
  static RtValue fromFloat(double V) {
    RtValue R;
    R.F = V;
    return R;
  }
  static RtValue fromPtr(uint64_t V) {
    RtValue R;
    R.P = V;
    return R;
  }
};

/// Aggregate statistics of one kernel launch.
struct KernelStats {
  uint64_t Cycles = 0;          ///< Max cycle over all SMs.
  uint64_t WarpInstructions = 0;
  uint64_t GlobalLoadTransactions = 0;
  uint64_t GlobalStoreTransactions = 0;
  uint64_t SharedAccesses = 0;
  uint64_t BypassedTransactions = 0;
  uint64_t HookInvocations = 0;
  uint64_t MshrMerges = 0;
  uint64_t MshrStalls = 0;
  uint64_t Barriers = 0;
  CacheStats L1;
  /// CTAs resident per SM during the launch (input to paper Eq. 1).
  unsigned ResidentCTAsPerSM = 0;
};

/// A simulated GPU device.
class Device {
public:
  explicit Device(DeviceSpec Spec) : Spec(std::move(Spec)) {}

  const DeviceSpec &spec() const { return Spec; }
  GlobalMemory &memory() { return Memory; }
  const GlobalMemory &memory() const { return Memory; }

  /// Attaches/detaches the profiler hook sink for subsequent launches.
  void setHookSink(HookSink *Sink) { Hooks = Sink; }
  HookSink *hookSink() const { return Hooks; }

  /// Runs \p KernelName from \p P over the given grid. \p Args must match
  /// the kernel signature (pointers as tagged addresses from memory()).
  /// Fatal error on missing kernel or malformed arguments.
  KernelStats launch(const Program &P, const std::string &KernelName,
                     const LaunchConfig &Cfg,
                     const std::vector<RtValue> &Args);

private:
  DeviceSpec Spec;
  GlobalMemory Memory;
  HookSink *Hooks = nullptr;
};

} // namespace gpusim
} // namespace cuadv

#endif // CUADV_GPUSIM_DEVICE_H
