//===- gpusim/StallAccounting.h - Cycle accounting of stalled slots -*- C++ -*-===//
//
// Part of the CUDAAdvisor reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Cycle accounting for the warp scheduler: every issue-slot cycle of a
/// launch is either an issued slot or a stalled slot classified by a
/// stall-reason taxonomy (GPA-style next-to-issue attribution: an idle
/// slot is charged to whatever the earliest-ready warp was waiting on).
/// Stalled slots are attributed to the source location of the waiting
/// instruction, the warp's guest calling context, and — for memory
/// stalls — the device allocation the outstanding load targets. The
/// per-SM tables are merged SM-id-major by Device::launch, so the
/// resulting LaunchStallProfile is byte-identical between serial and
/// parallel schedules.
///
/// The conservation identity, asserted by the cycle-accounting CTest on
/// every workload:
///
///   IssuedCycles + sum(ReasonCycles) == TotalSlots
///                                    == SmsExecuted * KernelStats::Cycles
///
//===----------------------------------------------------------------------===//

#ifndef CUADV_GPUSIM_STALLACCOUNTING_H
#define CUADV_GPUSIM_STALLACCOUNTING_H

#include <cstdint>
#include <string>
#include <vector>

namespace cuadv {
namespace gpusim {

/// Why a warp-scheduler issue slot did not issue.
enum class StallReason : uint8_t {
  /// Earliest-ready warp waits on an outstanding global-load completion
  /// (L1 hit/miss latency, DRAM service, MSHR merge wake-up).
  MemDependency = 0,
  /// The load behind the wait replayed on a full MSHR file.
  MshrFull,
  /// Warp resumes from a __syncthreads() barrier release.
  Barrier,
  /// Scoreboard: ALU/SFU/shared/local/store result latency.
  ExecDependency,
  /// Control-flow reconvergence after a divergent branch.
  Reconvergence,
  /// Serialized issue resources: trace-buffer atomics of the
  /// instrumentation hooks contending for the (per-SM share of the)
  /// atomic unit.
  IssueContention,
  /// SM issue slots after the SM drained its CTAs (or was assigned
  /// none) while the launch-critical SM was still running.
  Drain,
};

constexpr unsigned NumStallReasons = 7;

/// Stable snake_case name used in artifacts, metrics and reports.
const char *stallReasonName(StallReason R);

/// Number of finite stall-gap histogram buckets, including overflow
/// (gapBounds().size() + 1).
constexpr unsigned NumStallGapBuckets = 15;

/// Cycle accounting of one kernel launch, attributed and merged in
/// SM-id order (deterministic at any jobs count).
struct LaunchStallProfile {
  /// One node of the guest calling-context tree. Node 0 is the kernel
  /// root; every other node is a guest call site identified by callee
  /// name and call-site location, matching the frames the profiler's
  /// CallPathStore interns from cuadv.record.call hooks.
  struct PathNode {
    int32_t Parent = -1;  ///< Caller node; -1 for the kernel root.
    std::string Callee;   ///< Callee function name (kernel name at root).
    std::string File;     ///< Call-site file ("" at root).
    uint32_t Line = 0;    ///< Call-site line (0 at root).
    uint32_t Col = 0;
  };

  /// Stall cycles of one (source location, calling context, data
  /// object) bucket, split by reason. ObjectAddr is the base address of
  /// the device allocation an outstanding load targeted (memory stalls
  /// only; 0 otherwise or when the address is outside any allocation).
  struct SiteStall {
    std::string File;
    uint32_t Line = 0;
    uint32_t Col = 0;
    int32_t Path = 0; ///< Index into Paths.
    uint64_t ObjectAddr = 0;
    uint64_t Reasons[NumStallReasons] = {};

    uint64_t total() const {
      uint64_t T = 0;
      for (unsigned R = 0; R != NumStallReasons; ++R)
        T += Reasons[R];
      return T;
    }
  };

  std::vector<PathNode> Paths; ///< [0] is the kernel root.
  /// Sorted by (File, Line, Col, Path, ObjectAddr) for byte-stable
  /// serialisation.
  std::vector<SiteStall> Sites;

  /// Launch-wide totals. ReasonCycles[Drain] covers the launch-tail
  /// drain of every executed SM and is not attributed to any site.
  uint64_t ReasonCycles[NumStallReasons] = {};
  uint64_t IssuedCycles = 0;
  /// SmsExecuted * KernelStats::Cycles: the issue slots the launch had.
  uint64_t TotalSlots = 0;
  /// SMs whose results were merged (a trapped launch merges only the
  /// SMs the serial schedule would have run).
  unsigned SmsExecuted = 0;

  /// Stall-gap length distribution per reason (bucket upper bounds
  /// gapBounds() plus an overflow slot), feeding the
  /// sim.stall_gap_cycles registry histogram and its derived
  /// p50/p95/p99 keys in the metrics export.
  uint64_t GapBuckets[NumStallReasons][NumStallGapBuckets] = {};

  /// Ascending upper bounds of the gap histogram's finite buckets.
  static const std::vector<uint64_t> &gapBounds();

  /// Total stall cycles over the reasons attributed to sites (all but
  /// Drain). Equals the sum over Sites and the flamegraph total weight.
  uint64_t attributedCycles() const {
    uint64_t T = 0;
    for (unsigned R = 0; R != NumStallReasons; ++R)
      if (static_cast<StallReason>(R) != StallReason::Drain)
        T += ReasonCycles[R];
    return T;
  }

  uint64_t stallCycles() const {
    uint64_t T = 0;
    for (unsigned R = 0; R != NumStallReasons; ++R)
      T += ReasonCycles[R];
    return T;
  }
};

} // namespace gpusim
} // namespace cuadv

#endif // CUADV_GPUSIM_STALLACCOUNTING_H
