//===- gpusim/Coalescer.h - Memory coalescing unit -----------------*- C++ -*-===//
//
// Part of the CUDAAdvisor reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The coalescing unit sitting in front of L1: combines the active lanes'
/// global accesses of one warp instruction into unique cache-line
/// transactions ("best effort", paper Section 4.2-B). The number of unique
/// lines touched per instruction is exactly the paper's memory-divergence
/// metric (Figure 5).
///
//===----------------------------------------------------------------------===//

#ifndef CUADV_GPUSIM_COALESCER_H
#define CUADV_GPUSIM_COALESCER_H

#include <cstdint>
#include <vector>

namespace cuadv {
namespace gpusim {

/// One per-lane access of a warp memory instruction.
struct LaneAccess {
  unsigned Lane;
  uint64_t Address;
  unsigned Bytes;
};

/// Coalesces \p Accesses into the list of unique line addresses touched,
/// in first-touch order. \p LineBytes must be a power of two. An access
/// spanning a line boundary touches every covered line.
std::vector<uint64_t> coalesce(const std::vector<LaneAccess> &Accesses,
                               unsigned LineBytes);

/// Allocation-free variant for the simulator's hot path: clears and
/// refills \p Lines (a caller-owned scratch vector whose capacity is
/// reused across instructions) with the same result as the value-
/// returning overload.
void coalesce(const std::vector<LaneAccess> &Accesses, unsigned LineBytes,
              std::vector<uint64_t> &Lines);

} // namespace gpusim
} // namespace cuadv

#endif // CUADV_GPUSIM_COALESCER_H
