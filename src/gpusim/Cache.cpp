//===- gpusim/Cache.cpp - Set-associative L1 cache model --------------------===//

#include "gpusim/Cache.h"

#include "support/Error.h"

using namespace cuadv;
using namespace cuadv::gpusim;

CacheModel::CacheModel(uint64_t SizeBytes, unsigned LineBytes, unsigned Assoc)
    : LineBytes(LineBytes), Assoc(Assoc) {
  assert(LineBytes > 0 && Assoc > 0 && "bad cache geometry");
  NumSets = SizeBytes / (uint64_t(LineBytes) * Assoc);
  if (NumSets == 0)
    reportFatalError("cache smaller than one set");
  Sets.assign(NumSets, std::vector<Way>(Assoc));
}

bool CacheModel::accessLoad(uint64_t Address) {
  uint64_t LineAddr = lineAddress(Address);
  std::vector<Way> &Set = setFor(LineAddr);
  ++Tick;
  for (Way &W : Set)
    if (W.Valid && W.Line == LineAddr) {
      W.LastUse = Tick;
      ++Stats.LoadHits;
      return true;
    }
  // Miss: fill into the LRU way.
  ++Stats.LoadMisses;
  Way *Victim = &Set.front();
  for (Way &W : Set) {
    if (!W.Valid) {
      Victim = &W;
      break;
    }
    if (W.LastUse < Victim->LastUse)
      Victim = &W;
  }
  Victim->Valid = true;
  Victim->Line = LineAddr;
  Victim->LastUse = Tick;
  return false;
}

void CacheModel::accessStore(uint64_t Address) {
  uint64_t LineAddr = lineAddress(Address);
  ++Stats.Stores;
  ++Tick;
  for (Way &W : setFor(LineAddr))
    if (W.Valid && W.Line == LineAddr) {
      W.Valid = false; // Write-evict.
      ++Stats.StoreEvictions;
      return;
    }
  // Write-no-allocate: nothing on miss.
}

bool CacheModel::contains(uint64_t Address) const {
  uint64_t LineAddr = lineAddress(Address);
  for (const Way &W : setFor(LineAddr))
    if (W.Valid && W.Line == LineAddr)
      return true;
  return false;
}

void CacheModel::reset() {
  for (auto &Set : Sets)
    for (Way &W : Set)
      W = Way();
  Tick = 0;
  Stats = CacheStats();
}
