//===- gpusim/MSHR.h - Miss-status holding registers ---------------*- C++ -*-===//
//
// Part of the CUDAAdvisor reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small MSHR file: outstanding L1 misses occupy an entry until their
/// fill completes; misses to an already-pending line merge into the
/// existing entry; when all entries are busy, new misses stall (paper
/// Section 4.2-A lists MSHR status among the inputs to cache design, and
/// MSHR congestion motivates the bypassing study in Section 4.2-D).
///
//===----------------------------------------------------------------------===//

#ifndef CUADV_GPUSIM_MSHR_H
#define CUADV_GPUSIM_MSHR_H

#include <cstdint>
#include <vector>

namespace cuadv {
namespace gpusim {

/// Tracks outstanding misses by line address and completion cycle.
class MSHRFile {
public:
  explicit MSHRFile(unsigned NumEntries) : NumEntries(NumEntries) {}

  struct Result {
    /// Cycle the requested line's data is available.
    uint64_t ReadyCycle;
    /// True if this miss merged into an already-pending entry.
    bool Merged;
    /// True if the request had to wait for a free entry.
    bool Stalled;
  };

  /// Registers a miss of \p LineAddr issued at \p NowCycle that would
  /// complete after \p MissLatency. Handles merge and full-file stalls.
  Result registerMiss(uint64_t LineAddr, uint64_t NowCycle,
                      uint64_t MissLatency, uint64_t FullPenalty);

  unsigned entriesInUse(uint64_t NowCycle) const;
  uint64_t mergeCount() const { return Merges; }
  uint64_t stallCount() const { return Stalls; }

private:
  struct Entry {
    uint64_t LineAddr = 0;
    uint64_t ReadyCycle = 0;
  };

  void expire(uint64_t NowCycle);

  unsigned NumEntries;
  std::vector<Entry> Pending;
  uint64_t Merges = 0;
  uint64_t Stalls = 0;
};

} // namespace gpusim
} // namespace cuadv

#endif // CUADV_GPUSIM_MSHR_H
