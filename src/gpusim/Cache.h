//===- gpusim/Cache.h - Set-associative L1 cache model -------------*- C++ -*-===//
//
// Part of the CUDAAdvisor reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A set-associative LRU cache modelling a GPU L1 data cache. Following
/// NVIDIA's L1 policy (and the paper's reuse-distance definition tweak),
/// the cache is write-evict / write-no-allocate: a store hit evicts the
/// line, and a store miss does not allocate.
///
//===----------------------------------------------------------------------===//

#ifndef CUADV_GPUSIM_CACHE_H
#define CUADV_GPUSIM_CACHE_H

#include <cassert>
#include <cstdint>
#include <vector>

namespace cuadv {
namespace gpusim {

/// Aggregate cache statistics.
struct CacheStats {
  uint64_t LoadHits = 0;
  uint64_t LoadMisses = 0;
  uint64_t StoreEvictions = 0;
  uint64_t Stores = 0;

  uint64_t loadAccesses() const { return LoadHits + LoadMisses; }
  double hitRate() const {
    uint64_t Total = loadAccesses();
    return Total ? static_cast<double>(LoadHits) /
                       static_cast<double>(Total)
                 : 0.0;
  }
};

/// Set-associative LRU cache over line addresses.
class CacheModel {
public:
  /// \p SizeBytes and \p LineBytes must be powers-of-two multiples such
  /// that SizeBytes / (LineBytes * Assoc) >= 1.
  CacheModel(uint64_t SizeBytes, unsigned LineBytes, unsigned Assoc);

  /// Probes for a load of the line containing \p Address. On miss, the
  /// line is allocated (evicting LRU). Returns true on hit.
  bool accessLoad(uint64_t Address);

  /// Applies a store to the line containing \p Address: hit lines are
  /// evicted (write-evict), misses do not allocate (write-no-allocate).
  void accessStore(uint64_t Address);

  /// True if the line containing \p Address is resident (no side effects).
  bool contains(uint64_t Address) const;

  void reset();

  const CacheStats &stats() const { return Stats; }
  unsigned lineBytes() const { return LineBytes; }
  uint64_t numSets() const { return NumSets; }
  unsigned associativity() const { return Assoc; }

  /// Line address (address with the offset bits cleared).
  uint64_t lineAddress(uint64_t Address) const {
    return Address / LineBytes;
  }

private:
  struct Way {
    uint64_t Line = 0;
    uint64_t LastUse = 0;
    bool Valid = false;
  };

  std::vector<Way> &setFor(uint64_t LineAddr) {
    return Sets[LineAddr % NumSets];
  }
  const std::vector<Way> &setFor(uint64_t LineAddr) const {
    return Sets[LineAddr % NumSets];
  }

  unsigned LineBytes;
  unsigned Assoc;
  uint64_t NumSets;
  uint64_t Tick = 0;
  std::vector<std::vector<Way>> Sets;
  CacheStats Stats;
};

} // namespace gpusim
} // namespace cuadv

#endif // CUADV_GPUSIM_CACHE_H
