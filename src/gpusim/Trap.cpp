//===- gpusim/Trap.cpp - Recoverable guest-fault records ---------------------===//

#include "gpusim/Trap.h"

#include "support/Format.h"
#include "support/JSON.h"

#include <algorithm>
#include <map>

using namespace cuadv;
using namespace cuadv::gpusim;

const char *gpusim::trapKindName(TrapKind Kind) {
  switch (Kind) {
  case TrapKind::None:
    return "none";
  case TrapKind::OutOfBoundsGlobal:
    return "oob-global";
  case TrapKind::OutOfBoundsShared:
    return "oob-shared";
  case TrapKind::OutOfBoundsLocal:
    return "oob-local";
  case TrapKind::MisalignedAccess:
    return "misaligned";
  case TrapKind::DivisionByZero:
    return "div-zero";
  case TrapKind::DivergentBarrier:
    return "divergent-barrier";
  case TrapKind::BarrierDeadlock:
    return "barrier-deadlock";
  case TrapKind::WatchdogTimeout:
    return "watchdog";
  case TrapKind::InvalidLaunch:
    return "invalid-launch";
  case TrapKind::InvalidProgram:
    return "invalid-program";
  case TrapKind::Canceled:
    return "canceled";
  }
  return "unknown";
}

std::string TrapRecord::render() const {
  std::string Out = std::string(trapKindName(Kind)) + ": " + Message;
  std::string Where;
  if (!File.empty())
    Where = formatString("%s:%u:%u", File.c_str(), Line, Col);
  if (!Kernel.empty()) {
    if (!Where.empty())
      Where += ", ";
    Where += "kernel '" + Kernel + "'";
  }
  if (Kind != TrapKind::InvalidLaunch && Kind != TrapKind::None) {
    if (!Where.empty())
      Where += ", ";
    Where += formatString("sm %u cta %u warp %u lane %u cycle %llu", SmId,
                          CtaLinear, WarpInCta, FaultingLane,
                          static_cast<unsigned long long>(Cycle));
  }
  if (!Where.empty())
    Out += " (" + Where + ")";
  if (!Detail.empty())
    Out += "\n" + Detail;
  return Out;
}

support::JsonValue TrapRecord::toJson() const {
  support::JsonValue Obj = support::JsonValue::object();
  Obj.set("kind", support::JsonValue(trapKindName(Kind)));
  Obj.set("message", support::JsonValue(Message));
  Obj.set("kernel", support::JsonValue(Kernel));
  Obj.set("file", support::JsonValue(File));
  Obj.set("line", support::JsonValue(static_cast<int64_t>(Line)));
  Obj.set("col", support::JsonValue(static_cast<int64_t>(Col)));
  Obj.set("sm", support::JsonValue(static_cast<int64_t>(SmId)));
  Obj.set("cta", support::JsonValue(static_cast<int64_t>(CtaLinear)));
  Obj.set("warp", support::JsonValue(static_cast<int64_t>(WarpInCta)));
  Obj.set("lane", support::JsonValue(static_cast<int64_t>(FaultingLane)));
  Obj.set("address", support::JsonValue(static_cast<int64_t>(Address)));
  Obj.set("access_bytes",
          support::JsonValue(static_cast<int64_t>(AccessBytes)));
  Obj.set("cycle", support::JsonValue(static_cast<int64_t>(Cycle)));
  return Obj;
}

std::string
gpusim::formatDeadlockReport(const std::vector<BarrierWait> &Waits) {
  // Group by CTA, preserving CTA order.
  std::map<unsigned, std::vector<const BarrierWait *>> ByCta;
  for (const BarrierWait &W : Waits)
    ByCta[W.CtaLinear].push_back(&W);

  std::string Out;
  for (const auto &[Cta, Warps] : ByCta) {
    unsigned Live = 0, Arrived = 0;
    std::string AtBarrier, Missing, Retired;
    for (const BarrierWait *W : Warps) {
      std::string Tag = "w" + std::to_string(W->Warp);
      if (W->Done) {
        Retired += (Retired.empty() ? "" : ",") + Tag;
        continue;
      }
      ++Live;
      if (W->AtBarrier) {
        ++Arrived;
        AtBarrier += (AtBarrier.empty() ? "" : ",") + Tag;
      } else {
        Missing += (Missing.empty() ? "" : ",") + Tag;
      }
    }
    Out += formatString("  cta %u: %u/%u live warps arrived at barrier",
                        Cta, Arrived, Live);
    if (!AtBarrier.empty())
      Out += " [parked: " + AtBarrier + "]";
    if (!Missing.empty())
      Out += " [never arrived: " + Missing + "]";
    if (!Retired.empty())
      Out += " [retired: " + Retired + "]";
    Out += "\n";
  }
  if (!Out.empty())
    Out.pop_back(); // Trailing newline.
  return Out;
}
