//===- gpusim/Sampling.h - Deterministic hook sampling ---------------*- C++ -*-===//
//
// Part of the CUDAAdvisor reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The sampling contract between the simulator and the profiler: a
/// deterministic warp or period sampler that decides, per hook
/// execution, whether the event is recorded at full trace-buffer cost
/// or skipped for a cheap fall-through (DeviceSpec::HookSkipCost).
/// Decisions are pure functions of launch geometry (warp mode) or of a
/// per-SM event counter (period mode), never of host scheduling, so a
/// sampled run is byte-identical at any --jobs count. The profiler
/// stamps the spec into each kernel profile and the analysis layer
/// scales the sampled measurements back up (core/analysis/Sampling.h).
///
/// Warp mode samples in units of whole CTAs: every warp of a selected
/// CTA records, every other warp skips. Clustering by CTA keeps the
/// intra-CTA structure the analyses depend on exact — cross-warp reuse
/// feeding the per-CTA reuse-distance stacks, the divergence pattern
/// across warp positions, shared-memory banking — so only the
/// CTA population is subsampled and the estimators stay unbiased.
/// Selection is jittered-systematic: one pseudo-random pick per
/// Param-sized stratum of the CTA index space, so the sample covers
/// the grid evenly (boundary and interior CTAs alike — spatially
/// structured heterogeneity is the dominant variance source) while the
/// in-stratum jitter avoids a fixed stride, which would alias onto the
/// simulator's round-robin CTA->SM assignment and pile every sampled
/// CTA onto one SM.
///
//===----------------------------------------------------------------------===//

#ifndef CUADV_GPUSIM_SAMPLING_H
#define CUADV_GPUSIM_SAMPLING_H

#include <cstdint>
#include <string>

namespace cuadv {
namespace gpusim {

/// Which events a profiled run records. Parsed from the user-facing
/// `--sample off|warp:N|period:C[@SEED]` syntax.
struct SamplingSpec {
  enum class Mode : uint8_t {
    Off,    ///< Exact profiling: every hook fires (the default).
    Warp,   ///< Record ~1/N of warps, clustered by whole CTA.
    Period, ///< Record every Cth optional event per SM.
  };

  Mode M = Mode::Off;
  /// N (warp mode) or C (period mode); always >= 2 when enabled.
  uint64_t Param = 0;
  /// Phase seed: rotates which residue class is sampled without
  /// changing the sampling rate. Any value is valid.
  uint64_t Seed = 0;

  bool enabled() const { return M != Mode::Off; }
  bool operator==(const SamplingSpec &O) const {
    return M == O.M && Param == O.Param && Seed == O.Seed;
  }
  bool operator!=(const SamplingSpec &O) const { return !(*this == O); }

  /// Canonical text form ("off", "warp:32", "period:64@7"); parse(str())
  /// round-trips.
  std::string str() const;

  /// Parses "off", "warp:N" or "period:C" with an optional "@SEED"
  /// suffix. N/C must be integers >= 2 (1 would be exact profiling at
  /// sampling bookkeeping cost — use "off"). On failure returns false
  /// and sets \p Error.
  static bool parse(const std::string &Text, SamplingSpec &Out,
                    std::string &Error);

  /// Avalanching 64-bit mix (the splitmix64 finalizer): the basis of
  /// the CTA-selection hash.
  static uint64_t mix(uint64_t X) {
    X += 0x9e3779b97f4a7c15ull;
    X = (X ^ (X >> 30)) * 0xbf58476d1ce4e5b9ull;
    X = (X ^ (X >> 27)) * 0x94d049bb133111ebull;
    return X ^ (X >> 31);
  }

  /// Warp mode: every launch unconditionally samples up to this many
  /// pseudo-randomly placed anchor CTAs (fewer only when the anchor
  /// picks collide or the grid is smaller). The anchors are a support
  /// floor for the estimators — a small or heterogeneous launch always
  /// contributes several complete CTAs, which is what keeps the
  /// declared tolerance bands honest — and they are cheap because the
  /// sampling build's staged collector (DeviceSpec::HookStageCost /
  /// HookFlushBatch) amortizes the trace-buffer atomics.
  static constexpr unsigned CtaAnchors = 4;

  /// Warp mode: whether CTA \p CtaLinear of the \p CtaCount-CTA launch
  /// numbered \p LaunchSeq is sampled — all of its warps record, every
  /// other CTA's warps skip. Selection is the union of the
  /// jittered-systematic pick (one CTA per Param-sized stratum of the
  /// index space, position re-jittered per stratum and per launch) and
  /// the CtaAnchors anchor picks. The jitter is keyed on the launch
  /// sequence number so an app made of many small launches is sampled
  /// across different CTAs each launch instead of re-picking the same
  /// ones. A pure function of the launch geometry and the
  /// deterministic launch order, never of scheduling, so jobs=1 and
  /// jobs=N select the same CTAs. The executor counts the selected
  /// CTAs into KernelStats::SampledCtas, which is the estimators'
  /// exact per-kernel scale-up denominator.
  bool sampleCta(uint64_t LaunchSeq, uint64_t CtaLinear,
                 uint64_t CtaCount) const {
    uint64_t H = mix(mix(Seed) + LaunchSeq);
    uint64_t Stratum = CtaLinear / Param;
    uint64_t Lo = Stratum * Param;
    uint64_t Width = CtaCount - Lo < Param ? CtaCount - Lo : Param;
    if (Width && Lo + mix(H ^ mix(Stratum)) % Width == CtaLinear)
      return true;
    for (unsigned I = 0; I != CtaAnchors; ++I)
      if (CtaCount && mix(H + I) % CtaCount == CtaLinear)
        return true;
    return false;
  }

  /// Period mode: whether the \p Counter-th optional event on an SM is
  /// sampled. Callers increment their counter per decision.
  bool samplePeriod(uint64_t Counter) const {
    return Counter % Param == Seed % Param;
  }
};

} // namespace gpusim
} // namespace cuadv

#endif // CUADV_GPUSIM_SAMPLING_H
