//===- gpusim/DeviceSpec.h - GPU architecture parameters ----------*- C++ -*-===//
//
// Part of the CUDAAdvisor reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Architecture parameters for the SIMT simulator, with presets matching
/// the paper's two evaluation platforms (Table 1): a Kepler Tesla K40c
/// (128-byte L1 lines, 16/48 KB configurable L1) and a Pascal Tesla P100
/// (32-byte lines, 24 KB unified L1/texture cache).
///
//===----------------------------------------------------------------------===//

#ifndef CUADV_GPUSIM_DEVICESPEC_H
#define CUADV_GPUSIM_DEVICESPEC_H

#include "gpusim/Sampling.h"

#include <atomic>
#include <cstdint>
#include <string>

namespace cuadv {
namespace gpusim {

/// Static description of a simulated GPU.
struct DeviceSpec {
  std::string Name;
  /// Threads per warp; NVIDIA GPUs use 32.
  unsigned WarpSize = 32;
  unsigned NumSMs = 8;
  unsigned MaxCTAsPerSM = 16;
  unsigned MaxWarpsPerSM = 64;

  /// \name L1 data cache geometry.
  /// @{
  uint64_t L1SizeBytes = 16 * 1024;
  unsigned L1LineBytes = 128;
  unsigned L1Assoc = 4;
  unsigned MSHREntries = 32;
  /// @}

  /// \name First-order latency model (cycles).
  /// @{
  unsigned IssueCycles = 1;
  unsigned IntLatency = 4;
  unsigned FpLatency = 8;
  unsigned SfuLatency = 16;  ///< sqrt/exp/log and friends.
  unsigned SharedLatency = 24;
  unsigned LocalLatency = 12;
  unsigned L1HitLatency = 32;
  unsigned L1MissLatency = 280;
  unsigned BypassLatency = 290;  ///< Global access skipping L1.
  unsigned StoreLatency = 12;    ///< Write-through buffer drain.
  unsigned LsuCyclesPerTransaction = 1;
  /// LSU stall (SM-wide, as on real hardware where the access replays)
  /// when a miss finds no free MSHR.
  unsigned MshrFullPenalty = 24;
  /// DRAM/L2 bandwidth share of one SM: cycles of memory-pipe occupancy
  /// per line-sized transaction that goes past L1 (misses and bypasses).
  /// L1 hits do not pay it, which is what makes cache protection via
  /// bypassing profitable for bandwidth-bound kernels.
  unsigned DramCyclesPerTransaction = 5;
  /// @}

  /// \name Instrumentation hook cost model (paper Section 5: hooks
  /// serialize through atomics on the global-memory trace buffer).
  /// @{
  unsigned HookBaseCost = 48;
  unsigned HookAtomicCost = 16;       ///< Per active lane.
  unsigned HookContentionFactor = 1;  ///< Device-wide atomic contention.
  /// Cost of a hook whose event is sampled out: the inlined
  /// counter-check-and-branch the instrumentation emits instead of the
  /// trace-buffer append. Plain pipeline latency — unlike delivered
  /// hooks it does NOT serialize on the atomic unit, which is where the
  /// sampled-profile speedup comes from.
  unsigned HookSkipCost = 4;
  /// \name Staged collector (sampling builds only). When sampling is
  /// enabled the instrumentation emits a warp-local staging buffer
  /// instead of the paper's append-per-event hook: a sampled-in event
  /// is written to the warp's buffer at plain pipeline latency
  /// (HookStageCost) and only every HookFlushBatch-th event pays the
  /// serialized trace-buffer reservation + bulk copy (the classic
  /// HookBaseCost + lanes * HookAtomicCost), amortizing the atomic
  /// round-trip ~HookFlushBatch-fold. Exact (non-sampling) builds keep
  /// the reference per-event hook so the pinned Figure-10 overheads
  /// and exact-profile baselines are untouched.
  /// @{
  unsigned HookStageCost = 16;
  unsigned HookFlushBatch = 32;
  /// @}
  /// @}

  /// Hook sampling: which events this device records (default: all).
  /// Decisions are deterministic per warp / per SM, so sampled output
  /// is byte-identical at any Jobs count. See gpusim/Sampling.h.
  SamplingSpec Sampling;

  /// Watchdog: a launch whose per-SM cycle count exceeds this budget is
  /// terminated with a WatchdogTimeout trap, the simulator's analogue of
  /// the driver's display watchdog killing a runaway kernel. The default
  /// is far above any benchmark's cycle count; 0 disables the watchdog.
  uint64_t WatchdogCycleBudget = 1ull << 33;

  /// Cooperative cancellation: when non-null, every SM polls this flag
  /// and a set value terminates the launch with a Canceled trap through
  /// the normal recoverable-trap path (partial profile kept, runtime
  /// alive). The caller owns the atomic and must keep it alive for the
  /// launch. cuadvisord uses it to enforce per-job wall-clock timeouts;
  /// cuadvisor wires its SIGINT/SIGTERM handler to it so interactive
  /// interruption finalizes crash-safely instead of dying mid-write.
  const std::atomic<bool> *CancelFlag = nullptr;

  /// Device global-memory capacity; cudaMalloc past this fails with a
  /// memory-allocation error (0 = unlimited, the historical behaviour).
  uint64_t GlobalMemBytes = 0;

  /// Host worker threads simulating SMs concurrently. 0 defers to the
  /// CUADV_JOBS environment variable (falling back to 1); 1 runs the
  /// historical single-threaded schedule. See resolveJobs().
  unsigned Jobs = 0;

  /// Cycle stride between per-SM stall-accounting snapshots in the
  /// launch timeline (--trace counter tracks). Sampling is in simulated
  /// cycles, so the series is deterministic at any jobs count. Only
  /// consulted when timeline recording is on; 0 disables the samples.
  uint64_t StallSampleStrideCycles = 2048;

  /// Per-SM trace-shard capacity in events (parallel execution only);
  /// a shard past capacity drops further events while keeping the
  /// offered == dropped + retained accounting. 0 (default) = unbounded,
  /// which is required for jobs=N output to be byte-identical to jobs=1
  /// (the profiler applies its own backpressure at shard replay).
  uint64_t ShardCapacityEvents = 0;

  /// The effective worker count: Jobs if nonzero, else CUADV_JOBS from
  /// the environment, else 1. A launch never uses more workers than SMs.
  unsigned resolveJobs() const;

  /// Tesla K40c (Kepler, CC 3.5) with the given L1 partition (16 or 48 KB
  /// per the paper's bypassing study).
  static DeviceSpec keplerK40c(uint64_t L1KiB = 16);
  /// Tesla P100 (Pascal, CC 6.0), 24 KB unified L1/Tex, 32 B sectors.
  static DeviceSpec pascalP100();

  /// Resolves a named evaluation preset ("kepler16", "kepler48",
  /// "pascal") with its SM count scaled down alongside the reduced
  /// workload sizes, so per-SM occupancy matches the paper's regime (see
  /// EXPERIMENTS.md). The single source of truth for the CLI --arch
  /// switch and the bench presets. Returns false on unknown names.
  static bool benchPreset(const std::string &Name, DeviceSpec &Out);

  /// The names benchPreset accepts, for usage/error messages.
  static const char *benchPresetNames() { return "kepler16|kepler48|pascal"; }
};

} // namespace gpusim
} // namespace cuadv

#endif // CUADV_GPUSIM_DEVICESPEC_H
