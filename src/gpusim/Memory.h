//===- gpusim/Memory.h - Device global memory ---------------------*- C++ -*-===//
//
// Part of the CUDAAdvisor reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The simulated device DRAM: a flat byte arena with a bump allocator
/// (cudaMalloc-style, 256-byte aligned) and bounds-checked typed access.
/// Out-of-bounds accesses are reported with enough context for the
/// code-centric debugging views.
///
//===----------------------------------------------------------------------===//

#ifndef CUADV_GPUSIM_MEMORY_H
#define CUADV_GPUSIM_MEMORY_H

#include "gpusim/Address.h"

#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

namespace cuadv {
namespace gpusim {

/// Simulated device global memory.
class GlobalMemory {
public:
  /// Allocates \p Bytes, returning a tagged global address, or 0 when
  /// the allocation would exceed the configured capacity (device OOM).
  /// Alignment is 256 bytes, like real cudaMalloc.
  uint64_t allocate(uint64_t Bytes);

  /// Caps the arena at \p Bytes (0 = unlimited). Allocations past the cap
  /// fail by returning 0 rather than aborting, like cudaMalloc returning
  /// cudaErrorMemoryAllocation.
  void setCapacity(uint64_t Bytes) { CapacityBytes = Bytes; }
  uint64_t capacity() const { return CapacityBytes; }

  /// Releases the allocation starting at \p Address. The arena is a bump
  /// allocator, so the space is not recycled, but the range becomes
  /// invalid for access checking.
  bool free(uint64_t Address);

  /// \name Raw byte access (used by the host runtime's memcpy).
  /// False (and no data movement) when the range is not inside a live
  /// allocation; describeRange() renders the failure for diagnostics.
  /// @{
  bool write(uint64_t Address, const void *Src, uint64_t Bytes);
  bool read(uint64_t Address, void *Dst, uint64_t Bytes) const;
  /// @}

  /// One-line description of why [Address, Address+Bytes) is (in)valid,
  /// for memcpy error reporting.
  std::string describeRange(uint64_t Address, uint64_t Bytes,
                            bool IsWrite) const;

  /// \name Typed scalar access (used by the interpreter).
  /// @{
  template <typename T> T readScalar(uint64_t Address) const {
    checkRange(Address, sizeof(T), /*IsWrite=*/false);
    T V;
    std::memcpy(&V, Arena.data() + addr::offset(Address), sizeof(T));
    return V;
  }
  template <typename T> void writeScalar(uint64_t Address, T V) {
    checkRange(Address, sizeof(T), /*IsWrite=*/true);
    std::memcpy(Arena.data() + addr::offset(Address), &V, sizeof(T));
  }
  /// @}

  /// True if [Address, Address+Bytes) lies inside a live allocation.
  bool isValidRange(uint64_t Address, uint64_t Bytes) const;

  /// Tagged base address of the allocation containing \p Address (live
  /// or freed), or 0 when the address lies outside every allocation.
  /// Used by the stall-accounting layer to key memory stalls by data
  /// object; the profiler's data-centric index resolves the base to the
  /// allocation's name and call path.
  uint64_t allocationBase(uint64_t Address) const;

  uint64_t bytesAllocated() const { return NextOffset; }
  size_t numLiveAllocations() const { return LiveAllocations; }

  /// Base pointer of the contiguous arena. Valid until the next
  /// allocate(); the executor caches it for the duration of one launch
  /// (the synchronous runtime cannot allocate mid-launch).
  const uint8_t *arenaBase() const { return Arena.data(); }

private:
  struct Allocation {
    uint64_t Start;
    uint64_t End;
    bool Live;
  };

  void checkRange(uint64_t Address, uint64_t Bytes, bool IsWrite) const;
  const Allocation *findAllocation(uint64_t Offset) const;

  std::vector<uint8_t> Arena;
  std::vector<Allocation> Allocations; // Sorted by Start.
  uint64_t NextOffset = 256;           // Offset 0 stays unmapped (null).
  size_t LiveAllocations = 0;
  uint64_t CapacityBytes = 0;          // 0 = unlimited.
};

} // namespace gpusim
} // namespace cuadv

#endif // CUADV_GPUSIM_MEMORY_H
