//===- workloads/Workloads.h - Benchmark applications ---------------*- C++ -*-===//
//
// Part of the CUDAAdvisor reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The ten benchmark applications of paper Table 2 (seven from Rodinia,
/// three from Polybench), rewritten in MiniCUDA with host drivers against
/// the project runtime. Input sizes are scaled down so the whole suite
/// runs in seconds, but each kernel keeps the memory-access and
/// control-flow structure the paper's analyses key on. Every driver
/// validates its device results against a CPU reference.
///
//===----------------------------------------------------------------------===//

#ifndef CUADV_WORKLOADS_WORKLOADS_H
#define CUADV_WORKLOADS_WORKLOADS_H

#include "frontend/Compiler.h"
#include "runtime/Runtime.h"

#include <string>
#include <vector>

namespace cuadv {
namespace workloads {

/// Per-run knobs.
struct RunOptions {
  /// Horizontal cache bypassing: warps per CTA allowed into L1
  /// (negative = no bypassing).
  int WarpsUsingL1 = -1;
  /// Verify device results against the CPU reference.
  bool Validate = true;
};

/// What one application run produced.
struct RunOutcome {
  bool Ok = true;
  std::string Message; ///< First validation failure or fault, if any.
  std::vector<gpusim::KernelStats> Launches;

  /// Total simulated kernel cycles over all launches (the "execution
  /// time" of the bypassing and overhead experiments).
  uint64_t totalKernelCycles() const {
    uint64_t Total = 0;
    for (const gpusim::KernelStats &S : Launches)
      Total += S.Cycles;
    return Total;
  }

  /// The first guest trap among the launches, or null.
  std::shared_ptr<const gpusim::TrapRecord> firstTrap() const {
    for (const gpusim::KernelStats &S : Launches)
      if (S.faulted())
        return S.Trap;
    return nullptr;
  }

  bool faulted() const { return firstTrap() != nullptr; }
};

/// One benchmark application.
struct Workload {
  const char *Name;
  const char *Description; ///< Paper Table 2 description.
  unsigned WarpsPerCTA;    ///< Paper Table 2 warps/CTA.
  const char *SourceFile;  ///< Debug-info file name, e.g. "bfs.cu".
  const char *Source;      ///< MiniCUDA device code.
  /// Host driver: allocates (through the runtime, so the profiler sees
  /// it), launches, validates. The program must be compiled from Source.
  RunOutcome (*Run)(runtime::Runtime &RT, const gpusim::Program &P,
                    const RunOptions &Opts);
};

/// All ten applications, in paper Table 2 order.
const std::vector<Workload> &allWorkloads();

/// Deliberately-broken applications exercising the guest-fault traps
/// (oob-store, div-zero, divergent-sync, runaway). Resolvable through
/// findWorkload but excluded from allWorkloads() so benchmark sweeps
/// never run them by accident.
const std::vector<Workload> &faultDemoWorkloads();

/// Finds a workload (benchmark or fault demo) by name, or null.
const Workload *findWorkload(const std::string &Name);

/// Compiles \p W's device source.
frontend::CompileResult compileWorkload(const Workload &W,
                                        ir::Context &Ctx);

} // namespace workloads
} // namespace cuadv

#endif // CUADV_WORKLOADS_WORKLOADS_H
