//===- workloads/Rodinia2.cpp - lavaMD, nn, nw, srad_v2 -------------------------===//
//
// Part of the CUDAAdvisor reproduction project.
//
//===----------------------------------------------------------------------===//
//
// Rodinia-derived workloads, part 2.
//
//===----------------------------------------------------------------------===//

#include "workloads/WorkloadUtil.h"

#include <algorithm>
#include <cmath>

using namespace cuadv;
using namespace cuadv::workloads;
using namespace cuadv::gpusim;

//===----------------------------------------------------------------------===//
// lavaMD: particle potentials within neighboring boxes (Rodinia)
//===----------------------------------------------------------------------===//

const char *workloads_detail_lavamd_src = R"(
__global__ void kernel_gpu_cuda(float* posx, float* posy, float* posz,
                                float* charge, int* neigh_list,
                                int* neigh_count, float* fx, float* fy,
                                float* fz, int par_per_box, float a2) {
  int bx = blockIdx.x;
  int tid = threadIdx.x;
  if (tid < par_per_box) {
    int i = bx * par_per_box + tid;
    float xi = posx[i];
    float yi = posy[i];
    float zi = posz[i];
    float accx = 0.0f;
    float accy = 0.0f;
    float accz = 0.0f;
    int ncount = neigh_count[bx];
    for (int k = 0; k < ncount; k += 1) {
      int nb = neigh_list[bx * 27 + k];
      for (int j = 0; j < par_per_box; j += 1) {
        int jj = nb * par_per_box + j;
        float dx = xi - posx[jj];
        float dy = yi - posy[jj];
        float dz = zi - posz[jj];
        float r2 = dx * dx + dy * dy + dz * dz + a2;
        float u = expf(-0.5f * r2);
        float qj = charge[jj];
        accx += qj * u * dx;
        accy += qj * u * dy;
        accz += qj * u * dz;
      }
    }
    fx[i] = accx;
    fy[i] = accy;
    fz[i] = accz;
  }
}
)";

namespace {

RunOutcome runLavaMD(runtime::Runtime &RT, const Program &P,
                     const RunOptions &Opts) {
  CUADV_HOST_FRAME(RT, "lavamd_main");
  RunOutcome Out;
  constexpr int Boxes1d = 2; // -boxes1d 10 in the paper, scaled down.
  constexpr int NumBoxes = Boxes1d * Boxes1d * Boxes1d;
  constexpr int ParPerBox = 100; // Like Rodinia's
  // NUMBER_PAR_PER_BOX: not a warp multiple, so the tid guard diverges.
  constexpr int NumPar = NumBoxes * ParPerBox;
  const float A2 = 0.5f;

  DeviceBuffer<float> PosX(RT, NumPar), PosY(RT, NumPar), PosZ(RT, NumPar);
  DeviceBuffer<float> Charge(RT, NumPar);
  DeviceBuffer<float> Fx(RT, NumPar), Fy(RT, NumPar), Fz(RT, NumPar);
  DeviceBuffer<int32_t> NeighList(RT, size_t(NumBoxes) * 27);
  DeviceBuffer<int32_t> NeighCount(RT, NumBoxes);

  Lcg Rng(77);
  for (int I = 0; I < NumPar; ++I) {
    PosX.host()[I] = Rng.nextFloat() * float(Boxes1d);
    PosY.host()[I] = Rng.nextFloat() * float(Boxes1d);
    PosZ.host()[I] = Rng.nextFloat() * float(Boxes1d);
    Charge.host()[I] = Rng.nextFloat() - 0.5f;
  }
  // 3-D neighborhood (including self) over the box lattice.
  for (int B = 0; B < NumBoxes; ++B) {
    int Bx = B % Boxes1d, By = (B / Boxes1d) % Boxes1d,
        Bz = B / (Boxes1d * Boxes1d);
    int Count = 0;
    for (int Dz = -1; Dz <= 1; ++Dz)
      for (int Dy = -1; Dy <= 1; ++Dy)
        for (int Dx = -1; Dx <= 1; ++Dx) {
          int Nx = Bx + Dx, Ny = By + Dy, Nz = Bz + Dz;
          if (Nx < 0 || Nx >= Boxes1d || Ny < 0 || Ny >= Boxes1d ||
              Nz < 0 || Nz >= Boxes1d)
            continue;
          NeighList.host()[size_t(B) * 27 + Count++] =
              (Nz * Boxes1d + Ny) * Boxes1d + Nx;
        }
    NeighCount.host()[B] = Count;
  }
  PosX.upload();
  PosY.upload();
  PosZ.upload();
  Charge.upload();
  NeighList.upload();
  NeighCount.upload();
  Fx.fill(0);
  Fy.fill(0);
  Fz.fill(0);
  Fx.upload();
  Fy.upload();
  Fz.upload();

  LaunchConfig Cfg;
  Cfg.Block = {128, 1}; // 4 warps/CTA (Table 2); last warp partially idle.
  Cfg.Grid = {NumBoxes, 1};
  Cfg.WarpsUsingL1 = Opts.WarpsUsingL1;
  Out.Launches.push_back(RT.launch(
      P, "kernel_gpu_cuda", Cfg,
      {PosX.arg(), PosY.arg(), PosZ.arg(), Charge.arg(), NeighList.arg(),
       NeighCount.arg(), Fx.arg(), Fy.arg(), Fz.arg(),
       RtValue::fromInt(ParPerBox), RtValue::fromFloat(A2)}));
  Fx.download();
  Fy.download();
  Fz.download();

  if (Opts.Validate) {
    std::vector<float> WantX(NumPar, 0), WantY(NumPar, 0), WantZ(NumPar, 0);
    for (int B = 0; B < NumBoxes; ++B)
      for (int T = 0; T < ParPerBox; ++T) {
        int I = B * ParPerBox + T;
        float AccX = 0, AccY = 0, AccZ = 0;
        for (int K = 0; K < NeighCount.host()[B]; ++K) {
          int Nb = NeighList.host()[size_t(B) * 27 + K];
          for (int J = 0; J < ParPerBox; ++J) {
            int JJ = Nb * ParPerBox + J;
            float Dx = PosX.host()[I] - PosX.host()[JJ];
            float Dy = PosY.host()[I] - PosY.host()[JJ];
            float Dz = PosZ.host()[I] - PosZ.host()[JJ];
            float R2 = Dx * Dx + Dy * Dy + Dz * Dz + A2;
            float U = std::exp(-0.5f * R2);
            float Qj = Charge.host()[JJ];
            AccX += Qj * U * Dx;
            AccY += Qj * U * Dy;
            AccZ += Qj * U * Dz;
          }
        }
        WantX[I] = AccX;
        WantY[I] = AccY;
        WantZ[I] = AccZ;
      }
    if (checkFloats(Fx.host(), WantX.data(), WantX.size(), "fx", Out))
      if (checkFloats(Fy.host(), WantY.data(), WantY.size(), "fy", Out))
        checkFloats(Fz.host(), WantZ.data(), WantZ.size(), "fz", Out);
  }
  return Out;
}

} // namespace

//===----------------------------------------------------------------------===//
// nn: nearest neighbor (Rodinia)
//===----------------------------------------------------------------------===//

const char *workloads_detail_nn_src = R"(
__global__ void euclid(float* lat, float* lng, float* dist, int n,
                       float tlat, float tlng) {
  int gid = blockIdx.x * blockDim.x + threadIdx.x;
  if (gid < n) {
    float dlat = lat[gid] - tlat;
    float dlng = lng[gid] - tlng;
    dist[gid] = sqrtf(dlat * dlat + dlng * dlng);
  }
}
)";

namespace {

RunOutcome runNn(runtime::Runtime &RT, const Program &P,
                 const RunOptions &Opts) {
  CUADV_HOST_FRAME(RT, "nn_main");
  RunOutcome Out;
  constexpr int Records = 8000; // filelist_4 -r 5 scaled (tail CTA partial).
  const float TLat = 30.0f, TLng = 90.0f; // Paper's -lat 30 -lng 90.

  DeviceBuffer<float> Lat(RT, Records), Lng(RT, Records);
  DeviceBuffer<float> Dist(RT, Records);
  Lcg Rng(99);
  for (int I = 0; I < Records; ++I) {
    Lat.host()[I] = Rng.nextFloat() * 90.0f;
    Lng.host()[I] = Rng.nextFloat() * 180.0f;
  }
  Lat.upload();
  Lng.upload();
  Dist.fill(0);
  Dist.upload();

  LaunchConfig Cfg = launch1D(Records, 256, Opts); // 8 warps/CTA.
  Out.Launches.push_back(
      RT.launch(P, "euclid", Cfg,
                {Lat.arg(), Lng.arg(), Dist.arg(), RtValue::fromInt(Records),
                 RtValue::fromFloat(TLat), RtValue::fromFloat(TLng)}));
  Dist.download();

  if (Opts.Validate) {
    std::vector<float> Want(Records);
    for (int I = 0; I < Records; ++I) {
      float DLat = Lat.host()[I] - TLat;
      float DLng = Lng.host()[I] - TLng;
      Want[I] = std::sqrt(DLat * DLat + DLng * DLng);
    }
    checkFloats(Dist.host(), Want.data(), Want.size(), "dist", Out);
  }
  return Out;
}

} // namespace

//===----------------------------------------------------------------------===//
// nw: Needleman-Wunsch (Rodinia)
//===----------------------------------------------------------------------===//

// Rodinia's needle kernel: each 16-thread block processes one 16x16 tile
// of the score matrix with an in-tile anti-diagonal wavefront (the
// triangular "tx <= m" masks are the paper's headline branch-divergence
// source, Table 3). Tiles on one tile-diagonal are independent; the host
// sweeps tile-diagonals.
const char *workloads_detail_nw_src = R"(
__global__ void needle_cuda(int* score, int* ref, int n, int t, int tiles,
                            int penalty) {
  __shared__ int stile[289];
  __shared__ int rtile[256];
  int bx = blockIdx.x;
  int tx = threadIdx.x;
  int lo = t - tiles + 1;
  if (lo < 0) { lo = 0; }
  int ti = lo + bx;
  int tj = t - ti;
  int w = n + 1;
  int base_i = ti * 16;
  int base_j = tj * 16;
  stile[tx + 1] = score[base_i * w + base_j + tx + 1];
  if (tx == 0) {
    stile[0] = score[base_i * w + base_j];
  }
  stile[(tx + 1) * 17] = score[(base_i + tx + 1) * w + base_j];
  for (int m = 0; m < 16; m += 1) {
    rtile[m * 16 + tx] = ref[(base_i + m + 1) * w + base_j + tx + 1];
  }
  __syncthreads();
  for (int m = 0; m < 16; m += 1) {
    if (tx <= m) {
      int x = tx + 1;
      int y = m - tx + 1;
      int v = stile[(y - 1) * 17 + x - 1] + rtile[(y - 1) * 16 + x - 1];
      int del = stile[(y - 1) * 17 + x] - penalty;
      int ins = stile[y * 17 + x - 1] - penalty;
      if (del > v) { v = del; }
      if (ins > v) { v = ins; }
      stile[y * 17 + x] = v;
    }
    __syncthreads();
  }
  for (int m = 14; m >= 0; m -= 1) {
    if (tx <= m) {
      int x = tx + 16 - m;
      int y = 16 - tx;
      int v = stile[(y - 1) * 17 + x - 1] + rtile[(y - 1) * 16 + x - 1];
      int del = stile[(y - 1) * 17 + x] - penalty;
      int ins = stile[y * 17 + x - 1] - penalty;
      if (del > v) { v = del; }
      if (ins > v) { v = ins; }
      stile[y * 17 + x] = v;
    }
    __syncthreads();
  }
  for (int m = 0; m < 16; m += 1) {
    score[(base_i + m + 1) * w + base_j + tx + 1] =
        stile[(m + 1) * 17 + tx + 1];
  }
}
)";

namespace {

RunOutcome runNw(runtime::Runtime &RT, const Program &P,
                 const RunOptions &Opts) {
  CUADV_HOST_FRAME(RT, "nw_main");
  RunOutcome Out;
  constexpr int N = 96; // 2048 in the paper, scaled down.
  constexpr int W = N + 1;
  constexpr int Penalty = 10;

  DeviceBuffer<int32_t> Score(RT, size_t(W) * W);
  DeviceBuffer<int32_t> Ref(RT, size_t(W) * W);
  Lcg Rng(42);
  for (size_t I = 0; I < Ref.size(); ++I)
    Ref.host()[I] = int32_t(Rng.nextBelow(21)) - 10;
  Score.fill(0);
  for (int I = 0; I <= N; ++I) {
    Score.host()[size_t(I) * W] = -I * Penalty;
    Score.host()[I] = -I * Penalty;
  }
  Score.upload();
  Ref.upload();

  // Tile-diagonal wavefront: 16-thread CTAs (1 warp per CTA, Table 2).
  constexpr int Tiles = N / 16;
  for (int T = 0; T <= 2 * (Tiles - 1); ++T) {
    int Lo = std::max(0, T - Tiles + 1);
    int Hi = std::min(T, Tiles - 1);
    LaunchConfig Cfg;
    Cfg.Block = {16, 1};
    Cfg.Grid = {unsigned(Hi - Lo + 1), 1};
    Cfg.WarpsUsingL1 = Opts.WarpsUsingL1;
    Out.Launches.push_back(
        RT.launch(P, "needle_cuda", Cfg,
                  {Score.arg(), Ref.arg(), RtValue::fromInt(N),
                   RtValue::fromInt(T), RtValue::fromInt(Tiles),
                   RtValue::fromInt(Penalty)}));
  }
  Score.download();

  if (Opts.Validate) {
    std::vector<int32_t> Want(size_t(W) * W, 0);
    for (int I = 0; I <= N; ++I) {
      Want[size_t(I) * W] = -I * Penalty;
      Want[I] = -I * Penalty;
    }
    for (int I = 1; I <= N; ++I)
      for (int J = 1; J <= N; ++J) {
        int Idx = I * W + J;
        int Match = Want[Idx - W - 1] + Ref.host()[Idx];
        int Del = Want[Idx - W] - Penalty;
        int Ins = Want[Idx - 1] - Penalty;
        Want[Idx] = std::max(Match, std::max(Del, Ins));
      }
    checkInts(Score.host(), Want.data(), Want.size(), "score", Out);
  }
  return Out;
}

} // namespace

//===----------------------------------------------------------------------===//
// srad_v2: speckle reducing anisotropic diffusion (Rodinia)
//===----------------------------------------------------------------------===//

const char *workloads_detail_srad_src = R"(
__global__ void srad_cuda_1(float* J, float* dN, float* dS, float* dW,
                            float* dE, float* C, int rows, int cols,
                            float q0sqr) {
  __shared__ float tile[256];
  int tx = threadIdx.x;
  int ty = threadIdx.y;
  int col = blockIdx.x * 16 + tx;
  int row = blockIdx.y * 16 + ty;
  if (row < rows && col < cols) {
    int idx = row * cols + col;
    tile[ty * 16 + tx] = J[idx];
    __syncthreads();
    float Jc = tile[ty * 16 + tx];
    float n;
    float s;
    float w;
    float e;
    if (ty > 0) {
      n = tile[(ty - 1) * 16 + tx];
    } else {
      int up = idx - cols;
      if (row == 0) { up = idx; }
      n = J[up];
    }
    if (ty < 15) {
      s = tile[(ty + 1) * 16 + tx];
    } else {
      int down = idx + cols;
      if (row == rows - 1) { down = idx; }
      s = J[down];
    }
    if (tx > 0) {
      w = tile[ty * 16 + tx - 1];
    } else {
      int left = idx - 1;
      if (col == 0) { left = idx; }
      w = J[left];
    }
    if (tx < 15) {
      e = tile[ty * 16 + tx + 1];
    } else {
      int right = idx + 1;
      if (col == cols - 1) { right = idx; }
      e = J[right];
    }
    float dn = n - Jc;
    float ds = s - Jc;
    float dw = w - Jc;
    float de = e - Jc;
    float g2 = (dn * dn + ds * ds + dw * dw + de * de) / (Jc * Jc);
    float l = (dn + ds + dw + de) / Jc;
    float num = 0.5f * g2 - 0.0625f * (l * l);
    float den = 1.0f + 0.25f * l;
    float qsqr = num / (den * den);
    float d2 = (qsqr - q0sqr) / (q0sqr * (1.0f + q0sqr));
    float cval = 1.0f / (1.0f + d2);
    if (cval < 0.0f) { cval = 0.0f; }
    if (cval > 1.0f) { cval = 1.0f; }
    dN[idx] = dn;
    dS[idx] = ds;
    dW[idx] = dw;
    dE[idx] = de;
    C[idx] = cval;
  }
}
__global__ void srad_cuda_2(float* J, float* dN, float* dS, float* dW,
                            float* dE, float* C, int rows, int cols,
                            float lambda) {
  int col = blockIdx.x * blockDim.x + threadIdx.x;
  int row = blockIdx.y * blockDim.y + threadIdx.y;
  if (row < rows && col < cols) {
    int idx = row * cols + col;
    int down = idx + cols;
    if (row == rows - 1) { down = idx; }
    int right = idx + 1;
    if (col == cols - 1) { right = idx; }
    float cN = C[idx];
    float cS = C[down];
    float cW = C[idx];
    float cE = C[right];
    float D = cN * dN[idx] + cS * dS[idx] + cW * dW[idx] + cE * dE[idx];
    J[idx] = J[idx] + 0.25f * lambda * D;
  }
}
)";

namespace {

RunOutcome runSrad(runtime::Runtime &RT, const Program &P,
                   const RunOptions &Opts) {
  CUADV_HOST_FRAME(RT, "srad_main");
  RunOutcome Out;
  constexpr int Rows = 128, Cols = 128; // 2048x2048 in the paper.
  constexpr int Iters = 2;
  const float Lambda = 0.5f, Q0Sqr = 0.05f;
  const size_t Size = size_t(Rows) * Cols;

  DeviceBuffer<float> J(RT, Size), DN(RT, Size), DS(RT, Size), DW(RT, Size),
      DE(RT, Size), C(RT, Size);
  Lcg Rng(13);
  for (size_t I = 0; I < Size; ++I)
    J.host()[I] = 0.5f + Rng.nextFloat();
  J.upload();
  DN.fill(0);
  DS.fill(0);
  DW.fill(0);
  DE.fill(0);
  C.fill(0);
  DN.upload();
  DS.upload();
  DW.upload();
  DE.upload();
  C.upload();

  LaunchConfig Cfg = launch2D(Cols / 16, Rows / 16, 16, 16, Opts);
  for (int It = 0; It < Iters; ++It) {
    Out.Launches.push_back(RT.launch(
        P, "srad_cuda_1", Cfg,
        {J.arg(), DN.arg(), DS.arg(), DW.arg(), DE.arg(), C.arg(),
         RtValue::fromInt(Rows), RtValue::fromInt(Cols),
         RtValue::fromFloat(Q0Sqr)}));
    Out.Launches.push_back(RT.launch(
        P, "srad_cuda_2", Cfg,
        {J.arg(), DN.arg(), DS.arg(), DW.arg(), DE.arg(), C.arg(),
         RtValue::fromInt(Rows), RtValue::fromInt(Cols),
         RtValue::fromFloat(Lambda)}));
  }
  J.download();

  if (Opts.Validate) {
    std::vector<float> Img(Size), Dn(Size), Ds(Size), Dw(Size), De(Size),
        Cc(Size);
    Lcg Rng2(13);
    for (size_t I = 0; I < Size; ++I)
      Img[I] = 0.5f + Rng2.nextFloat();
    for (int It = 0; It < Iters; ++It) {
      for (int R = 0; R < Rows; ++R)
        for (int Cl = 0; Cl < Cols; ++Cl) {
          int Idx = R * Cols + Cl;
          float Jc = Img[Idx];
          int Up = R == 0 ? Idx : Idx - Cols;
          int Down = R == Rows - 1 ? Idx : Idx + Cols;
          int Left = Cl == 0 ? Idx : Idx - 1;
          int Right = Cl == Cols - 1 ? Idx : Idx + 1;
          float N = Img[Up] - Jc, S = Img[Down] - Jc;
          float W = Img[Left] - Jc, E = Img[Right] - Jc;
          float G2 = (N * N + S * S + W * W + E * E) / (Jc * Jc);
          float L = (N + S + W + E) / Jc;
          float Num = 0.5f * G2 - 0.0625f * (L * L);
          float Den = 1.0f + 0.25f * L;
          float QSqr = Num / (Den * Den);
          float D2 = (QSqr - Q0Sqr) / (Q0Sqr * (1.0f + Q0Sqr));
          float Cval = 1.0f / (1.0f + D2);
          Cval = std::clamp(Cval, 0.0f, 1.0f);
          Dn[Idx] = N;
          Ds[Idx] = S;
          Dw[Idx] = W;
          De[Idx] = E;
          Cc[Idx] = Cval;
        }
      for (int R = 0; R < Rows; ++R)
        for (int Cl = 0; Cl < Cols; ++Cl) {
          int Idx = R * Cols + Cl;
          int Down = R == Rows - 1 ? Idx : Idx + Cols;
          int Right = Cl == Cols - 1 ? Idx : Idx + 1;
          float D = Cc[Idx] * Dn[Idx] + Cc[Down] * Ds[Idx] +
                    Cc[Idx] * Dw[Idx] + Cc[Right] * De[Idx];
          Img[Idx] = Img[Idx] + 0.25f * Lambda * D;
        }
    }
    checkFloats(J.host(), Img.data(), Img.size(), "J", Out);
  }
  return Out;
}

} // namespace

namespace cuadv {
namespace workloads {
namespace detail {

Workload lavamdWorkload() {
  return {"lavaMD", "Molecular Dynamics", 4, "lavaMD.cu",
          workloads_detail_lavamd_src, &runLavaMD};
}
Workload nnWorkload() {
  return {"nn", "Nearest Neighbor", 8, "nn.cu", workloads_detail_nn_src,
          &runNn};
}
Workload nwWorkload() {
  return {"nw", "Needleman-Wunsch", 1, "nw.cu", workloads_detail_nw_src,
          &runNw};
}
Workload sradWorkload() {
  return {"srad_v2", "Speckle Reducing Anisotropic Diffusion", 8,
          "srad_v2.cu", workloads_detail_srad_src, &runSrad};
}

} // namespace detail
} // namespace workloads
} // namespace cuadv
