//===- workloads/FaultDemos.cpp - Guest-fault demonstration apps -------------===//
//
// Part of the CUDAAdvisor reproduction project.
//
//===----------------------------------------------------------------------===//
//
// Small deliberately-broken applications exercising the recoverable trap
// model end to end: each launches a kernel that faults (out-of-bounds
// store, division by zero, divergent __syncthreads, runaway loop), then
// launches a correct kernel on the same runtime to demonstrate that the
// fault poisoned only the faulting launch. They are resolvable through
// findWorkload (cuadvisor memcheck, the fault-injection CI matrix, tests)
// but deliberately excluded from allWorkloads() so `cuadvisor all` and
// the benchmark sweeps never see them.
//
//===----------------------------------------------------------------------===//

#include "workloads/WorkloadUtil.h"

using namespace cuadv;
using namespace cuadv::workloads;
using namespace cuadv::gpusim;

//===----------------------------------------------------------------------===//
// Shared driver scaffolding
//===----------------------------------------------------------------------===//

namespace {

/// Runs the faulty kernel named \p Kernel, then a recovery launch of the
/// in-bounds `ok_store` kernel every demo module carries. The outcome is
/// Ok=false with the trap's rendering as the message (the demo "result"
/// is the fault), but the recovery launch must succeed and produce
/// correct data — that part is validated like any benchmark.
RunOutcome runFaultThenRecover(runtime::Runtime &RT, const Program &P,
                               const RunOptions &Opts,
                               const char *Kernel,
                               const std::vector<RtValue> &FaultArgs,
                               DeviceBuffer<float> &Out, int N) {
  RunOutcome Outcome;
  LaunchConfig Cfg = launch1D(unsigned(N), 32, Opts);
  Outcome.Launches.push_back(RT.launch(P, Kernel, Cfg, FaultArgs));
  // Hold the trap by value: the recovery push_back below may reallocate
  // Launches, so a reference into it would dangle.
  std::shared_ptr<const TrapRecord> Trap = Outcome.Launches.back().Trap;
  if (!Trap) {
    Outcome.Ok = false;
    Outcome.Message =
        formatString("%s: expected a guest fault but none occurred", Kernel);
    return Outcome;
  }

  // Recovery: the same runtime and device memory must still work.
  Outcome.Launches.push_back(RT.launch(
      P, "ok_store", Cfg, {Out.arg(), RtValue::fromInt(N)}));
  if (Outcome.Launches.back().faulted()) {
    Outcome.Ok = false;
    Outcome.Message = "recovery launch faulted: " +
                      Outcome.Launches.back().Trap->render();
    return Outcome;
  }
  if (Opts.Validate) {
    Out.download();
    std::vector<float> Want(size_t(N), 0.0f);
    for (int I = 0; I < N; ++I)
      Want[size_t(I)] = float(I) * 2.0f;
    if (!checkFloats(Out.host(), Want.data(), size_t(N), "recovery",
                     Outcome))
      return Outcome;
  }
  Outcome.Ok = false; // The demo's own verdict: a fault happened.
  Outcome.Message = Trap->render();
  return Outcome;
}

/// The recovery kernel appended to every demo module.
constexpr const char *OkStoreSrc = R"(
__global__ void ok_store(float* out, int n) {
  int i = blockIdx.x * blockDim.x + threadIdx.x;
  if (i < n) {
    out[i] = i * 2.0f;
  }
}
)";

std::string withOkStore(const char *DemoSrc) {
  return std::string(DemoSrc) + OkStoreSrc;
}

} // namespace

//===----------------------------------------------------------------------===//
// oob-store: store past the end of the output buffer
//===----------------------------------------------------------------------===//

static const std::string OobStoreSrc = withOkStore(R"(
__global__ void oob_store(float* out, int n) {
  int i = blockIdx.x * blockDim.x + threadIdx.x;
  out[i + n] = 1.0f;
}
)");

namespace {

RunOutcome runOobStore(runtime::Runtime &RT, const Program &P,
                       const RunOptions &Opts) {
  CUADV_HOST_FRAME(RT, "oob_store_main");
  constexpr int N = 64;
  DeviceBuffer<float> Out(RT, N);
  Out.fill(0);
  Out.upload();
  return runFaultThenRecover(RT, P, Opts, "oob_store",
                             {Out.arg(), RtValue::fromInt(N)}, Out, N);
}

} // namespace

//===----------------------------------------------------------------------===//
// div-zero: integer division by a zero loaded from memory
//===----------------------------------------------------------------------===//

static const std::string DivZeroSrc = withOkStore(R"(
__global__ void div_zero(int* num, int* den, int* q, float* out, int n) {
  int i = blockIdx.x * blockDim.x + threadIdx.x;
  if (i < n) {
    q[i] = num[i] / den[i];
    out[i] = q[i];
  }
}
)");

namespace {

RunOutcome runDivZero(runtime::Runtime &RT, const Program &P,
                      const RunOptions &Opts) {
  CUADV_HOST_FRAME(RT, "div_zero_main");
  constexpr int N = 64;
  DeviceBuffer<int32_t> Num(RT, N), Den(RT, N), Q(RT, N);
  DeviceBuffer<float> Out(RT, N);
  for (int I = 0; I < N; ++I) {
    Num.host()[I] = I + 1;
    Den.host()[I] = (I == 37) ? 0 : 1; // One poisoned lane.
  }
  Num.upload();
  Den.upload();
  Q.fill(0);
  Q.upload();
  Out.fill(0);
  Out.upload();
  return runFaultThenRecover(RT, P, Opts, "div_zero",
                             {Num.arg(), Den.arg(), Q.arg(), Out.arg(),
                              RtValue::fromInt(N)},
                             Out, N);
}

} // namespace

//===----------------------------------------------------------------------===//
// divergent-sync: __syncthreads under warp divergence
//===----------------------------------------------------------------------===//

static const std::string DivergentSyncSrc = withOkStore(R"(
__global__ void divergent_sync(float* out, int n) {
  int i = blockIdx.x * blockDim.x + threadIdx.x;
  if (threadIdx.x < 7) {
    __syncthreads();
  }
  if (i < n) {
    out[i] = 1.0f;
  }
}
)");

namespace {

RunOutcome runDivergentSync(runtime::Runtime &RT, const Program &P,
                            const RunOptions &Opts) {
  CUADV_HOST_FRAME(RT, "divergent_sync_main");
  constexpr int N = 64;
  DeviceBuffer<float> Out(RT, N);
  Out.fill(0);
  Out.upload();
  return runFaultThenRecover(RT, P, Opts, "divergent_sync",
                             {Out.arg(), RtValue::fromInt(N)}, Out, N);
}

} // namespace

//===----------------------------------------------------------------------===//
// runaway: a loop that never terminates (watchdog fodder)
//===----------------------------------------------------------------------===//

static const std::string RunawaySrc = withOkStore(R"(
__global__ void runaway(float* out, int n) {
  int i = blockIdx.x * blockDim.x + threadIdx.x;
  int x = 1;
  while (x > 0) {
    x = x + 0; // Never makes progress; only the watchdog ends this.
  }
  if (i < n) {
    out[i] = x;
  }
}
)");

namespace {

RunOutcome runRunaway(runtime::Runtime &RT, const Program &P,
                      const RunOptions &Opts) {
  CUADV_HOST_FRAME(RT, "runaway_main");
  RunOutcome Outcome;
  // Without a modest cycle budget this kernel would spin for the default
  // budget's 2^33 cycles; refuse to launch rather than appear hung.
  uint64_t Budget = RT.device().spec().WatchdogCycleBudget;
  if (Budget == 0 || Budget > (1ull << 24)) {
    Outcome.Ok = false;
    Outcome.Message =
        "runaway demo needs a small watchdog budget "
        "(run under --inject=watchdog:budget=N)";
    return Outcome;
  }
  constexpr int N = 64;
  DeviceBuffer<float> Out(RT, N);
  Out.fill(0);
  Out.upload();
  return runFaultThenRecover(RT, P, Opts, "runaway",
                             {Out.arg(), RtValue::fromInt(N)}, Out, N);
}

} // namespace

//===----------------------------------------------------------------------===//
// Registry plumbing
//===----------------------------------------------------------------------===//

namespace cuadv {
namespace workloads {
namespace detail {

Workload oobStoreWorkload() {
  return {"oob-store", "fault demo: out-of-bounds global store", 1,
          "oob_store.cu", OobStoreSrc.c_str(), runOobStore};
}

Workload divZeroWorkload() {
  return {"div-zero", "fault demo: integer division by zero", 1,
          "div_zero.cu", DivZeroSrc.c_str(), runDivZero};
}

Workload divergentSyncWorkload() {
  return {"divergent-sync", "fault demo: __syncthreads under divergence", 1,
          "divergent_sync.cu", DivergentSyncSrc.c_str(), runDivergentSync};
}

Workload runawayWorkload() {
  return {"runaway", "fault demo: runaway loop stopped by the watchdog", 1,
          "runaway.cu", RunawaySrc.c_str(), runRunaway};
}

} // namespace detail

const std::vector<Workload> &faultDemoWorkloads() {
  static const std::vector<Workload> Demos = {
      detail::oobStoreWorkload(),
      detail::divZeroWorkload(),
      detail::divergentSyncWorkload(),
      detail::runawayWorkload(),
  };
  return Demos;
}

} // namespace workloads
} // namespace cuadv
