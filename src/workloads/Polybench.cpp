//===- workloads/Polybench.cpp - bicg, syrk, syr2k ------------------------------===//
//
// Part of the CUDAAdvisor reproduction project.
//
//===----------------------------------------------------------------------===//
//
// Polybench-derived workloads. The kernels keep the GPU Polybench access
// patterns the paper reports: bicg's two kernels are respectively
// coalesced and fully divergent, and syrk/syr2k mix per-warp broadcast
// rows with strided rows (the paper's ~50%/50% 1-line vs 32-line
// distribution, Section 4.2-B).
//
//===----------------------------------------------------------------------===//

#include "workloads/WorkloadUtil.h"

using namespace cuadv;
using namespace cuadv::workloads;
using namespace cuadv::gpusim;

//===----------------------------------------------------------------------===//
// bicg: BiCGStab subkernels (Polybench)
//===----------------------------------------------------------------------===//

const char *workloads_detail_bicg_src = R"(
__global__ void bicg_kernel1(float* A, float* r, float* s, int nx, int ny) {
  int j = blockIdx.x * blockDim.x + threadIdx.x;
  if (j < ny) {
    float acc = 0.0f;
    for (int i = 0; i < nx; i += 1) {
      acc += A[i * ny + j] * r[i];
    }
    s[j] = acc;
  }
}
__global__ void bicg_kernel2(float* A, float* p, float* q, int nx, int ny) {
  int i = blockIdx.x * blockDim.x + threadIdx.x;
  if (i < nx) {
    float acc = 0.0f;
    for (int j = 0; j < ny; j += 1) {
      acc += A[i * ny + j] * p[j];
    }
    q[i] = acc;
  }
}
)";

namespace {

RunOutcome runBicg(runtime::Runtime &RT, const Program &P,
                   const RunOptions &Opts) {
  CUADV_HOST_FRAME(RT, "bicg_main");
  RunOutcome Out;
  constexpr int Nx = 256, Ny = 256; // 1024x1024 in the paper.

  DeviceBuffer<float> A(RT, size_t(Nx) * Ny);
  DeviceBuffer<float> R(RT, Nx), S(RT, Ny);
  DeviceBuffer<float> Pv(RT, Ny), Q(RT, Nx);
  Lcg Rng(3);
  for (size_t I = 0; I < A.size(); ++I)
    A.host()[I] = Rng.nextFloat() - 0.5f;
  for (int I = 0; I < Nx; ++I)
    R.host()[I] = Rng.nextFloat();
  for (int J = 0; J < Ny; ++J)
    Pv.host()[J] = Rng.nextFloat();
  A.upload();
  R.upload();
  Pv.upload();
  S.fill(0);
  Q.fill(0);
  S.upload();
  Q.upload();

  LaunchConfig Cfg = launch1D(Ny, 256, Opts); // 8 warps/CTA.
  Out.Launches.push_back(RT.launch(P, "bicg_kernel1", Cfg,
                                   {A.arg(), R.arg(), S.arg(),
                                    RtValue::fromInt(Nx),
                                    RtValue::fromInt(Ny)}));
  Out.Launches.push_back(RT.launch(P, "bicg_kernel2", Cfg,
                                   {A.arg(), Pv.arg(), Q.arg(),
                                    RtValue::fromInt(Nx),
                                    RtValue::fromInt(Ny)}));
  S.download();
  Q.download();

  if (Opts.Validate) {
    std::vector<float> WantS(Ny, 0), WantQ(Nx, 0);
    for (int J = 0; J < Ny; ++J) {
      float Acc = 0;
      for (int I = 0; I < Nx; ++I)
        Acc += A.host()[size_t(I) * Ny + J] * R.host()[I];
      WantS[J] = Acc;
    }
    for (int I = 0; I < Nx; ++I) {
      float Acc = 0;
      for (int J = 0; J < Ny; ++J)
        Acc += A.host()[size_t(I) * Ny + J] * Pv.host()[J];
      WantQ[I] = Acc;
    }
    if (checkFloats(S.host(), WantS.data(), WantS.size(), "s", Out))
      checkFloats(Q.host(), WantQ.data(), WantQ.size(), "q", Out);
  }
  return Out;
}

} // namespace

//===----------------------------------------------------------------------===//
// syrk: symmetric rank-K update (Polybench)
//===----------------------------------------------------------------------===//

const char *workloads_detail_syrk_src = R"(
__global__ void syrk_kernel(float* A, float* C, int n, int m, float alpha,
                            float beta) {
  int j = blockIdx.x * blockDim.x + threadIdx.x;
  int i = blockIdx.y * blockDim.y + threadIdx.y;
  if (i < n && j < n) {
    float acc = 0.0f;
    for (int k = 0; k < m; k += 1) {
      acc += A[i * m + k] * A[j * m + k];
    }
    C[i * n + j] = beta * C[i * n + j] + alpha * acc;
  }
}
)";

namespace {

RunOutcome runSyrk(runtime::Runtime &RT, const Program &P,
                   const RunOptions &Opts) {
  CUADV_HOST_FRAME(RT, "syrk_main");
  RunOutcome Out;
  constexpr int N = 96, M = 96;
  const float Alpha = 1.5f, Beta = 0.5f;

  DeviceBuffer<float> A(RT, size_t(N) * M), C(RT, size_t(N) * N);
  Lcg Rng(7);
  for (size_t I = 0; I < A.size(); ++I)
    A.host()[I] = Rng.nextFloat() - 0.5f;
  std::vector<float> C0(C.size());
  for (size_t I = 0; I < C.size(); ++I) {
    C0[I] = Rng.nextFloat();
    C.host()[I] = C0[I];
  }
  A.upload();
  C.upload();

  LaunchConfig Cfg = launch2D(N / 32, N / 8, 32, 8, Opts); // 8 warps/CTA.
  Out.Launches.push_back(RT.launch(
      P, "syrk_kernel", Cfg,
      {A.arg(), C.arg(), RtValue::fromInt(N), RtValue::fromInt(M),
       RtValue::fromFloat(Alpha), RtValue::fromFloat(Beta)}));
  C.download();

  if (Opts.Validate) {
    std::vector<float> Want(C.size());
    for (int I = 0; I < N; ++I)
      for (int J = 0; J < N; ++J) {
        float Acc = 0;
        for (int K = 0; K < M; ++K)
          Acc += A.host()[size_t(I) * M + K] * A.host()[size_t(J) * M + K];
        Want[size_t(I) * N + J] = Beta * C0[size_t(I) * N + J] + Alpha * Acc;
      }
    checkFloats(C.host(), Want.data(), Want.size(), "C", Out);
  }
  return Out;
}

} // namespace

//===----------------------------------------------------------------------===//
// syr2k: symmetric rank-2K update (Polybench)
//===----------------------------------------------------------------------===//

const char *workloads_detail_syr2k_src = R"(
__global__ void syr2k_kernel(float* A, float* B, float* C, int n, int m,
                             float alpha, float beta) {
  int j = blockIdx.x * blockDim.x + threadIdx.x;
  int i = blockIdx.y * blockDim.y + threadIdx.y;
  if (i < n && j < n) {
    float acc = 0.0f;
    for (int k = 0; k < m; k += 1) {
      acc += A[j * m + k] * B[i * m + k] + B[j * m + k] * A[i * m + k];
    }
    C[i * n + j] = beta * C[i * n + j] + alpha * acc;
  }
}
)";

namespace {

RunOutcome runSyr2k(runtime::Runtime &RT, const Program &P,
                    const RunOptions &Opts) {
  CUADV_HOST_FRAME(RT, "syr2k_main");
  RunOutcome Out;
  constexpr int N = 64, M = 64;
  const float Alpha = 1.0f, Beta = 0.5f;

  DeviceBuffer<float> A(RT, size_t(N) * M), B(RT, size_t(N) * M),
      C(RT, size_t(N) * N);
  Lcg Rng(19);
  for (size_t I = 0; I < A.size(); ++I) {
    A.host()[I] = Rng.nextFloat() - 0.5f;
    B.host()[I] = Rng.nextFloat() - 0.5f;
  }
  std::vector<float> C0(C.size());
  for (size_t I = 0; I < C.size(); ++I) {
    C0[I] = Rng.nextFloat();
    C.host()[I] = C0[I];
  }
  A.upload();
  B.upload();
  C.upload();

  LaunchConfig Cfg = launch2D(N / 32, N / 8, 32, 8, Opts);
  Out.Launches.push_back(RT.launch(
      P, "syr2k_kernel", Cfg,
      {A.arg(), B.arg(), C.arg(), RtValue::fromInt(N), RtValue::fromInt(M),
       RtValue::fromFloat(Alpha), RtValue::fromFloat(Beta)}));
  C.download();

  if (Opts.Validate) {
    std::vector<float> Want(C.size());
    for (int I = 0; I < N; ++I)
      for (int J = 0; J < N; ++J) {
        float Acc = 0;
        for (int K = 0; K < M; ++K)
          Acc += A.host()[size_t(J) * M + K] * B.host()[size_t(I) * M + K] +
                 B.host()[size_t(J) * M + K] * A.host()[size_t(I) * M + K];
        Want[size_t(I) * N + J] = Beta * C0[size_t(I) * N + J] + Alpha * Acc;
      }
    checkFloats(C.host(), Want.data(), Want.size(), "C", Out);
  }
  return Out;
}

} // namespace

namespace cuadv {
namespace workloads {
namespace detail {

Workload bicgWorkload() {
  return {"bicg", "BiCGStab Linear Solver", 8, "bicg.cu",
          workloads_detail_bicg_src, &runBicg};
}
Workload syrkWorkload() {
  return {"syrk", "Symmetric Rank-K Operations", 8, "syrk.cu",
          workloads_detail_syrk_src, &runSyrk};
}
Workload syr2kWorkload() {
  return {"syr2k", "Symmetric Rank-2K Operations", 8, "syr2k.cu",
          workloads_detail_syr2k_src, &runSyr2k};
}

} // namespace detail
} // namespace workloads
} // namespace cuadv
