//===- workloads/WorkloadUtil.h - Shared driver helpers -------------*- C++ -*-===//
//
// Part of the CUDAAdvisor reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Helpers shared by the workload host drivers: deterministic
/// pseudo-random data, upload/download through the runtime (so the
/// profiler observes every allocation and transfer), and float
/// comparison against CPU references.
///
//===----------------------------------------------------------------------===//

#ifndef CUADV_WORKLOADS_WORKLOADUTIL_H
#define CUADV_WORKLOADS_WORKLOADUTIL_H

#include "support/Format.h"
#include "workloads/Workloads.h"

#include <cmath>
#include <cstdint>
#include <vector>

namespace cuadv {
namespace workloads {

/// Deterministic 32-bit LCG so every run sees identical inputs.
class Lcg {
public:
  explicit Lcg(uint32_t Seed) : State(Seed ? Seed : 1) {}

  uint32_t nextU32() {
    State = State * 1664525u + 1013904223u;
    return State;
  }
  /// Uniform float in [0, 1).
  float nextFloat() {
    return float(nextU32() >> 8) / float(1u << 24);
  }
  /// Uniform integer in [0, Bound).
  uint32_t nextBelow(uint32_t Bound) { return nextU32() % Bound; }

private:
  uint32_t State;
};

/// A device buffer mirrored from (and tracked alongside) a host vector.
template <typename T> class DeviceBuffer {
public:
  DeviceBuffer(runtime::Runtime &RT, size_t Count, const char *Name = "")
      : RT(RT), Count(Count) {
    Host = static_cast<T *>(RT.hostMalloc(Count * sizeof(T)));
    Addr = RT.cudaMalloc(Count * sizeof(T));
    (void)Name;
  }
  ~DeviceBuffer() {
    RT.cudaFree(Addr);
    RT.hostFree(Host);
  }
  DeviceBuffer(const DeviceBuffer &) = delete;
  DeviceBuffer &operator=(const DeviceBuffer &) = delete;

  T *host() { return Host; }
  const T *host() const { return Host; }
  uint64_t device() const { return Addr; }
  size_t size() const { return Count; }
  gpusim::RtValue arg() const { return gpusim::RtValue::fromPtr(Addr); }

  void upload() { RT.cudaMemcpyH2D(Addr, Host, Count * sizeof(T)); }
  void download() { RT.cudaMemcpyD2H(Host, Addr, Count * sizeof(T)); }
  void fill(T Value) {
    for (size_t I = 0; I < Count; ++I)
      Host[I] = Value;
  }

private:
  runtime::Runtime &RT;
  size_t Count;
  T *Host = nullptr;
  uint64_t Addr = 0;
};

/// Compares device output against a CPU reference with a relative/abs
/// tolerance; fills Outcome on mismatch and returns false.
inline bool checkFloats(const float *Got, const float *Want, size_t Count,
                        const char *What, RunOutcome &Outcome,
                        float Tolerance = 2e-3f) {
  for (size_t I = 0; I < Count; ++I) {
    float Scale = std::max(1.0f, std::fabs(Want[I]));
    if (std::fabs(Got[I] - Want[I]) > Tolerance * Scale) {
      Outcome.Ok = false;
      Outcome.Message =
          formatString("%s[%zu]: got %g want %g", What, I, Got[I], Want[I]);
      return false;
    }
  }
  return true;
}

inline bool checkInts(const int32_t *Got, const int32_t *Want, size_t Count,
                      const char *What, RunOutcome &Outcome) {
  for (size_t I = 0; I < Count; ++I)
    if (Got[I] != Want[I]) {
      Outcome.Ok = false;
      Outcome.Message =
          formatString("%s[%zu]: got %d want %d", What, I, Got[I], Want[I]);
      return false;
    }
  return true;
}

/// Builds a 1-D launch config with the workload's CTA width and
/// bypassing option applied.
inline gpusim::LaunchConfig launch1D(unsigned Threads, unsigned BlockSize,
                                     const RunOptions &Opts) {
  gpusim::LaunchConfig Cfg;
  Cfg.Block = {BlockSize, 1};
  Cfg.Grid = {(Threads + BlockSize - 1) / BlockSize, 1};
  Cfg.WarpsUsingL1 = Opts.WarpsUsingL1;
  return Cfg;
}

inline gpusim::LaunchConfig launch2D(unsigned GridX, unsigned GridY,
                                     unsigned BlockX, unsigned BlockY,
                                     const RunOptions &Opts) {
  gpusim::LaunchConfig Cfg;
  Cfg.Block = {BlockX, BlockY};
  Cfg.Grid = {GridX, GridY};
  Cfg.WarpsUsingL1 = Opts.WarpsUsingL1;
  return Cfg;
}

} // namespace workloads
} // namespace cuadv

#endif // CUADV_WORKLOADS_WORKLOADUTIL_H
