//===- workloads/Rodinia1.cpp - backprop, bfs, hotspot ------------------------===//
//
// Part of the CUDAAdvisor reproduction project.
//
//===----------------------------------------------------------------------===//
//
// Rodinia-derived workloads, part 1. Each kernel reproduces the memory
// and control-flow structure of its Rodinia counterpart at a reduced
// input size; the host drivers validate against CPU references.
//
//===----------------------------------------------------------------------===//

#include "workloads/WorkloadUtil.h"

#include <algorithm>

using namespace cuadv;
using namespace cuadv::workloads;
using namespace cuadv::gpusim;

//===----------------------------------------------------------------------===//
// backprop: neural-network layer forward pass (Rodinia)
//===----------------------------------------------------------------------===//

const char *workloads_detail_backprop_src = R"(
__global__ void layerforward(float* input, float* weights, float* partial,
                             int hid) {
  __shared__ float input_node[16];
  __shared__ float weight_matrix[256];
  int by = blockIdx.y;
  int tx = threadIdx.x;
  int ty = threadIdx.y;
  int index = (hid + 1) * (by * 16 + ty + 1) + tx + 1;
  int index_in = 16 * by + ty + 1;
  if (tx == 0) {
    input_node[ty] = input[index_in];
  }
  __syncthreads();
  weight_matrix[ty * 16 + tx] = weights[index] * input_node[ty];
  __syncthreads();
  for (int s = 1; s <= 8; s = s * 2) {
    if (ty % (2 * s) == 0) {
      weight_matrix[ty * 16 + tx] = weight_matrix[ty * 16 + tx]
                                  + weight_matrix[(ty + s) * 16 + tx];
    }
    __syncthreads();
  }
  if (ty == 0) {
    partial[by * 16 + tx] = weight_matrix[tx];
  }
}
)";

namespace {

RunOutcome runBackprop(runtime::Runtime &RT, const Program &P,
                       const RunOptions &Opts) {
  CUADV_HOST_FRAME(RT, "backprop_train");
  RunOutcome Out;
  constexpr int In = 512; // Input units (65536 in the paper's dataset).
  constexpr int Hid = 16;
  constexpr int Blocks = In / 16;

  DeviceBuffer<float> Input(RT, In + 1);
  DeviceBuffer<float> Weights(RT, size_t(In + 1) * (Hid + 1));
  DeviceBuffer<float> Partial(RT, size_t(Blocks) * 16);

  Lcg Rng(11);
  for (size_t I = 0; I < Input.size(); ++I)
    Input.host()[I] = Rng.nextFloat();
  for (size_t I = 0; I < Weights.size(); ++I)
    Weights.host()[I] = Rng.nextFloat() - 0.5f;
  Partial.fill(0.0f);
  Input.upload();
  Weights.upload();
  Partial.upload();

  LaunchConfig Cfg = launch2D(1, Blocks, 16, 16, Opts);
  Out.Launches.push_back(
      RT.launch(P, "layerforward", Cfg,
                {Input.arg(), Weights.arg(), Partial.arg(),
                 RtValue::fromInt(Hid)}));
  Partial.download();

  if (Opts.Validate) {
    std::vector<float> Want(Partial.size(), 0.0f);
    for (int B = 0; B < Blocks; ++B)
      for (int Tx = 0; Tx < 16; ++Tx) {
        float Acc = 0;
        for (int Ty = 0; Ty < 16; ++Ty)
          Acc += Weights.host()[(Hid + 1) * (B * 16 + Ty + 1) + Tx + 1] *
                 Input.host()[16 * B + Ty + 1];
        Want[size_t(B) * 16 + Tx] = Acc;
      }
    checkFloats(Partial.host(), Want.data(), Want.size(), "partial", Out);
  }
  return Out;
}

} // namespace

//===----------------------------------------------------------------------===//
// bfs: breadth-first search (Rodinia)
//===----------------------------------------------------------------------===//

const char *workloads_detail_bfs_src = R"(
__global__ void Kernel(int* starts, int* degrees, int* edges, int* mask,
                       int* updating, int* visited, int* cost, int n) {
  int tid = blockIdx.x * blockDim.x + threadIdx.x;
  if (tid < n) {
    if (mask[tid] == 1) {
      mask[tid] = 0;
      int start = starts[tid];
      int end = start + degrees[tid];
      for (int i = start; i < end; i += 1) {
        int id = edges[i];
        if (visited[id] == 0) {
          cost[id] = cost[tid] + 1;
          updating[id] = 1;
        }
      }
    }
  }
}
__global__ void Kernel2(int* mask, int* updating, int* visited, int* stop,
                        int n) {
  int tid = blockIdx.x * blockDim.x + threadIdx.x;
  if (tid < n) {
    if (updating[tid] == 1) {
      mask[tid] = 1;
      visited[tid] = 1;
      updating[tid] = 0;
      stop[0] = 1;
    }
  }
}
)";

namespace {

/// Random graph in Rodinia's CSR-like layout.
struct BfsGraph {
  int NumNodes;
  std::vector<int32_t> Starts, Degrees, Edges;
};

BfsGraph makeGraph(int NumNodes, int AvgDegree, uint32_t Seed) {
  BfsGraph G;
  G.NumNodes = NumNodes;
  Lcg Rng(Seed);
  G.Starts.resize(NumNodes);
  G.Degrees.resize(NumNodes);
  for (int N = 0; N < NumNodes; ++N) {
    G.Starts[N] = int32_t(G.Edges.size());
    int Degree = 1 + int(Rng.nextBelow(unsigned(2 * AvgDegree - 1)));
    G.Degrees[N] = Degree;
    for (int E = 0; E < Degree; ++E)
      G.Edges.push_back(int32_t(Rng.nextBelow(unsigned(NumNodes))));
  }
  return G;
}

std::vector<int32_t> bfsReference(const BfsGraph &G, int Source) {
  std::vector<int32_t> Cost(G.NumNodes, -1);
  std::vector<int32_t> Frontier = {Source};
  Cost[Source] = 0;
  while (!Frontier.empty()) {
    std::vector<int32_t> Next;
    for (int32_t N : Frontier)
      for (int E = 0; E < G.Degrees[N]; ++E) {
        int32_t Id = G.Edges[G.Starts[N] + E];
        if (Cost[Id] < 0) {
          Cost[Id] = Cost[N] + 1;
          Next.push_back(Id);
        }
      }
    Frontier = std::move(Next);
  }
  return Cost;
}

RunOutcome runBfs(runtime::Runtime &RT, const Program &P,
                  const RunOptions &Opts) {
  CUADV_HOST_FRAME(RT, "BFSGraph");
  RunOutcome Out;
  constexpr int NumNodes = 6000; // graph1MW_6 scaled down.
  constexpr int Source = 0;
  BfsGraph G = makeGraph(NumNodes, /*AvgDegree=*/4, /*Seed=*/23);

  DeviceBuffer<int32_t> Starts(RT, NumNodes), Degrees(RT, NumNodes);
  DeviceBuffer<int32_t> Edges(RT, G.Edges.size());
  DeviceBuffer<int32_t> Mask(RT, NumNodes), Updating(RT, NumNodes);
  DeviceBuffer<int32_t> Visited(RT, NumNodes), Cost(RT, NumNodes);
  DeviceBuffer<int32_t> Stop(RT, 1);

  std::copy(G.Starts.begin(), G.Starts.end(), Starts.host());
  std::copy(G.Degrees.begin(), G.Degrees.end(), Degrees.host());
  std::copy(G.Edges.begin(), G.Edges.end(), Edges.host());
  Mask.fill(0);
  Updating.fill(0);
  Visited.fill(0);
  Cost.fill(-1);
  Mask.host()[Source] = 1;
  Visited.host()[Source] = 1;
  Cost.host()[Source] = 0;
  Starts.upload();
  Degrees.upload();
  Edges.upload();
  Mask.upload();
  Updating.upload();
  Visited.upload();
  Cost.upload();

  LaunchConfig Cfg = launch1D(NumNodes, 512, Opts); // 16 warps/CTA.
  for (;;) {
    Stop.host()[0] = 0;
    Stop.upload();
    Out.Launches.push_back(RT.launch(
        P, "Kernel", Cfg,
        {Starts.arg(), Degrees.arg(), Edges.arg(), Mask.arg(),
         Updating.arg(), Visited.arg(), Cost.arg(),
         RtValue::fromInt(NumNodes)}));
    Out.Launches.push_back(
        RT.launch(P, "Kernel2", Cfg,
                  {Mask.arg(), Updating.arg(), Visited.arg(), Stop.arg(),
                   RtValue::fromInt(NumNodes)}));
    Stop.download();
    if (Stop.host()[0] == 0)
      break;
  }
  Cost.download();

  if (Opts.Validate) {
    std::vector<int32_t> Want = bfsReference(G, Source);
    checkInts(Cost.host(), Want.data(), Want.size(), "cost", Out);
  }
  return Out;
}

} // namespace

//===----------------------------------------------------------------------===//
// hotspot: thermal simulation stencil (Rodinia)
//===----------------------------------------------------------------------===//

// Rodinia-style tiled stencil: 16x16 thread blocks load an overlapping
// tile (halo of one, stride 14) into shared memory; only interior threads
// compute. Out-of-image halo reads clamp to the image edge, so border
// cells see replicated neighbors exactly like the untiled formulation.
const char *workloads_detail_hotspot_src = R"(
__global__ void hotspot_step(float* temp_in, float* temp_out, float* power,
                             int rows, int cols, float cap, float rx,
                             float ry, float rz, float amb) {
  __shared__ float tile[256];
  int tx = threadIdx.x;
  int ty = threadIdx.y;
  int c = blockIdx.x * 14 + tx - 1;
  int r = blockIdx.y * 14 + ty - 1;
  int cc = c;
  int rr = r;
  if (cc < 0) { cc = 0; }
  if (cc > cols - 1) { cc = cols - 1; }
  if (rr < 0) { rr = 0; }
  if (rr > rows - 1) { rr = rows - 1; }
  int idx = rr * cols + cc;
  tile[ty * 16 + tx] = temp_in[idx];
  __syncthreads();
  bool interior = tx > 0 && tx < 15 && ty > 0 && ty < 15;
  bool inimage = c >= 0 && c < cols && r >= 0 && r < rows;
  if (interior && inimage) {
    float center = tile[ty * 16 + tx];
    float n = tile[(ty - 1) * 16 + tx];
    float s = tile[(ty + 1) * 16 + tx];
    float w = tile[ty * 16 + tx - 1];
    float e = tile[ty * 16 + tx + 1];
    float delta = cap * (power[idx] + (n + s - 2.0f * center) * ry
                                    + (e + w - 2.0f * center) * rx
                                    + (amb - center) * rz);
    temp_out[idx] = center + delta;
  }
}
)";

namespace {

RunOutcome runHotspot(runtime::Runtime &RT, const Program &P,
                      const RunOptions &Opts) {
  CUADV_HOST_FRAME(RT, "compute_tran_temp");
  RunOutcome Out;
  constexpr int Rows = 128, Cols = 128; // temp_512 scaled down.
  constexpr int Steps = 4;
  const float Cap = 0.5f, Rx = 0.1f, Ry = 0.1f, Rz = 0.05f, Amb = 80.0f;

  DeviceBuffer<float> TempA(RT, size_t(Rows) * Cols);
  DeviceBuffer<float> TempB(RT, size_t(Rows) * Cols);
  DeviceBuffer<float> Power(RT, size_t(Rows) * Cols);
  Lcg Rng(5);
  for (size_t I = 0; I < TempA.size(); ++I) {
    TempA.host()[I] = 320.0f + 10.0f * Rng.nextFloat();
    Power.host()[I] = Rng.nextFloat() * 0.2f;
  }
  TempA.upload();
  Power.upload();
  TempB.fill(0.0f);
  TempB.upload();

  // Overlapping tiles with a halo of one: stride 14 per 16-wide block.
  LaunchConfig Cfg =
      launch2D((Cols + 13) / 14, (Rows + 13) / 14, 16, 16, Opts);
  uint64_t Src = TempA.device(), Dst = TempB.device();
  for (int Step = 0; Step < Steps; ++Step) {
    Out.Launches.push_back(RT.launch(
        P, "hotspot_step", Cfg,
        {RtValue::fromPtr(Src), RtValue::fromPtr(Dst), Power.arg(),
         RtValue::fromInt(Rows), RtValue::fromInt(Cols),
         RtValue::fromFloat(Cap), RtValue::fromFloat(Rx),
         RtValue::fromFloat(Ry), RtValue::fromFloat(Rz),
         RtValue::fromFloat(Amb)}));
    std::swap(Src, Dst);
  }
  // After an even number of steps the result is back in TempA.
  TempA.download();

  if (Opts.Validate) {
    std::vector<float> Cur(TempA.size()), Next(TempA.size());
    // Recompute the initial temperatures (the device buffer now holds
    // results): regenerate with the same seed.
    Lcg Rng2(5);
    std::vector<float> Pow(TempA.size());
    for (size_t I = 0; I < Cur.size(); ++I) {
      Cur[I] = 320.0f + 10.0f * Rng2.nextFloat();
      Pow[I] = Rng2.nextFloat() * 0.2f;
    }
    for (int Step = 0; Step < Steps; ++Step) {
      for (int R = 0; R < Rows; ++R)
        for (int C = 0; C < Cols; ++C) {
          int Idx = R * Cols + C;
          float Center = Cur[Idx];
          float N = R > 0 ? Cur[Idx - Cols] : Center;
          float S = R < Rows - 1 ? Cur[Idx + Cols] : Center;
          float W = C > 0 ? Cur[Idx - 1] : Center;
          float E = C < Cols - 1 ? Cur[Idx + 1] : Center;
          float Delta = Cap * (Pow[Idx] + (N + S - 2.0f * Center) * Ry +
                               (E + W - 2.0f * Center) * Rx +
                               (Amb - Center) * Rz);
          Next[Idx] = Center + Delta;
        }
      std::swap(Cur, Next);
    }
    checkFloats(TempA.host(), Cur.data(), Cur.size(), "temp", Out);
  }
  return Out;
}

} // namespace

//===----------------------------------------------------------------------===//
// Registration hooks (consumed by Registry.cpp)
//===----------------------------------------------------------------------===//

namespace cuadv {
namespace workloads {
namespace detail {

Workload backpropWorkload() {
  return {"backprop", "Back Propagation", 8, "backprop.cu",
          workloads_detail_backprop_src, &runBackprop};
}
Workload bfsWorkload() {
  return {"bfs", "Breadth First Search", 16, "bfs.cu",
          workloads_detail_bfs_src, &runBfs};
}
Workload hotspotWorkload() {
  return {"hotspot", "Temperature Simulation", 8, "hotspot.cu",
          workloads_detail_hotspot_src, &runHotspot};
}

} // namespace detail
} // namespace workloads
} // namespace cuadv
