//===- workloads/Registry.cpp - Workload registry ---------------------------===//

#include "workloads/Workloads.h"

using namespace cuadv;
using namespace cuadv::workloads;

namespace cuadv {
namespace workloads {
namespace detail {

Workload backpropWorkload();
Workload bfsWorkload();
Workload hotspotWorkload();
Workload lavamdWorkload();
Workload nnWorkload();
Workload nwWorkload();
Workload sradWorkload();
Workload bicgWorkload();
Workload syrkWorkload();
Workload syr2kWorkload();

} // namespace detail
} // namespace workloads
} // namespace cuadv

const std::vector<Workload> &workloads::allWorkloads() {
  static const std::vector<Workload> All = {
      detail::backpropWorkload(), detail::bfsWorkload(),
      detail::hotspotWorkload(),  detail::lavamdWorkload(),
      detail::nnWorkload(),       detail::nwWorkload(),
      detail::sradWorkload(),     detail::bicgWorkload(),
      detail::syrkWorkload(),     detail::syr2kWorkload(),
  };
  return All;
}

const Workload *workloads::findWorkload(const std::string &Name) {
  for (const Workload &W : allWorkloads())
    if (Name == W.Name)
      return &W;
  for (const Workload &W : faultDemoWorkloads())
    if (Name == W.Name)
      return &W;
  return nullptr;
}

frontend::CompileResult workloads::compileWorkload(const Workload &W,
                                                   ir::Context &Ctx) {
  return frontend::compileMiniCuda(W.Source, W.SourceFile, Ctx);
}
