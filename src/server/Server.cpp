//===- server/Server.cpp - The cuadvisord profiling service -------------------===//

#include "server/Server.h"

#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

using namespace cuadv;
using namespace cuadv::server;
using support::JsonValue;

namespace {

/// Bounds how long one connection may dribble its request in: a stalled
/// peer times out instead of pinning a worker (or, on the rejection
/// path, the accept loop) forever.
void setReadTimeout(const Fd &Sock, unsigned Ms) {
  timeval Tv;
  Tv.tv_sec = Ms / 1000;
  Tv.tv_usec = static_cast<suseconds_t>((Ms % 1000) * 1000);
  ::setsockopt(Sock.get(), SOL_SOCKET, SO_RCVTIMEO, &Tv, sizeof(Tv));
}

} // namespace

Server::Server(ServerOptions Opts)
    : Opts(std::move(Opts)), Cache(this->Opts.CacheDir),
      Runner(this->Opts.Job, Cache) {}

Server::~Server() { stop(); }

bool Server::start(std::string &Error) {
  Listener = listenUnix(Opts.SocketPath, Error);
  if (!Listener.valid())
    return false;
  if (Opts.Workers == 0)
    Opts.Workers = 1;
  for (unsigned I = 0; I < Opts.Workers; ++I)
    WorkerThreads.emplace_back([this] { workerLoop(); });
  AcceptThread = std::thread([this] { acceptLoop(); });
  Started = true;
  return true;
}

void Server::stop() {
  if (!Started || Stopped)
    return;
  Stopped = true;
  requestStop();
  AcceptThread.join();
  Listener.reset();
  {
    std::lock_guard<std::mutex> Lock(QueueMu);
    Draining = true;
  }
  QueueCv.notify_all();
  for (std::thread &T : WorkerThreads)
    T.join();
  WorkerThreads.clear();
  ::unlink(Opts.SocketPath.c_str());
}

void Server::acceptLoop() {
  while (!stopRequested()) {
    std::string Error;
    Fd Conn = acceptWithTimeout(Listener, /*TimeoutMs=*/200, Error);
    if (!Conn.valid())
      continue; // Timeout or transient error; re-check the stop flag.
    Counters.Accepted.fetch_add(1, std::memory_order_relaxed);
    {
      std::lock_guard<std::mutex> Lock(QueueMu);
      if (Queue.size() < Opts.QueueDepth) {
        Queue.push_back(std::move(Conn));
        QueueCv.notify_one();
        continue;
      }
    }
    rejectConnection(std::move(Conn));
  }
}

void Server::workerLoop() {
  for (;;) {
    Fd Conn;
    {
      std::unique_lock<std::mutex> Lock(QueueMu);
      QueueCv.wait(Lock, [this] { return Draining || !Queue.empty(); });
      if (Queue.empty())
        return; // Draining and nothing left: the pool is done.
      Conn = std::move(Queue.front());
      Queue.pop_front();
    }
    serveConnection(std::move(Conn));
  }
}

void Server::rejectConnection(Fd Conn) {
  Counters.Rejected.fetch_add(1, std::memory_order_relaxed);
  // Drain the request first (bounded, with a stall timeout) so the
  // client's write never jams against a closed socket, then answer.
  setReadTimeout(Conn, 5000);
  std::string Request, Error;
  readAll(Conn, Request, Opts.MaxRequestBytes, Error);
  respond(Conn, makeErrorResponse(
                    ErrRetryLater,
                    "job queue is full (depth " +
                        std::to_string(Opts.QueueDepth) +
                        "); back off and resubmit"));
}

void Server::serveConnection(Fd Conn) {
  setReadTimeout(Conn, 10000);
  std::string Request, Error;
  if (!readAll(Conn, Request, Opts.MaxRequestBytes, Error)) {
    Counters.BadRequests.fetch_add(1, std::memory_order_relaxed);
    respond(Conn, makeErrorResponse(ErrBadRequest, Error));
    return;
  }
  support::JsonParseLimits Limits;
  Limits.MaxBytes = Opts.MaxRequestBytes;
  JobRequest R;
  std::string Code, Message;
  if (!parseJobRequest(Request, R, Code, Message, Limits)) {
    Counters.BadRequests.fetch_add(1, std::memory_order_relaxed);
    respond(Conn, makeErrorResponse(Code, Message));
    return;
  }

  JobResponse Resp;
  switch (R.K) {
  case JobRequest::Kind::Ping: {
    Resp.Status = "ok";
    JsonValue Stats = JsonValue::object();
    Stats.set("server", JsonValue("cuadvisord"));
    Stats.set("protocol", JsonValue(RequestSchemaName));
    Resp.HasStats = true;
    Resp.Stats = std::move(Stats);
    break;
  }
  case JobRequest::Kind::Stats:
    Resp.Status = "ok";
    Resp.HasStats = true;
    Resp.Stats = statsToJson();
    break;
  case JobRequest::Kind::Profile:
    Resp = Runner.run(R);
    if (Resp.ok())
      Counters.JobsOk.fetch_add(1, std::memory_order_relaxed);
    else
      Counters.JobsFailed.fetch_add(1, std::memory_order_relaxed);
    break;
  }
  respond(Conn, Resp);
}

void Server::respond(const Fd &Conn, const JobResponse &R) {
  std::string Error;
  // A peer that hung up early makes this fail; that is its problem,
  // not the daemon's.
  writeAll(Conn, support::writeJson(responseToJson(R)), Error);
}

JsonValue Server::statsToJson() const {
  JsonValue Doc = JsonValue::object();
  JsonValue Srv = JsonValue::object();
  Srv.set("accepted", JsonValue(static_cast<int64_t>(
                          Counters.Accepted.load(std::memory_order_relaxed))));
  Srv.set("rejected", JsonValue(static_cast<int64_t>(
                          Counters.Rejected.load(std::memory_order_relaxed))));
  Srv.set("bad_requests",
          JsonValue(static_cast<int64_t>(
              Counters.BadRequests.load(std::memory_order_relaxed))));
  Srv.set("jobs_ok", JsonValue(static_cast<int64_t>(
                         Counters.JobsOk.load(std::memory_order_relaxed))));
  Srv.set("jobs_failed",
          JsonValue(static_cast<int64_t>(
              Counters.JobsFailed.load(std::memory_order_relaxed))));
  Srv.set("workers", JsonValue(static_cast<int64_t>(Opts.Workers)));
  Srv.set("queue_depth", JsonValue(static_cast<int64_t>(Opts.QueueDepth)));
  Doc.set("server", std::move(Srv));
  ArtifactCache::Stats CS = Cache.stats();
  JsonValue CacheJson = JsonValue::object();
  CacheJson.set("hits", JsonValue(static_cast<int64_t>(CS.Hits)));
  CacheJson.set("misses", JsonValue(static_cast<int64_t>(CS.Misses)));
  CacheJson.set("stores", JsonValue(static_cast<int64_t>(CS.Stores)));
  CacheJson.set("invalid", JsonValue(static_cast<int64_t>(CS.Invalid)));
  Doc.set("cache", std::move(CacheJson));
  return Doc;
}
