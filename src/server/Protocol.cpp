//===- server/Protocol.cpp - cuadvisord wire protocol ------------------------===//

#include "server/Protocol.h"

#include "core/instrument/InstrumentFilter.h"
#include "gpusim/Sampling.h"

using namespace cuadv;
using namespace cuadv::server;
using support::JsonValue;

//===----------------------------------------------------------------------===//
// Embedded schemas. examples/server_request_schema.json and
// examples/server_response_schema.json are generated from these texts
// (`cuadvisord --print-request-schema` / `--print-response-schema`) and
// the schema_embed CTests fail if the checked-in copies drift.
//===----------------------------------------------------------------------===//

const char *server::requestSchemaText() {
  return R"({
  "type": "object",
  "required": ["schema", "kind"],
  "additionalProperties": false,
  "properties": {
    "schema": {"type": "string", "enum": ["cuadv-job-request-1"]},
    "kind": {"type": "string", "enum": ["profile", "ping", "stats"]},
    "app": {"type": "string"},
    "source": {
      "type": "object",
      "required": ["code", "kernel"],
      "additionalProperties": false,
      "properties": {
        "code": {"type": "string"},
        "file": {"type": "string"},
        "kernel": {"type": "string"},
        "grid": {"type": "array", "items": {"type": "integer"}},
        "block": {"type": "array", "items": {"type": "integer"}},
        "args": {
          "type": "array",
          "items": {
            "type": "object",
            "required": ["type"],
            "additionalProperties": false,
            "properties": {
              "type": {"type": "string", "enum": ["int", "float", "buffer"]},
              "value": {"type": "number"},
              "bytes": {"type": "integer"},
              "fill": {"type": "string", "enum": ["zero", "iota"]}
            }
          }
        }
      }
    },
    "arch": {"type": "string", "enum": ["kepler16", "kepler48", "pascal"]},
    "limits": {
      "type": "object",
      "additionalProperties": false,
      "properties": {
        "watchdog_cycles": {"type": "integer"},
        "trace_capacity_events": {"type": "integer"},
        "timeout_ms": {"type": "integer"}
      }
    },
    "no_cache": {"type": "boolean"},
    "sample": {"type": "string"},
    "filter": {"type": "string"}
  }
}
)";
}

const char *server::responseSchemaText() {
  return R"({
  "type": "object",
  "required": ["schema", "status"],
  "additionalProperties": false,
  "properties": {
    "schema": {"type": "string", "enum": ["cuadv-job-response-1"]},
    "status": {"type": "string", "enum": ["ok", "error", "retry-later"]},
    "cache": {
      "type": "object",
      "required": ["key", "hit"],
      "additionalProperties": false,
      "properties": {
        "key": {"type": "string"},
        "hit": {"type": "boolean"}
      }
    },
    "artifact": {"type": "object"},
    "error": {
      "type": "object",
      "required": ["code", "message"],
      "additionalProperties": false,
      "properties": {
        "code": {"type": "string"},
        "message": {"type": "string"},
        "trap": {"type": "object"}
      }
    },
    "stats": {"type": "object"}
  }
}
)";
}

//===----------------------------------------------------------------------===//
// Request decoding.
//===----------------------------------------------------------------------===//

namespace {

/// The parsed schema documents, built once.
const JsonValue &requestSchema() {
  static JsonValue Schema = [] {
    JsonValue V;
    std::string Error;
    if (!support::parseJson(requestSchemaText(), V, Error))
      V = JsonValue::object(); // Unreachable for a well-formed constant.
    return V;
  }();
  return Schema;
}

bool fail(std::string &Code, std::string &Message, const std::string &Why) {
  Code = ErrBadRequest;
  Message = Why;
  return false;
}

/// Reads a non-negative integer member into \p Out (absent = keep the
/// default). Negative values are a semantic error the schema's plain
/// "integer" type cannot express.
bool readU64(const JsonValue &Obj, const char *Name, uint64_t &Out,
             std::string &Code, std::string &Message) {
  const JsonValue *V = Obj.find(Name);
  if (!V)
    return true;
  if (V->asInteger() < 0)
    return fail(Code, Message,
                std::string("'") + Name + "' must be non-negative");
  Out = static_cast<uint64_t>(V->asInteger());
  return true;
}

/// Reads a 1- or 2-element positive dimension array into X/Y.
bool readDim(const JsonValue &Obj, const char *Name, unsigned &X, unsigned &Y,
             std::string &Code, std::string &Message) {
  const JsonValue *V = Obj.find(Name);
  if (!V)
    return true;
  if (V->size() < 1 || V->size() > 2)
    return fail(Code, Message,
                std::string("'") + Name + "' must have 1 or 2 elements");
  for (size_t I = 0; I < V->size(); ++I)
    if (V->at(I).asInteger() <= 0)
      return fail(Code, Message,
                  std::string("'") + Name + "' elements must be positive");
  X = static_cast<unsigned>(V->at(0).asInteger());
  Y = V->size() == 2 ? static_cast<unsigned>(V->at(1).asInteger()) : 1;
  return true;
}

bool readArgs(const JsonValue &Source, std::vector<ArgSpec> &Out,
              std::string &Code, std::string &Message) {
  const JsonValue *Args = Source.find("args");
  if (!Args)
    return true;
  for (size_t I = 0; I < Args->size(); ++I) {
    const JsonValue &A = Args->at(I);
    const std::string &Type = A.find("type")->asString();
    ArgSpec Spec;
    if (Type == "int") {
      const JsonValue *V = A.find("value");
      if (!V)
        return fail(Code, Message, "int argument requires 'value'");
      Spec.K = ArgSpec::Kind::Int;
      Spec.IntV = V->asInteger();
    } else if (Type == "float") {
      const JsonValue *V = A.find("value");
      if (!V)
        return fail(Code, Message, "float argument requires 'value'");
      Spec.K = ArgSpec::Kind::Float;
      Spec.FloatV = V->asDouble();
    } else { // "buffer" (schema-checked enum).
      const JsonValue *Bytes = A.find("bytes");
      if (!Bytes || Bytes->asInteger() <= 0)
        return fail(Code, Message,
                    "buffer argument requires positive 'bytes'");
      Spec.K = ArgSpec::Kind::Buffer;
      Spec.Bytes = static_cast<uint64_t>(Bytes->asInteger());
      if (const JsonValue *Fill = A.find("fill"))
        Spec.Fill = Fill->asString();
    }
    Out.push_back(std::move(Spec));
  }
  return true;
}

} // namespace

bool server::parseJobRequest(const std::string &Text, JobRequest &Out,
                             std::string &ErrorCode, std::string &ErrorMessage,
                             const support::JsonParseLimits &Limits) {
  JsonValue Doc;
  support::JsonParseError PE;
  if (!support::parseJson(Text, Doc, PE, Limits)) {
    ErrorCode = ErrBadRequest;
    ErrorMessage = std::string("request is not valid JSON (") +
                   support::jsonParseErrorKindName(PE.K) + "): " + PE.Message;
    return false;
  }
  std::string SchemaError;
  if (!support::validateJsonSchema(Doc, requestSchema(), SchemaError))
    return fail(ErrorCode, ErrorMessage,
                "request fails schema: " + SchemaError);

  Out = JobRequest();
  const std::string &Kind = Doc.find("kind")->asString();
  if (Kind == "ping")
    Out.K = JobRequest::Kind::Ping;
  else if (Kind == "stats")
    Out.K = JobRequest::Kind::Stats;
  else
    Out.K = JobRequest::Kind::Profile;

  if (const JsonValue *App = Doc.find("app"))
    Out.App = App->asString();
  if (const JsonValue *Arch = Doc.find("arch"))
    Out.Arch = Arch->asString();
  if (const JsonValue *NoCache = Doc.find("no_cache"))
    Out.NoCache = NoCache->asBool();
  if (const JsonValue *Sample = Doc.find("sample")) {
    Out.Sample = Sample->asString();
    gpusim::SamplingSpec Spec;
    std::string Why;
    if (!gpusim::SamplingSpec::parse(Out.Sample, Spec, Why))
      return fail(ErrorCode, ErrorMessage, "'sample': " + Why);
  }
  if (const JsonValue *Filter = Doc.find("filter")) {
    Out.Filter = Filter->asString();
    core::InstrumentFilter F;
    std::string Why;
    if (!core::InstrumentFilter::parse(Out.Filter, F, Why))
      return fail(ErrorCode, ErrorMessage, "'filter': " + Why);
  }

  if (const JsonValue *Limits2 = Doc.find("limits")) {
    if (!readU64(*Limits2, "watchdog_cycles", Out.Limits.WatchdogCycles,
                 ErrorCode, ErrorMessage) ||
        !readU64(*Limits2, "trace_capacity_events",
                 Out.Limits.TraceCapacityEvents, ErrorCode, ErrorMessage) ||
        !readU64(*Limits2, "timeout_ms", Out.Limits.TimeoutMs, ErrorCode,
                 ErrorMessage))
      return false;
  }

  if (const JsonValue *Source = Doc.find("source")) {
    Out.HasSource = true;
    Out.Source.Code = Source->find("code")->asString();
    Out.Source.Kernel = Source->find("kernel")->asString();
    if (const JsonValue *File = Source->find("file"))
      Out.Source.FileName = File->asString();
    if (!readDim(*Source, "grid", Out.Source.GridX, Out.Source.GridY,
                 ErrorCode, ErrorMessage) ||
        !readDim(*Source, "block", Out.Source.BlockX, Out.Source.BlockY,
                 ErrorCode, ErrorMessage) ||
        !readArgs(*Source, Out.Source.Args, ErrorCode, ErrorMessage))
      return false;
  }

  if (Out.K == JobRequest::Kind::Profile) {
    if (Out.App.empty() == !Out.HasSource)
      return fail(ErrorCode, ErrorMessage,
                  "a profile job requires exactly one of 'app' or 'source'");
  }
  return true;
}

//===----------------------------------------------------------------------===//
// Encoding.
//===----------------------------------------------------------------------===//

JsonValue server::requestToJson(const JobRequest &R) {
  JsonValue Doc = JsonValue::object();
  Doc.set("schema", JsonValue(RequestSchemaName));
  switch (R.K) {
  case JobRequest::Kind::Profile:
    Doc.set("kind", JsonValue("profile"));
    break;
  case JobRequest::Kind::Ping:
    Doc.set("kind", JsonValue("ping"));
    break;
  case JobRequest::Kind::Stats:
    Doc.set("kind", JsonValue("stats"));
    break;
  }
  if (!R.App.empty())
    Doc.set("app", JsonValue(R.App));
  if (R.HasSource) {
    JsonValue S = JsonValue::object();
    S.set("code", JsonValue(R.Source.Code));
    S.set("file", JsonValue(R.Source.FileName));
    S.set("kernel", JsonValue(R.Source.Kernel));
    JsonValue Grid = JsonValue::array();
    Grid.push_back(JsonValue(R.Source.GridX));
    Grid.push_back(JsonValue(R.Source.GridY));
    S.set("grid", Grid);
    JsonValue Block = JsonValue::array();
    Block.push_back(JsonValue(R.Source.BlockX));
    Block.push_back(JsonValue(R.Source.BlockY));
    S.set("block", Block);
    JsonValue Args = JsonValue::array();
    for (const ArgSpec &A : R.Source.Args) {
      JsonValue Arg = JsonValue::object();
      switch (A.K) {
      case ArgSpec::Kind::Int:
        Arg.set("type", JsonValue("int"));
        Arg.set("value", JsonValue(A.IntV));
        break;
      case ArgSpec::Kind::Float:
        Arg.set("type", JsonValue("float"));
        Arg.set("value", JsonValue(A.FloatV));
        break;
      case ArgSpec::Kind::Buffer:
        Arg.set("type", JsonValue("buffer"));
        Arg.set("bytes", JsonValue(static_cast<int64_t>(A.Bytes)));
        if (!A.Fill.empty())
          Arg.set("fill", JsonValue(A.Fill));
        break;
      }
      Args.push_back(std::move(Arg));
    }
    S.set("args", Args);
    Doc.set("source", std::move(S));
  }
  Doc.set("arch", JsonValue(R.Arch));
  JsonValue Limits = JsonValue::object();
  Limits.set("watchdog_cycles",
             JsonValue(static_cast<int64_t>(R.Limits.WatchdogCycles)));
  Limits.set("trace_capacity_events",
             JsonValue(static_cast<int64_t>(R.Limits.TraceCapacityEvents)));
  Limits.set("timeout_ms",
             JsonValue(static_cast<int64_t>(R.Limits.TimeoutMs)));
  Doc.set("limits", std::move(Limits));
  if (R.NoCache)
    Doc.set("no_cache", JsonValue(true));
  if (!R.Sample.empty())
    Doc.set("sample", JsonValue(R.Sample));
  if (!R.Filter.empty())
    Doc.set("filter", JsonValue(R.Filter));
  return Doc;
}

JsonValue server::responseToJson(const JobResponse &R) {
  JsonValue Doc = JsonValue::object();
  Doc.set("schema", JsonValue(ResponseSchemaName));
  Doc.set("status", JsonValue(R.Status));
  if (!R.CacheKey.empty()) {
    JsonValue Cache = JsonValue::object();
    Cache.set("key", JsonValue(R.CacheKey));
    Cache.set("hit", JsonValue(R.CacheHit));
    Doc.set("cache", std::move(Cache));
  }
  if (R.HasArtifact)
    Doc.set("artifact", R.Artifact);
  if (!R.ErrorCode.empty()) {
    JsonValue Error = JsonValue::object();
    Error.set("code", JsonValue(R.ErrorCode));
    Error.set("message", JsonValue(R.ErrorMessage));
    if (R.HasTrap)
      Error.set("trap", R.Trap);
    Doc.set("error", std::move(Error));
  }
  if (R.HasStats)
    Doc.set("stats", R.Stats);
  return Doc;
}

bool server::parseJobResponse(const std::string &Text, JobResponse &Out,
                              std::string &Error) {
  JsonValue Doc;
  if (!support::parseJson(Text, Doc, Error))
    return false;
  if (!Doc.isObject()) {
    Error = "response is not a JSON object";
    return false;
  }
  const JsonValue *Schema = Doc.find("schema");
  if (!Schema || Schema->asString() != ResponseSchemaName) {
    Error = "response carries an unknown schema tag";
    return false;
  }
  const JsonValue *Status = Doc.find("status");
  if (!Status || !Status->isString()) {
    Error = "response has no status";
    return false;
  }
  Out = JobResponse();
  Out.Status = Status->asString();
  if (const JsonValue *Cache = Doc.find("cache")) {
    if (const JsonValue *Key = Cache->find("key"))
      Out.CacheKey = Key->asString();
    if (const JsonValue *Hit = Cache->find("hit"))
      Out.CacheHit = Hit->asBool();
  }
  if (const JsonValue *Artifact = Doc.find("artifact")) {
    Out.HasArtifact = true;
    Out.Artifact = *Artifact;
  }
  if (const JsonValue *E = Doc.find("error")) {
    if (const JsonValue *Code = E->find("code"))
      Out.ErrorCode = Code->asString();
    if (const JsonValue *Message = E->find("message"))
      Out.ErrorMessage = Message->asString();
    if (const JsonValue *Trap = E->find("trap")) {
      Out.HasTrap = true;
      Out.Trap = *Trap;
    }
  }
  if (const JsonValue *Stats = Doc.find("stats")) {
    Out.HasStats = true;
    Out.Stats = *Stats;
  }
  return true;
}

JobResponse server::makeErrorResponse(const std::string &Code,
                                      const std::string &Message) {
  JobResponse R;
  R.Status = Code == ErrRetryLater ? "retry-later" : "error";
  R.ErrorCode = Code;
  R.ErrorMessage = Message;
  return R;
}
