//===- server/Client.cpp - cuadvisord client-side submission ------------------===//

#include "server/Client.h"

#include "server/Socket.h"

#include <algorithm>
#include <chrono>
#include <thread>

using namespace cuadv;
using namespace cuadv::server;

bool server::submitOnce(const std::string &SocketPath,
                        const std::string &RequestJson,
                        std::string &ResponseJson, std::string &Error,
                        uint64_t MaxResponseBytes) {
  Fd Sock = connectUnix(SocketPath, Error);
  if (!Sock.valid())
    return false;
  if (!writeAll(Sock, RequestJson, Error))
    return false;
  return readAll(Sock, ResponseJson, MaxResponseBytes, Error);
}

SubmitResult server::submitWithRetry(const std::string &SocketPath,
                                     const std::string &RequestJson,
                                     const SubmitOptions &Opts) {
  SubmitResult Result;
  unsigned BackoffMs = Opts.InitialBackoffMs;
  unsigned MaxAttempts = std::max(1u, Opts.MaxAttempts);
  for (unsigned Attempt = 0; Attempt < MaxAttempts; ++Attempt) {
    ++Result.Attempts;
    if (!submitOnce(SocketPath, RequestJson, Result.ResponseJson,
                    Result.Error, Opts.MaxResponseBytes))
      return Result; // Transport failure: no daemon / hangup; no retry.
    if (!parseJobResponse(Result.ResponseJson, Result.Response,
                          Result.Error))
      return Result;
    Result.TransportOk = true;
    if (!Result.Response.retryLater())
      return Result;
    if (Attempt + 1 < MaxAttempts) {
      std::this_thread::sleep_for(std::chrono::milliseconds(BackoffMs));
      BackoffMs = std::min(BackoffMs * 2, Opts.MaxBackoffMs);
    }
  }
  Result.RetriesExhausted = true;
  return Result;
}
