//===- server/Socket.cpp - Unix-domain socket plumbing ------------------------===//

#include "server/Socket.h"

#include <cerrno>
#include <cstring>
#include <poll.h>
#include <signal.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

using namespace cuadv;
using namespace cuadv::server;

Fd &Fd::operator=(Fd &&Other) noexcept {
  if (this != &Other) {
    reset();
    RawFd = Other.release();
  }
  return *this;
}

int Fd::release() {
  int R = RawFd;
  RawFd = -1;
  return R;
}

void Fd::reset() {
  if (RawFd >= 0)
    ::close(RawFd);
  RawFd = -1;
}

namespace {

std::string errnoMessage(const char *What) {
  return std::string(What) + ": " + std::strerror(errno);
}

/// A peer that disappears mid-write must produce EPIPE, not a
/// process-killing SIGPIPE: one disconnecting client must never take
/// the daemon down.
void ignoreSigpipeOnce() {
  static const bool Ignored = [] {
    ::signal(SIGPIPE, SIG_IGN);
    return true;
  }();
  (void)Ignored;
}

bool fillSockaddr(const std::string &Path, sockaddr_un &Addr,
                  std::string &Error) {
  std::memset(&Addr, 0, sizeof(Addr));
  Addr.sun_family = AF_UNIX;
  if (Path.size() + 1 > sizeof(Addr.sun_path)) {
    Error = "socket path '" + Path + "' is too long for AF_UNIX";
    return false;
  }
  std::memcpy(Addr.sun_path, Path.c_str(), Path.size() + 1);
  return true;
}

} // namespace

Fd server::listenUnix(const std::string &Path, std::string &Error) {
  ignoreSigpipeOnce();
  sockaddr_un Addr;
  if (!fillSockaddr(Path, Addr, Error))
    return Fd();
  Fd Sock(::socket(AF_UNIX, SOCK_STREAM, 0));
  if (!Sock.valid()) {
    Error = errnoMessage("socket");
    return Fd();
  }
  // A previous daemon instance (or a kill -9'd one) leaves the socket
  // file behind; binding over it needs the unlink first.
  ::unlink(Path.c_str());
  if (::bind(Sock.get(), reinterpret_cast<sockaddr *>(&Addr),
             sizeof(Addr)) != 0) {
    Error = errnoMessage(("bind '" + Path + "'").c_str());
    return Fd();
  }
  if (::listen(Sock.get(), 64) != 0) {
    Error = errnoMessage("listen");
    return Fd();
  }
  return Sock;
}

Fd server::acceptWithTimeout(const Fd &Listener, int TimeoutMs,
                             std::string &Error) {
  Error.clear();
  pollfd P;
  P.fd = Listener.get();
  P.events = POLLIN;
  P.revents = 0;
  int N = ::poll(&P, 1, TimeoutMs);
  if (N == 0)
    return Fd(); // Timeout: let the caller check its shutdown flag.
  if (N < 0) {
    if (errno != EINTR)
      Error = errnoMessage("poll");
    return Fd(); // EINTR (a signal landed) is a silent retry.
  }
  int Client = ::accept(Listener.get(), nullptr, nullptr);
  if (Client < 0) {
    if (errno != EINTR && errno != ECONNABORTED)
      Error = errnoMessage("accept");
    return Fd();
  }
  return Fd(Client);
}

Fd server::connectUnix(const std::string &Path, std::string &Error) {
  ignoreSigpipeOnce();
  sockaddr_un Addr;
  if (!fillSockaddr(Path, Addr, Error))
    return Fd();
  Fd Sock(::socket(AF_UNIX, SOCK_STREAM, 0));
  if (!Sock.valid()) {
    Error = errnoMessage("socket");
    return Fd();
  }
  if (::connect(Sock.get(), reinterpret_cast<sockaddr *>(&Addr),
                sizeof(Addr)) != 0) {
    Error = errnoMessage(("connect '" + Path + "'").c_str());
    return Fd();
  }
  return Sock;
}

bool server::readAll(const Fd &Sock, std::string &Out, uint64_t MaxBytes,
                     std::string &Error) {
  Out.clear();
  char Buf[64 * 1024];
  for (;;) {
    ssize_t N = ::read(Sock.get(), Buf, sizeof(Buf));
    if (N == 0)
      return true;
    if (N < 0) {
      if (errno == EINTR)
        continue;
      Error = errnoMessage("read");
      return false;
    }
    if (Out.size() + static_cast<uint64_t>(N) > MaxBytes) {
      Error = "message exceeds the " + std::to_string(MaxBytes) +
              "-byte request cap";
      return false;
    }
    Out.append(Buf, static_cast<size_t>(N));
  }
}

bool server::writeAll(const Fd &Sock, const std::string &Bytes,
                      std::string &Error) {
  size_t Off = 0;
  while (Off < Bytes.size()) {
    ssize_t N = ::write(Sock.get(), Bytes.data() + Off, Bytes.size() - Off);
    if (N < 0) {
      if (errno == EINTR)
        continue;
      Error = errnoMessage("write");
      return false;
    }
    Off += static_cast<size_t>(N);
  }
  ::shutdown(Sock.get(), SHUT_WR);
  return true;
}
