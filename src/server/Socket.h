//===- server/Socket.h - Unix-domain socket plumbing ----------------*- C++ -*-===//
//
// Part of the CUDAAdvisor reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The thin POSIX layer under cuadvisord and its clients: bind/listen
/// on an AF_UNIX stream socket, accept with a poll timeout (so the
/// accept loop can notice a shutdown flag), and bounded whole-message
/// reads. Framing is one JSON document per connection: the writer
/// sends its document and shuts down its write side; the reader reads
/// to EOF under a byte cap. No partial-message states to get wrong,
/// and a hostile peer can hold at most one bounded buffer.
///
//===----------------------------------------------------------------------===//

#ifndef CUADV_SERVER_SOCKET_H
#define CUADV_SERVER_SOCKET_H

#include <cstdint>
#include <string>

namespace cuadv {
namespace server {

/// RAII file descriptor.
class Fd {
public:
  Fd() = default;
  explicit Fd(int RawFd) : RawFd(RawFd) {}
  Fd(Fd &&Other) noexcept : RawFd(Other.release()) {}
  Fd &operator=(Fd &&Other) noexcept;
  ~Fd() { reset(); }
  Fd(const Fd &) = delete;
  Fd &operator=(const Fd &) = delete;

  bool valid() const { return RawFd >= 0; }
  int get() const { return RawFd; }
  int release();
  void reset();

private:
  int RawFd = -1;
};

/// Creates, binds and listens on a unix-domain stream socket at
/// \p Path, replacing a stale socket file from a previous daemon.
/// Invalid Fd + \p Error on failure.
Fd listenUnix(const std::string &Path, std::string &Error);

/// Accepts one connection, waiting at most \p TimeoutMs. Returns an
/// invalid Fd on timeout (empty \p Error) and on error (\p Error set).
Fd acceptWithTimeout(const Fd &Listener, int TimeoutMs, std::string &Error);

/// Connects to the daemon socket at \p Path.
Fd connectUnix(const std::string &Path, std::string &Error);

/// Reads from \p Sock until EOF into \p Out, rejecting peers that send
/// more than \p MaxBytes ("message exceeds the N-byte request cap").
bool readAll(const Fd &Sock, std::string &Out, uint64_t MaxBytes,
             std::string &Error);

/// Writes all of \p Bytes (retrying short writes) and shuts down the
/// write side so the peer's readAll sees EOF.
bool writeAll(const Fd &Sock, const std::string &Bytes, std::string &Error);

} // namespace server
} // namespace cuadv

#endif // CUADV_SERVER_SOCKET_H
