//===- server/JobRunner.h - One profiling job, fully isolated -------*- C++ -*-===//
//
// Part of the CUDAAdvisor reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Runs one validated job request end to end under an enforced resource
/// envelope: compile (workload or raw MiniCUDA source), consult the
/// artifact cache, simulate with full instrumentation on a bounded
/// trace buffer and a watchdog cycle budget, enforce the wall-clock
/// timeout through the executor's cooperative cancel flag, and render
/// either a cuadv-profile-1 artifact or a structured error reusing the
/// guest-trap JSON model. A job can fail; the runner never can — every
/// failure mode maps to a JobResponse, which is what keeps the daemon
/// alive across hostile jobs.
///
//===----------------------------------------------------------------------===//

#ifndef CUADV_SERVER_JOBRUNNER_H
#define CUADV_SERVER_JOBRUNNER_H

#include "server/ArtifactCache.h"
#include "server/Protocol.h"

#include <atomic>
#include <cstdint>

namespace cuadv {
namespace server {

/// Server-side caps and defaults of the per-job resource envelope.
/// Requests may tighten any knob below the cap; zero in a request means
/// "use the default", and requests above a cap are clamped to it.
struct JobRunnerOptions {
  /// Sized to clear the largest single launch in the paper suite
  /// (lavaMD, ~2^28 cycles) with headroom; genuinely-runaway kernels
  /// still terminate in bounded time.
  uint64_t DefaultWatchdogCycles = 1ull << 30;
  uint64_t MaxWatchdogCycles = 1ull << 32;
  uint64_t DefaultTraceCapacityEvents = 1ull << 20;
  uint64_t MaxTraceCapacityEvents = 1ull << 24;
  uint64_t DefaultTimeoutMs = 60 * 1000;
  uint64_t MaxTimeoutMs = 5 * 60 * 1000;
  /// Per-SM simulation workers inside one job. The job-level pool is
  /// the server's; keeping this at 1 bounds total threads at
  /// workers * 1 and preserves byte-identical artifacts regardless.
  unsigned SmJobs = 1;
};

/// The envelope actually applied to a job after clamping.
struct ResolvedLimits {
  uint64_t WatchdogCycles = 0;
  uint64_t TraceCapacityEvents = 0;
  uint64_t TimeoutMs = 0;
};

/// Applies defaults and caps from \p Opts to a request's limits.
ResolvedLimits resolveLimits(const JobLimits &Requested,
                             const JobRunnerOptions &Opts);

class JobRunner {
public:
  JobRunner(JobRunnerOptions Opts, ArtifactCache &Cache)
      : Opts(Opts), Cache(Cache) {}

  /// Runs one profile job. \p ExternalCancel (optional) lets the caller
  /// cancel mid-simulation (the daemon does not use it for SIGTERM —
  /// drain semantics — but tests and embedders can). Thread-compatible:
  /// concurrent run() calls share only the cache, which callers must
  /// serialize (the Server wraps it in a mutex).
  JobResponse run(const JobRequest &R,
                  const std::atomic<bool> *ExternalCancel = nullptr);

  const JobRunnerOptions &options() const { return Opts; }

private:
  JobRunnerOptions Opts;
  ArtifactCache &Cache;
};

} // namespace server
} // namespace cuadv

#endif // CUADV_SERVER_JOBRUNNER_H
