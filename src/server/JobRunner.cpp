//===- server/JobRunner.cpp - One profiling job, fully isolated ---------------===//

#include "server/JobRunner.h"

#include "core/analysis/ProfileArtifact.h"
#include "core/instrument/InstrumentFilter.h"
#include "core/instrument/InstrumentationEngine.h"
#include "core/profiler/Profiler.h"
#include "frontend/Compiler.h"
#include "gpusim/Program.h"
#include "ir/Printer.h"
#include "runtime/Runtime.h"
#include "support/Format.h"
#include "workloads/Workloads.h"

#include <algorithm>
#include <chrono>
#include <memory>
#include <thread>

using namespace cuadv;
using namespace cuadv::server;
using support::JsonValue;

ResolvedLimits server::resolveLimits(const JobLimits &Requested,
                                     const JobRunnerOptions &Opts) {
  auto Clamp = [](uint64_t Asked, uint64_t Default, uint64_t Max) {
    uint64_t V = Asked ? Asked : Default;
    return std::min(V, Max);
  };
  ResolvedLimits L;
  L.WatchdogCycles = Clamp(Requested.WatchdogCycles,
                           Opts.DefaultWatchdogCycles,
                           Opts.MaxWatchdogCycles);
  L.TraceCapacityEvents = Clamp(Requested.TraceCapacityEvents,
                                Opts.DefaultTraceCapacityEvents,
                                Opts.MaxTraceCapacityEvents);
  L.TimeoutMs =
      Clamp(Requested.TimeoutMs, Opts.DefaultTimeoutMs, Opts.MaxTimeoutMs);
  return L;
}

namespace {

/// Canonical text of every DeviceSpec field that can change a job's
/// deterministic output — the third stream of the cache key. The
/// cancel flag and host worker counts are deliberately absent: neither
/// may change artifact bytes.
std::string specCacheText(const gpusim::DeviceSpec &S) {
  return cuadv::formatString(
      "%s|ws=%u|sms=%u|ctas=%u|warps=%u|l1=%llu/%u/%u|mshr=%u|"
      "lat=%u,%u,%u,%u,%u,%u,%u,%u,%u,%u,%u,%u,%u|"
      "hook=%u,%u,%u,%u,%u,%u|wd=%llu|mem=%llu|shard=%llu|sample=%s",
      S.Name.c_str(), S.WarpSize, S.NumSMs, S.MaxCTAsPerSM, S.MaxWarpsPerSM,
      static_cast<unsigned long long>(S.L1SizeBytes), S.L1LineBytes,
      S.L1Assoc, S.MSHREntries, S.IssueCycles, S.IntLatency, S.FpLatency,
      S.SfuLatency, S.SharedLatency, S.LocalLatency, S.L1HitLatency,
      S.L1MissLatency, S.BypassLatency, S.StoreLatency,
      S.LsuCyclesPerTransaction, S.MshrFullPenalty,
      S.DramCyclesPerTransaction, S.HookBaseCost, S.HookAtomicCost,
      S.HookContentionFactor, S.HookSkipCost, S.HookStageCost,
      S.HookFlushBatch,
      static_cast<unsigned long long>(S.WatchdogCycleBudget),
      static_cast<unsigned long long>(S.GlobalMemBytes),
      static_cast<unsigned long long>(S.ShardCapacityEvents),
      S.Sampling.str().c_str());
}

/// Generic host driver for raw-source jobs: allocates the requested
/// buffers through the runtime (so the profiler's data-centric index
/// sees them), uploads their fill pattern, and launches the named
/// kernel once. Launch validation and guest faults surface exactly as
/// they do for the built-in workloads — through KernelStats::Trap.
workloads::RunOutcome runSourceJob(runtime::Runtime &RT,
                                   const gpusim::Program &P,
                                   const SourceJob &S) {
  CUADV_HOST_FRAME(RT, "cuadvisord_job");
  workloads::RunOutcome Out;
  std::vector<gpusim::RtValue> Args;
  for (const ArgSpec &A : S.Args) {
    switch (A.K) {
    case ArgSpec::Kind::Int:
      Args.push_back(gpusim::RtValue::fromInt(A.IntV));
      break;
    case ArgSpec::Kind::Float:
      Args.push_back(gpusim::RtValue::fromFloat(A.FloatV));
      break;
    case ArgSpec::Kind::Buffer: {
      uint64_t Addr = RT.cudaMalloc(A.Bytes);
      if (!Addr) {
        Out.Ok = false;
        Out.Message = cuadv::formatString(
            "device allocation of %llu bytes failed",
            static_cast<unsigned long long>(A.Bytes));
        return Out;
      }
      if (A.Fill == "iota") {
        std::vector<float> Host(A.Bytes / sizeof(float));
        for (size_t I = 0; I < Host.size(); ++I)
          Host[I] = static_cast<float>(I);
        RT.cudaMemcpyH2D(Addr, Host.data(), Host.size() * sizeof(float));
      } else {
        std::vector<uint8_t> Host(A.Bytes, 0);
        RT.cudaMemcpyH2D(Addr, Host.data(), Host.size());
      }
      Args.push_back(gpusim::RtValue::fromPtr(Addr));
      break;
    }
    }
  }
  gpusim::LaunchConfig Cfg;
  Cfg.Grid = {S.GridX, S.GridY};
  Cfg.Block = {S.BlockX, S.BlockY};
  gpusim::KernelStats Stats = RT.launch(P, S.Kernel, Cfg, Args);
  bool Faulted = Stats.faulted();
  if (Faulted) {
    Out.Ok = false;
    Out.Message = Stats.Trap->render();
  }
  Out.Launches.push_back(std::move(Stats));
  return Out;
}

JobResponse errorResponse(const char *Code, std::string Message) {
  return makeErrorResponse(Code, std::move(Message));
}

} // namespace

JobResponse JobRunner::run(const JobRequest &R,
                           const std::atomic<bool> *ExternalCancel) {
  if (R.K != JobRequest::Kind::Profile)
    return errorResponse(ErrInternal,
                         "JobRunner only executes profile jobs");

  gpusim::DeviceSpec Spec;
  if (!gpusim::DeviceSpec::benchPreset(R.Arch, Spec))
    return errorResponse(ErrBadRequest, "unknown arch '" + R.Arch + "'");
  ResolvedLimits L = resolveLimits(R.Limits, Opts);
  Spec.WatchdogCycleBudget = L.WatchdogCycles;
  Spec.Jobs = Opts.SmJobs ? Opts.SmJobs : 1;

  // Sampling and filter specs: parsed here too (not just at the wire)
  // so direct JobRunner callers get the same validation.
  if (!R.Sample.empty()) {
    std::string Why;
    if (!gpusim::SamplingSpec::parse(R.Sample, Spec.Sampling, Why))
      return errorResponse(ErrBadRequest, "'sample': " + Why);
  }
  core::InstrumentFilter Filter;
  if (!R.Filter.empty()) {
    std::string Why;
    if (!core::InstrumentFilter::parse(R.Filter, Filter, Why))
      return errorResponse(ErrBadRequest, "'filter': " + Why);
  }

  // Compile. Workload jobs use the registered app's source; source jobs
  // compile what the client sent.
  ir::Context Ctx;
  std::unique_ptr<ir::Module> M;
  const workloads::Workload *W = nullptr;
  if (!R.App.empty()) {
    W = workloads::findWorkload(R.App);
    if (!W)
      return errorResponse(ErrUnknownApp, "unknown app '" + R.App + "'");
    frontend::CompileResult CR = workloads::compileWorkload(*W, Ctx);
    if (!CR.succeeded())
      return errorResponse(ErrCompile, CR.firstError(W->SourceFile));
    M = std::move(CR.M);
  } else {
    frontend::CompileResult CR = frontend::compileMiniCuda(
        R.Source.Code, R.Source.FileName, Ctx);
    if (!CR.succeeded())
      return errorResponse(ErrCompile, CR.firstError(R.Source.FileName));
    M = std::move(CR.M);
  }

  // Content address: printed IR + the result-affecting request inputs +
  // the device spec. Timeout and no_cache are excluded — neither may
  // change a *completed* job's deterministic bytes.
  JobRequest KeyReq = R;
  KeyReq.NoCache = false;
  KeyReq.Limits.WatchdogCycles = L.WatchdogCycles;
  KeyReq.Limits.TraceCapacityEvents = L.TraceCapacityEvents;
  KeyReq.Limits.TimeoutMs = 0;
  // Canonical sampling/filter texts: spelling variants of the same spec
  // share a cache entry, and a sampled or filtered profile can never be
  // keyed (hence served) as an exact one. The sampling params also sit
  // in specCacheText via Spec.Sampling.
  KeyReq.Sample = Spec.Sampling.enabled() ? Spec.Sampling.str() : "";
  KeyReq.Filter = Filter.canonicalText();
  std::string Key = cacheKeyFor(ir::printModule(*M),
                                support::writeJson(requestToJson(KeyReq)),
                                specCacheText(Spec));

  JobResponse Resp;
  Resp.CacheKey = Key;

  if (!R.NoCache) {
    std::string Cached;
    if (Cache.lookup(Key, Cached)) {
      JsonValue Doc;
      std::string Error;
      support::parseJson(Cached, Doc, Error); // Validated by lookup.
      Resp.Status = "ok";
      Resp.CacheHit = true;
      Resp.HasArtifact = true;
      Resp.Artifact = std::move(Doc);
      return Resp;
    }
  }

  // Simulate under the envelope. The cancel atomic outlives the
  // runtime; the monitor thread flips it at the wall-clock deadline or
  // when the caller's external cancel fires.
  std::atomic<bool> Cancel{false};
  std::atomic<bool> TimedOut{false};
  Spec.CancelFlag = &Cancel;

  core::InstrumentationConfig Cfg = core::InstrumentationConfig::full();
  Cfg.GlobalMemoryOnly = false;
  Cfg.Filter = Filter;
  core::InstrumentationInfo Info = core::InstrumentationEngine(Cfg).run(*M);
  std::unique_ptr<gpusim::Program> Prog = gpusim::Program::compile(*M);
  auto RT = std::make_unique<runtime::Runtime>(Spec);
  core::Profiler Prof;
  Prof.setTraceBufferPolicy({L.TraceCapacityEvents, /*SampleBackoff=*/true});
  Prof.attach(*RT);
  Prof.setInstrumentationInfo(&Info);
  Prof.setSamplingSpec(Spec.Sampling);

  std::atomic<bool> Done{false};
  std::thread Monitor;
  if (L.TimeoutMs || ExternalCancel) {
    auto Deadline = std::chrono::steady_clock::now() +
                    std::chrono::milliseconds(L.TimeoutMs);
    bool HasDeadline = L.TimeoutMs != 0;
    Monitor = std::thread([&, Deadline, HasDeadline] {
      while (!Done.load(std::memory_order_relaxed)) {
        if (ExternalCancel &&
            ExternalCancel->load(std::memory_order_relaxed)) {
          Cancel.store(true, std::memory_order_relaxed);
          return;
        }
        if (HasDeadline && std::chrono::steady_clock::now() >= Deadline) {
          TimedOut.store(true, std::memory_order_relaxed);
          Cancel.store(true, std::memory_order_relaxed);
          return;
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(2));
      }
    });
  }

  auto Start = std::chrono::steady_clock::now();
  workloads::RunOutcome Outcome =
      W ? W->Run(*RT, *Prog, {}) : runSourceJob(*RT, *Prog, R.Source);
  double WallMs =
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - Start)
          .count() /
      1000.0;
  Done.store(true, std::memory_order_relaxed);
  if (Monitor.joinable())
    Monitor.join();

  // Crash-safe partial data: the artifact is built whether or not the
  // run faulted, exactly like cuadvisor's finalization path.
  std::string AppName = W ? W->Name : R.Source.Kernel;
  unsigned WarpsPerCTA =
      W ? W->WarpsPerCTA
        : std::max(1u, (R.Source.BlockX * R.Source.BlockY + Spec.WarpSize -
                        1) /
                           Spec.WarpSize);
  core::WorkloadProfileInputs In{Prof,        *M,
                                 Spec,        WarpsPerCTA,
                                 &RT->faultLog(), &RT->counters(),
                                 WallMs};
  core::ProfileArtifact A;
  A.Preset = R.Arch;
  A.Workloads.push_back(core::buildWorkloadProfile(AppName, In));
  std::string ArtifactBytes = support::writeJson(artifactToJson(A));
  JsonValue ArtifactDoc;
  {
    std::string Error;
    support::parseJson(ArtifactBytes, ArtifactDoc, Error);
  }

  if (!RT->faultLog().empty()) {
    const gpusim::TrapRecord &Trap = *RT->faultLog().front();
    Resp.Status = "error";
    Resp.ErrorCode = Trap.Kind == gpusim::TrapKind::Canceled
                         ? (TimedOut.load() ? ErrTimeout : "canceled")
                         : gpusim::trapKindName(Trap.Kind);
    Resp.ErrorMessage = Trap.render();
    Resp.HasTrap = true;
    Resp.Trap = Trap.toJson();
    Resp.HasArtifact = true; // Partial profile, Faulted=true inside.
    Resp.Artifact = std::move(ArtifactDoc);
    return Resp;
  }
  if (!Outcome.Ok) {
    Resp.Status = "error";
    Resp.ErrorCode = ErrRunFailed;
    Resp.ErrorMessage = Outcome.Message;
    Resp.HasArtifact = true;
    Resp.Artifact = std::move(ArtifactDoc);
    return Resp;
  }

  if (!R.NoCache) {
    std::string Error;
    // A failed store degrades to cache-miss behaviour; the job result
    // is unaffected.
    Cache.store(Key, ArtifactBytes, Error);
  }
  Resp.Status = "ok";
  Resp.CacheHit = false;
  Resp.HasArtifact = true;
  Resp.Artifact = std::move(ArtifactDoc);
  return Resp;
}
