//===- server/Server.h - The cuadvisord profiling service ----------*- C++ -*-===//
//
// Part of the CUDAAdvisor reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The fault-isolated profiling service: a unix-domain-socket daemon
/// accepting one JSON job per connection, running jobs on a bounded
/// worker pool (the job-level pool above the simulator's per-SM pool)
/// behind queue-depth admission control. Full queues answer with a
/// structured RETRY_LATER rejection instead of unbounded buffering; a
/// job that traps, times out or exhausts its budget returns a
/// structured error while the daemon keeps serving; completed
/// artifacts land in the crash-safe content-addressed cache. Stopping
/// the server (SIGTERM in the daemon) stops admission, drains every
/// queued and in-flight job, then returns — clients already accepted
/// always get an answer.
///
//===----------------------------------------------------------------------===//

#ifndef CUADV_SERVER_SERVER_H
#define CUADV_SERVER_SERVER_H

#include "server/ArtifactCache.h"
#include "server/JobRunner.h"
#include "server/Protocol.h"
#include "server/Socket.h"

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

namespace cuadv {
namespace server {

struct ServerOptions {
  std::string SocketPath;
  std::string CacheDir; ///< Empty disables the artifact cache.
  unsigned Workers = 2;
  unsigned QueueDepth = 8;       ///< Admission cap on queued connections.
  uint64_t MaxRequestBytes = 1u << 20;
  JobRunnerOptions Job;
};

/// Monotonic service counters, exported on `stats` requests.
struct ServerCounters {
  std::atomic<uint64_t> Accepted{0};
  std::atomic<uint64_t> Rejected{0}; ///< RETRY_LATER admissions.
  std::atomic<uint64_t> BadRequests{0};
  std::atomic<uint64_t> JobsOk{0};
  std::atomic<uint64_t> JobsFailed{0}; ///< Structured job errors served.
};

class Server {
public:
  explicit Server(ServerOptions Opts);
  ~Server();
  Server(const Server &) = delete;
  Server &operator=(const Server &) = delete;

  /// Binds the socket and spawns the accept loop and the worker pool.
  /// False + \p Error if the socket cannot be bound.
  bool start(std::string &Error);

  /// Graceful shutdown: stop accepting, drain every queued and running
  /// job (each client gets its response), join all threads, remove the
  /// socket file. Idempotent. Safe to trigger via requestStop() from a
  /// signal handler and then call stop() from the main thread.
  void stop();

  /// Async-signal-safe shutdown request (a relaxed atomic store); the
  /// accept loop notices within its poll interval.
  void requestStop() { StopRequested.store(true, std::memory_order_relaxed); }
  bool stopRequested() const {
    return StopRequested.load(std::memory_order_relaxed);
  }

  const ServerOptions &options() const { return Opts; }
  const ServerCounters &counters() const { return Counters; }
  ArtifactCache &cache() { return Cache; }

  /// The stats document served to `stats` requests.
  support::JsonValue statsToJson() const;

private:
  void acceptLoop();
  void workerLoop();
  /// Serves one accepted connection end to end.
  void serveConnection(Fd Conn);
  /// Answers an over-admission connection with RETRY_LATER.
  void rejectConnection(Fd Conn);
  void respond(const Fd &Conn, const JobResponse &R);

  ServerOptions Opts;
  ArtifactCache Cache;
  JobRunner Runner;
  ServerCounters Counters;

  Fd Listener;
  std::atomic<bool> StopRequested{false};
  bool Started = false;
  bool Stopped = false;

  std::mutex QueueMu;
  std::condition_variable QueueCv;
  std::deque<Fd> Queue;
  bool Draining = false;

  std::thread AcceptThread;
  std::vector<std::thread> WorkerThreads;
};

} // namespace server
} // namespace cuadv

#endif // CUADV_SERVER_SERVER_H
