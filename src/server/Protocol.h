//===- server/Protocol.h - cuadvisord wire protocol -----------------*- C++ -*-===//
//
// Part of the CUDAAdvisor reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The cuadvisord job protocol: one JSON request per connection, one
/// JSON response back. Requests are validated against an embedded JSON
/// schema (the same subset cuadv-validate enforces; the schema text is
/// also checked in under examples/ and a CTest keeps the two copies
/// identical). A job names either a built-in workload (`app`) or ships
/// raw MiniCUDA source with a launch configuration (`source`), plus a
/// device preset and an optional resource envelope. Responses carry a
/// status (`ok` / `error` / `retry-later`), the artifact-cache key and
/// hit flag, the profile artifact on success, and a structured error
/// object (reusing the guest-trap JSON shape) on failure. See
/// docs/SERVER.md for the full contract.
///
//===----------------------------------------------------------------------===//

#ifndef CUADV_SERVER_PROTOCOL_H
#define CUADV_SERVER_PROTOCOL_H

#include "support/JSON.h"

#include <cstdint>
#include <string>
#include <vector>

namespace cuadv {
namespace server {

/// Schema tags of the two wire documents.
constexpr const char *RequestSchemaName = "cuadv-job-request-1";
constexpr const char *ResponseSchemaName = "cuadv-job-response-1";

/// The embedded JSON Schema texts (kept byte-identical to
/// examples/server_request_schema.json and
/// examples/server_response_schema.json by the schema_embed CTest).
const char *requestSchemaText();
const char *responseSchemaText();

/// Per-job resource envelope. Zero means "server default"; the server
/// clamps every field to its own caps, so a client can tighten but not
/// escape the envelope.
struct JobLimits {
  uint64_t WatchdogCycles = 0;      ///< Simulated-cycle budget per launch.
  uint64_t TraceCapacityEvents = 0; ///< Profiler trace-buffer cap.
  uint64_t TimeoutMs = 0;           ///< Wall-clock budget for the job.
};

/// One kernel argument of a source job.
struct ArgSpec {
  enum class Kind : uint8_t { Int, Float, Buffer };
  Kind K = Kind::Int;
  int64_t IntV = 0;
  double FloatV = 0;
  uint64_t Bytes = 0;      ///< Buffer size.
  std::string Fill;        ///< "zero" (default) or "iota" (floats 0,1,2..).
};

/// A raw-source job: MiniCUDA device code plus an explicit launch.
struct SourceJob {
  std::string Code;
  std::string FileName = "job.cu";
  std::string Kernel;
  unsigned GridX = 1, GridY = 1;
  unsigned BlockX = 32, BlockY = 1;
  std::vector<ArgSpec> Args;
};

/// A parsed, validated job request.
struct JobRequest {
  enum class Kind : uint8_t { Profile, Ping, Stats };
  Kind K = Kind::Profile;
  std::string App;      ///< Workload name; empty for source jobs.
  bool HasSource = false;
  SourceJob Source;
  std::string Arch = "kepler16";
  JobLimits Limits;
  bool NoCache = false; ///< Skip cache lookup and store for this job.
  /// Sampling spec text ("off"/"warp:N"/"period:C[@SEED]"; empty =
  /// exact profiling). Part of the cache key: a sampled profile can
  /// never be served in place of an exact one.
  std::string Sample;
  /// Instrumentation-filter spec text (the file contents, not a path;
  /// empty = instrument everything). Also keyed into the cache.
  std::string Filter;
};

/// Typed failure codes of the response `error.code` field. Guest faults
/// use the trap-kind name itself ("oob-global", "watchdog", ...), so
/// the enumeration here covers only the server-side failures.
constexpr const char *ErrBadRequest = "bad-request";
constexpr const char *ErrUnknownApp = "unknown-app";
constexpr const char *ErrCompile = "compile-error";
constexpr const char *ErrTimeout = "timeout";
constexpr const char *ErrRunFailed = "run-failed";
constexpr const char *ErrRetryLater = "RETRY_LATER";
constexpr const char *ErrShuttingDown = "shutting-down";
constexpr const char *ErrInternal = "internal";

/// A job response being assembled or decoded.
struct JobResponse {
  std::string Status = "ok"; ///< "ok" | "error" | "retry-later".
  std::string CacheKey;      ///< 64 hex chars; empty for ping/stats.
  bool CacheHit = false;
  bool HasArtifact = false;
  support::JsonValue Artifact; ///< cuadv-profile-1 document.
  std::string ErrorCode;
  std::string ErrorMessage;
  bool HasTrap = false;
  support::JsonValue Trap; ///< TrapRecord::toJson() shape.
  bool HasStats = false;
  support::JsonValue Stats; ///< Server counters for stats requests.

  bool ok() const { return Status == "ok"; }
  bool retryLater() const { return Status == "retry-later"; }
};

/// Parses and schema-validates \p Text into \p Out. On failure returns
/// false and fills \p ErrorCode / \p ErrorMessage with the structured
/// rejection the server sends back (parse-limit violations keep their
/// distinct kind in the message).
bool parseJobRequest(const std::string &Text, JobRequest &Out,
                     std::string &ErrorCode, std::string &ErrorMessage,
                     const support::JsonParseLimits &Limits = {});

/// Serialises a request for the wire.
support::JsonValue requestToJson(const JobRequest &R);

/// Serialises a response for the wire (always schema-valid).
support::JsonValue responseToJson(const JobResponse &R);

/// Parses a response off the wire. Returns false with a message on
/// malformed documents (a server bug or a torn connection).
bool parseJobResponse(const std::string &Text, JobResponse &Out,
                      std::string &Error);

/// Builds the canonical error response for a rejected request.
JobResponse makeErrorResponse(const std::string &Code,
                              const std::string &Message);

} // namespace server
} // namespace cuadv

#endif // CUADV_SERVER_PROTOCOL_H
