//===- server/ArtifactCache.cpp - Crash-safe profile cache --------------------===//

#include "server/ArtifactCache.h"

#include "support/Hash.h"
#include "support/JSON.h"

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <sys/stat.h>
#include <sys/types.h>
#include <unistd.h>

using namespace cuadv;
using namespace cuadv::server;

std::string server::cacheKeyFor(const std::string &IrText,
                                const std::string &InputsJson,
                                const std::string &SpecText) {
  support::Sha256 H;
  H.update(IrText);
  H.update("\0", 1);
  H.update(InputsJson);
  H.update("\0", 1);
  H.update(SpecText);
  return H.hexDigest();
}

namespace {

/// mkdir -p. Best-effort: the subsequent open reports real failures.
void makeDirs(const std::string &Path) {
  std::string Partial;
  for (size_t I = 0; I <= Path.size(); ++I) {
    if (I == Path.size() || Path[I] == '/') {
      if (!Partial.empty())
        ::mkdir(Partial.c_str(), 0777);
    }
    if (I < Path.size())
      Partial.push_back(Path[I]);
  }
}

} // namespace

ArtifactCache::ArtifactCache(std::string Dir) : CacheDir(std::move(Dir)) {
  if (!CacheDir.empty())
    makeDirs(CacheDir);
}

std::string ArtifactCache::entryPath(const std::string &Key) const {
  if (CacheDir.empty())
    return "";
  return CacheDir + "/" + Key + ".json";
}

ArtifactCache::Stats ArtifactCache::stats() const {
  std::lock_guard<std::mutex> Lock(Mu);
  return S;
}

bool ArtifactCache::lookup(const std::string &Key, std::string &Out) {
  auto Count = [this](uint64_t Stats::*Field) {
    std::lock_guard<std::mutex> Lock(Mu);
    ++(S.*Field);
  };
  if (CacheDir.empty()) {
    Count(&Stats::Misses);
    return false;
  }
  std::ifstream In(entryPath(Key), std::ios::binary);
  if (!In) {
    Count(&Stats::Misses);
    return false;
  }
  std::ostringstream SS;
  SS << In.rdbuf();
  if (In.bad()) {
    Count(&Stats::Misses);
    return false;
  }
  std::string Bytes = SS.str();
  // Rename publication means a present entry should always be complete;
  // re-parsing is defence in depth against external tampering and
  // filesystem damage, degrading to a recompute rather than serving
  // garbage.
  support::JsonValue Doc;
  std::string Error;
  if (!support::parseJson(Bytes, Doc, Error)) {
    Count(&Stats::Invalid);
    Count(&Stats::Misses);
    return false;
  }
  Out = std::move(Bytes);
  Count(&Stats::Hits);
  return true;
}

bool ArtifactCache::store(const std::string &Key, const std::string &Bytes,
                          std::string &Error) {
  if (CacheDir.empty())
    return true; // Disabled cache: dropping the store is the contract.
  // Unique temp name per process+key; concurrent writers of the same
  // key each publish a complete entry and the last rename wins.
  std::string Tmp = CacheDir + "/.tmp." + Key + "." +
                    std::to_string(static_cast<long>(::getpid()));
  {
    std::ofstream OS(Tmp, std::ios::binary | std::ios::trunc);
    OS << Bytes;
    OS.flush();
    if (!OS.good()) {
      Error = "cannot write cache temp file '" + Tmp + "'";
      std::remove(Tmp.c_str());
      return false;
    }
  }
  if (std::rename(Tmp.c_str(), entryPath(Key).c_str()) != 0) {
    Error = std::string("cannot publish cache entry: ") +
            std::strerror(errno);
    std::remove(Tmp.c_str());
    return false;
  }
  {
    std::lock_guard<std::mutex> Lock(Mu);
    ++S.Stores;
  }
  return true;
}
