//===- server/Client.h - cuadvisord client-side submission ----------*- C++ -*-===//
//
// Part of the CUDAAdvisor reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Client-side job submission: one-shot submit plus the retry loop
/// cuadv-submit and the load-generator bench share. RETRY_LATER
/// rejections (queue-depth admission control) back off exponentially
/// with a deterministic schedule (Initial, 2x, 4x, ... capped) before
/// giving up; every other response is returned to the caller as-is.
///
//===----------------------------------------------------------------------===//

#ifndef CUADV_SERVER_CLIENT_H
#define CUADV_SERVER_CLIENT_H

#include "server/Protocol.h"

#include <cstdint>
#include <string>

namespace cuadv {
namespace server {

/// Submits \p RequestJson over one connection and reads the whole
/// response into \p ResponseJson. False + \p Error on socket-level
/// failure (no daemon, hangup mid-response, response over the cap).
bool submitOnce(const std::string &SocketPath, const std::string &RequestJson,
                std::string &ResponseJson, std::string &Error,
                uint64_t MaxResponseBytes = 256u << 20);

struct SubmitOptions {
  unsigned MaxAttempts = 6;      ///< Total tries, first one included.
  unsigned InitialBackoffMs = 50;
  unsigned MaxBackoffMs = 2000;
  uint64_t MaxResponseBytes = 256u << 20;
};

/// Outcome of a retrying submission.
struct SubmitResult {
  bool TransportOk = false; ///< A response was received and parsed.
  JobResponse Response;     ///< Valid when TransportOk.
  std::string ResponseJson; ///< Raw bytes of the final response.
  std::string Error;        ///< Transport/parse failure description.
  unsigned Attempts = 0;    ///< Connections actually made.
  /// True when every attempt came back RETRY_LATER: the caller should
  /// treat the submission as "server saturated", distinct from a job
  /// error.
  bool RetriesExhausted = false;
};

/// Submits with exponential backoff on RETRY_LATER rejections.
SubmitResult submitWithRetry(const std::string &SocketPath,
                             const std::string &RequestJson,
                             const SubmitOptions &Opts = {});

} // namespace server
} // namespace cuadv

#endif // CUADV_SERVER_CLIENT_H
