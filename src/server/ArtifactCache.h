//===- server/ArtifactCache.h - Crash-safe profile cache ------------*- C++ -*-===//
//
// Part of the CUDAAdvisor reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The daemon's content-addressed artifact cache: one `<key>.json` file
/// per completed job under the cache directory, where the key is the
/// SHA-256 over (printed IR, canonical job inputs, device spec). Writes
/// go to a temporary file in the same directory and are published with
/// rename(2), so a kill -9 at any instant leaves either no entry or a
/// complete one — never a torn file. Loads re-parse the document and
/// treat anything unreadable as a miss, so a corrupted cache degrades
/// to recomputation instead of poisoning responses. Entries are full
/// cuadv-profile-1 documents; `cuadv-validate
/// --schema=examples/profile_schema.json <dir>/*.json` audits a cache.
///
//===----------------------------------------------------------------------===//

#ifndef CUADV_SERVER_ARTIFACTCACHE_H
#define CUADV_SERVER_ARTIFACTCACHE_H

#include <cstdint>
#include <mutex>
#include <string>

namespace cuadv {
namespace server {

/// Key derivation: SHA-256 hex over the three byte streams that fully
/// determine a job's deterministic output, NUL-separated so boundaries
/// cannot alias.
std::string cacheKeyFor(const std::string &IrText,
                        const std::string &InputsJson,
                        const std::string &SpecText);

class ArtifactCache {
public:
  struct Stats {
    uint64_t Hits = 0;
    uint64_t Misses = 0;
    uint64_t Stores = 0;
    uint64_t Invalid = 0; ///< Entries dropped as unparseable on load.
  };

  /// Binds the cache to \p Dir, creating it (and parents) if missing.
  /// An empty dir disables the cache: every lookup misses, stores are
  /// dropped.
  explicit ArtifactCache(std::string Dir);

  const std::string &dir() const { return CacheDir; }
  bool enabled() const { return !CacheDir.empty(); }

  /// Loads the entry for \p Key into \p Out (raw bytes, exactly as
  /// stored). False on miss or on an entry that no longer parses as
  /// JSON (counted in Stats::Invalid).
  bool lookup(const std::string &Key, std::string &Out);

  /// Publishes \p Bytes under \p Key via write-to-temp + rename. False
  /// (with \p Error) on I/O failure; the cache never holds a partial
  /// entry regardless.
  bool store(const std::string &Key, const std::string &Bytes,
             std::string &Error);

  /// Path of the entry file for \p Key ("" when disabled).
  std::string entryPath(const std::string &Key) const;

  /// Snapshot of the counters. Thread-safe, like lookup/store: the
  /// cache is shared by every worker of the job pool.
  Stats stats() const;

private:
  std::string CacheDir;
  mutable std::mutex Mu; ///< Guards S (file ops rely on rename atomicity).
  Stats S;
};

} // namespace server
} // namespace cuadv

#endif // CUADV_SERVER_ARTIFACTCACHE_H
